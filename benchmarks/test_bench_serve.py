"""Benchmark the serving subsystem: cold vs. warm query latency.

Emits ``BENCH_serve.json`` — queries/sec for the cold (solver) path vs.
the warm (cache-hit) path on a d=32, k=4 workload, plus the planner
path breakdown — the machine-readable trajectory later serving PRs
diff against.  The acceptance bars: warm answers at least 10x faster
than cold solver-path answers; the closed-form ``residual`` solver
answers cold solved-path queries with p95 within 2x of the covered
path (the ReM speedup this file gates, see ``docs/PERFORMANCE.md``);
and every request accounted for by planner path in both ``/stats`` and
the obs counters.
"""

import json
import pathlib
from time import perf_counter

import numpy as np

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.data import experiment_dataset
from repro.serve import PATH_COVERED, PATH_DERIVED, PATH_SOLVED, QueryEngine

D = 32
K = 4


def _workload(design, rng, num_each=12):
    """Distinct k=4 covered + uncovered sets, plus uncovered k=3
    subsets of the uncovered ones (those exercise the derived path)."""
    blocks = list(design.blocks)
    covered_by = lambda attrs: any(set(attrs) <= set(b) for b in blocks)

    covered = set()
    while len(covered) < num_each:
        block = blocks[rng.integers(len(blocks))]
        covered.add(tuple(sorted(rng.choice(block, K, replace=False).tolist())))
    uncovered = set()
    while len(uncovered) < num_each:
        attrs = tuple(sorted(rng.choice(D, K, replace=False).tolist()))
        if not covered_by(attrs):
            uncovered.add(attrs)
    derived = set()
    for parent in sorted(uncovered):
        for drop in range(K):
            sub = tuple(a for i, a in enumerate(parent) if i != drop)
            if not covered_by(sub):
                derived.add(sub)
                break
        if len(derived) >= num_each // 2:
            break
    return sorted(covered), sorted(uncovered), sorted(derived)


def _timed(engine, queries):
    latencies = []
    for attrs in queries:
        start = perf_counter()
        engine.answer(attrs)
        latencies.append(perf_counter() - start)
    return latencies


def _p95_ms(latencies):
    return 1e3 * float(np.percentile(latencies, 95))


def _more_uncovered(design, rng, count):
    """Extra distinct uncovered k=4 sets (p95 needs a bigger sample)."""
    blocks = [set(b) for b in design.blocks]
    out = set()
    while len(out) < count:
        attrs = tuple(sorted(rng.choice(D, K, replace=False).tolist()))
        if not any(set(attrs) <= b for b in blocks):
            out.add(attrs)
    return sorted(out)


def _more_covered(design, rng, count):
    """Extra distinct covered k=4 sets (the p95 baseline workload)."""
    blocks = list(design.blocks)
    out = set()
    while len(out) < count:
        block = blocks[rng.integers(len(blocks))]
        out.add(tuple(sorted(rng.choice(block, K, replace=False).tolist())))
    return sorted(out)


def test_bench_serve_export(scale):
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(D, 8, 2)
    synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
    rng = np.random.default_rng(20140622)
    covered, uncovered, derived = _workload(design, rng)
    everything = covered + uncovered + derived

    with obs.session() as sess:
        with QueryEngine(synopsis, cache_size=512) as engine:
            cold_covered = _timed(engine, covered)
            cold_solved = _timed(engine, uncovered)
            cold_derived = _timed(engine, derived)
            warm = _timed(engine, everything)
            warm_again = _timed(engine, everything)
            stats = engine.stats()
        counters = sess.metrics.snapshot()["counters"]
        latency_obs = sess.metrics.observation("serve.request_seconds")

    # -- accounting: every request lands in exactly one planner path --
    assert stats["requests"] == sum(stats["paths"].values())
    assert stats["requests"] == 3 * len(everything)
    assert counters["serve.request"] == stats["requests"]
    for path, count in stats["paths"].items():
        assert counters.get(f"serve.path.{path}", 0) == count
    assert latency_obs["count"] == stats["requests"]
    assert stats["paths"][PATH_COVERED] == 3 * len(covered)
    assert stats["paths"][PATH_SOLVED] == 3 * len(uncovered)
    assert stats["paths"][PATH_DERIVED] == 3 * len(derived)

    # -- the serving claim: warm >= 10x faster than the cold solver path
    warm_all = warm + warm_again
    cold_solved_mean = sum(cold_solved) / len(cold_solved)
    warm_mean = sum(warm_all) / len(warm_all)
    assert warm_mean * 10 <= cold_solved_mean, (
        f"warm {warm_mean * 1e3:.3f}ms vs cold solver "
        f"{cold_solved_mean * 1e3:.3f}ms"
    )

    def _summary(latencies):
        return {
            "queries": len(latencies),
            "mean_ms": 1e3 * sum(latencies) / len(latencies),
            "max_ms": 1e3 * max(latencies),
            "p95_ms": _p95_ms(latencies),
            "qps": len(latencies) / sum(latencies),
        }

    # -- per-method solved path: cold latency, fresh engine each ------
    # Warmup queries are disjoint from the timed workload: they absorb
    # one-time costs (lazy engine state, the residual coefficient
    # index) that belong to startup, not to per-query latency.
    extra_uncovered = _more_uncovered(design, rng, 64)
    warmup_uncovered = extra_uncovered[:4]
    method_uncovered = extra_uncovered[4:]
    method_covered = _more_covered(design, rng, 40)
    warmup_covered = tuple(design.blocks[0][:3])
    solved_methods = {}
    covered_lat_by_method = {}
    for method in ("maxent", "residual"):
        with obs.session() as msess:
            with QueryEngine(
                synopsis, cache_size=512, default_method=method
            ) as meng:
                meng.answer(warmup_covered)
                for attrs in warmup_uncovered:
                    meng.answer(attrs)
                covered_lat_by_method[method] = _timed(meng, method_covered)
                lat = _timed(meng, method_uncovered)
                mstats = meng.stats()
            solve_obs = msess.metrics.observation(
                "serve.solve_seconds", {"method": method}
            )
        assert mstats["paths"][PATH_SOLVED] == (
            len(method_uncovered) + len(warmup_uncovered)
        )
        assert mstats["solve"]["fallbacks"] == 0
        solved_methods[method] = {
            **_summary(lat),
            "solve_seconds": solve_obs,
        }
    covered_p95_ms = _p95_ms(
        covered_lat_by_method["residual"] + covered_lat_by_method["maxent"]
    )
    residual_p95_vs_covered = (
        solved_methods["residual"]["p95_ms"] / covered_p95_ms
    )
    # -- the ReM claim: residual retires the solved-path hot spot -----
    assert residual_p95_vs_covered <= 2.0, (
        f"residual solved p95 {solved_methods['residual']['p95_ms']:.3f}ms "
        f"vs covered p95 {covered_p95_ms:.3f}ms "
        f"({residual_p95_vs_covered:.2f}x > 2x)"
    )

    # -- batch path: one stacked solve for the whole workload ---------
    batch = {}
    for method in ("maxent", "residual"):
        with obs.session() as bsess:
            with QueryEngine(
                synopsis, cache_size=512, default_method=method
            ) as beng:
                for attrs in warmup_uncovered:
                    beng.answer(attrs)
                start = perf_counter()
                answers = beng.answer_batch(method_uncovered)
                elapsed = perf_counter() - start
            bcounters = bsess.metrics.snapshot()["counters"]
        assert all(a.path == PATH_SOLVED for a in answers)
        assert bcounters.get("serve.solve.batched", 0) == len(method_uncovered)
        batch[method] = {
            "queries": len(method_uncovered),
            "total_ms": 1e3 * elapsed,
            "per_query_ms": 1e3 * elapsed / len(method_uncovered),
            "qps": len(method_uncovered) / elapsed,
        }

    payload = {
        "benchmark": f"serve_kosarak_{design.notation}_k{K}",
        "scale": scale.name,
        "workload": {
            "d": D,
            "k": K,
            "covered": len(covered),
            "uncovered": len(uncovered),
            "derived": len(derived),
        },
        "cold": {
            "covered": _summary(cold_covered),
            "solved": _summary(cold_solved),
            "derived": _summary(cold_derived) if cold_derived else None,
        },
        "warm": _summary(warm_all),
        "speedup_warm_vs_cold_solved": cold_solved_mean / warm_mean,
        "solved_methods": solved_methods,
        "covered_p95_ms": covered_p95_ms,
        "residual_p95_vs_covered": residual_p95_vs_covered,
        "batch": batch,
        "paths": stats["paths"],
        "cache": stats["cache"],
        "request_seconds": latency_obs,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
