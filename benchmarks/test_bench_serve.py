"""Benchmark the serving subsystem: cold vs. warm query latency.

Emits ``BENCH_serve.json`` — queries/sec for the cold (solver) path vs.
the warm (cache-hit) path on a d=32, k=4 workload, plus the planner
path breakdown — the machine-readable trajectory later serving PRs
diff against.  The acceptance bar: warm answers at least 10x faster
than cold solver-path answers, and every request accounted for by
planner path in both ``/stats`` and the obs counters.
"""

import json
import pathlib
from time import perf_counter

import numpy as np

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.data import experiment_dataset
from repro.serve import PATH_COVERED, PATH_DERIVED, PATH_SOLVED, QueryEngine

D = 32
K = 4


def _workload(design, rng, num_each=12):
    """Distinct k=4 covered + uncovered sets, plus uncovered k=3
    subsets of the uncovered ones (those exercise the derived path)."""
    blocks = list(design.blocks)
    covered_by = lambda attrs: any(set(attrs) <= set(b) for b in blocks)

    covered = set()
    while len(covered) < num_each:
        block = blocks[rng.integers(len(blocks))]
        covered.add(tuple(sorted(rng.choice(block, K, replace=False).tolist())))
    uncovered = set()
    while len(uncovered) < num_each:
        attrs = tuple(sorted(rng.choice(D, K, replace=False).tolist()))
        if not covered_by(attrs):
            uncovered.add(attrs)
    derived = set()
    for parent in sorted(uncovered):
        for drop in range(K):
            sub = tuple(a for i, a in enumerate(parent) if i != drop)
            if not covered_by(sub):
                derived.add(sub)
                break
        if len(derived) >= num_each // 2:
            break
    return sorted(covered), sorted(uncovered), sorted(derived)


def _timed(engine, queries):
    latencies = []
    for attrs in queries:
        start = perf_counter()
        engine.answer(attrs)
        latencies.append(perf_counter() - start)
    return latencies


def test_bench_serve_export(scale):
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(D, 8, 2)
    synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
    rng = np.random.default_rng(20140622)
    covered, uncovered, derived = _workload(design, rng)
    everything = covered + uncovered + derived

    with obs.session() as sess:
        with QueryEngine(synopsis, cache_size=512) as engine:
            cold_covered = _timed(engine, covered)
            cold_solved = _timed(engine, uncovered)
            cold_derived = _timed(engine, derived)
            warm = _timed(engine, everything)
            warm_again = _timed(engine, everything)
            stats = engine.stats()
        counters = sess.metrics.snapshot()["counters"]
        latency_obs = sess.metrics.observation("serve.request_seconds")

    # -- accounting: every request lands in exactly one planner path --
    assert stats["requests"] == sum(stats["paths"].values())
    assert stats["requests"] == 3 * len(everything)
    assert counters["serve.request"] == stats["requests"]
    for path, count in stats["paths"].items():
        assert counters.get(f"serve.path.{path}", 0) == count
    assert latency_obs["count"] == stats["requests"]
    assert stats["paths"][PATH_COVERED] == 3 * len(covered)
    assert stats["paths"][PATH_SOLVED] == 3 * len(uncovered)
    assert stats["paths"][PATH_DERIVED] == 3 * len(derived)

    # -- the serving claim: warm >= 10x faster than the cold solver path
    warm_all = warm + warm_again
    cold_solved_mean = sum(cold_solved) / len(cold_solved)
    warm_mean = sum(warm_all) / len(warm_all)
    assert warm_mean * 10 <= cold_solved_mean, (
        f"warm {warm_mean * 1e3:.3f}ms vs cold solver "
        f"{cold_solved_mean * 1e3:.3f}ms"
    )

    def _summary(latencies):
        return {
            "queries": len(latencies),
            "mean_ms": 1e3 * sum(latencies) / len(latencies),
            "max_ms": 1e3 * max(latencies),
            "qps": len(latencies) / sum(latencies),
        }

    payload = {
        "benchmark": f"serve_kosarak_{design.notation}_k{K}",
        "scale": scale.name,
        "workload": {
            "d": D,
            "k": K,
            "covered": len(covered),
            "uncovered": len(uncovered),
            "derived": len(derived),
        },
        "cold": {
            "covered": _summary(cold_covered),
            "solved": _summary(cold_solved),
            "derived": _summary(cold_derived) if cold_derived else None,
        },
        "warm": _summary(warm_all),
        "speedup_warm_vs_cold_solved": cold_solved_mean / warm_mean,
        "paths": stats["paths"],
        "cache": stats["cache"],
        "request_seconds": latency_obs,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
