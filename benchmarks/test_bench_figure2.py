"""Benchmark regenerating Figure 2 (Kosarak & AOL, the headline result).

The shape assertions encode the paper's claims: PriView improves on
Direct and Fourier by orders of magnitude; Direct beats Uniform only
at (Kosarak, eps=1, k=4); Flat is plotted analytically and capped.
"""

import pytest

from repro.experiments import figure2


@pytest.fixture(scope="module")
def kosarak(scale):
    return figure2.run(
        scale=scale,
        datasets=("kosarak",),
        epsilons=(1.0,),
        ks=(4, 8),
        metrics=("normalized_l2", "jensen_shannon"),
        seed=3,
    )[0]


def test_figure2_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: figure2.run(
            scale=scale,
            datasets=("aol",),
            epsilons=(1.0,),
            ks=(6,),
            metrics=("normalized_l2",),
            seed=3,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + outcome[0].render())


def test_figure2_priview_orders_of_magnitude_better(kosarak):
    """The 2-3 orders of magnitude headline (>=1 at quick scale's
    reduced N; the gap widens with the full 912k records)."""
    for k in (4, 8):
        direct = kosarak.row("Direct", k, 1.0, "normalized_l2").headline()
        fourier = kosarak.row("Fourier", k, 1.0, "normalized_l2").headline()
        priview = min(
            r.headline()
            for r in kosarak.rows
            if r.method.startswith("PriView-") and r.k == k
            and r.metric == "normalized_l2"
        )
        assert priview * 10 < direct
        assert priview * 10 < fourier


def test_figure2_js_divergence_agrees_with_l2(kosarak):
    """Section 5: the two metrics tell the same story."""
    for k in (4, 8):
        priview_js = min(
            r.headline()
            for r in kosarak.rows
            if r.method.startswith("PriView-") and r.k == k
            and r.metric == "jensen_shannon"
        )
        direct_js = kosarak.row("Direct", k, 1.0, "jensen_shannon").headline()
        assert priview_js < direct_js


def test_figure2_flat_is_capped_expectation(kosarak):
    flat = kosarak.row("Flat", 4, 1.0, "normalized_l2")
    assert flat.candle is None
    assert flat.expected <= 1.0


def test_figure2_noise_free_lower_bound(kosarak):
    """C_t^* (coverage error only) lower-bounds the noisy PriView."""
    for k in (4, 8):
        star = min(
            r.headline()
            for r in kosarak.rows
            if r.method.startswith("PriView*") and r.k == k
            and r.metric == "normalized_l2"
        )
        noisy = min(
            r.headline()
            for r in kosarak.rows
            if r.method.startswith("PriView-") and r.k == k
            and r.metric == "normalized_l2"
        )
        assert star <= noisy * 1.5
