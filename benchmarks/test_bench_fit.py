"""Benchmark the fit hot path: bit-sliced kernels vs. the seed path.

Emits ``BENCH_fit.json`` — end-to-end ``PriView.fit`` wall time on a
d=64, N=1M dataset for the legacy (uint8 bincount, sequential) path
and the packed (bit-sliced popcount, worker-pool) path — the
machine-readable trajectory later performance PRs diff against.  The
acceptance bar: the packed + 8-worker fit is at least **5x** faster
end-to-end, and both paths fit to synopses with identical view
attribute sets and consistent totals (the noise streams legitimately
differ — see the determinism contract in ``docs/PERFORMANCE.md``).

d=64 ships no bundled covering design and greedy construction at that
dimension costs more than the fits being measured, so the benchmark
pins the algebraic t=2 grid/MOLS construction (w=72, instant).
"""

import json
import os
import pathlib
from time import perf_counter

import numpy as np

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import construct_design
from repro.marginals.dataset import BinaryDataset

N = 1_000_000
D = 64
EPSILON = 1.0
REPEATS = 3
MIN_SPEEDUP = 5.0


def _dataset() -> BinaryDataset:
    """Correlated N=1M, d=64 dataset, built in row chunks to keep the
    float temporaries small."""
    rng = np.random.default_rng(20140622)
    profiles = rng.random((4, D)) * 0.6
    rows = []
    chunk = 100_000
    for start in range(0, N, chunk):
        stop = min(start + chunk, N)
        types = rng.integers(0, 4, stop - start)
        rows.append(
            (rng.random((stop - start, D)) < profiles[types]).astype(np.uint8)
        )
    return BinaryDataset(np.concatenate(rows), name="bench-fit")


def _time_fits(make_mechanism, dataset, repeats=REPEATS):
    times, synopsis = [], None
    for seed in range(repeats):
        start = perf_counter()
        synopsis = make_mechanism(seed).fit(dataset)
        times.append(perf_counter() - start)
    return times, synopsis


def test_bench_fit_packed_speedup():
    dataset = _dataset()
    design = construct_design(D, 8, 2)

    # Warm everything amortised across fits out of the measurement:
    # projection/constraint caches (both paths) and the cached packed
    # form (packed path pays the one-off pack cost here).
    PriView(EPSILON, design=design, seed=0).fit(dataset)
    pack_start = perf_counter()
    dataset.packed()
    pack_seconds = perf_counter() - pack_start
    PriView(EPSILON, design=design, seed=0, packed=True, workers=8).fit(dataset)

    legacy_times, legacy_synopsis = _time_fits(
        lambda seed: PriView(EPSILON, design=design, seed=seed), dataset
    )
    with obs.session() as sess:
        packed_times, packed_synopsis = _time_fits(
            lambda seed: PriView(
                EPSILON, design=design, seed=seed, packed=True, workers=8
            ),
            dataset,
        )
        sess.ledger.check()
        snapshot = sess.metrics.snapshot()

    legacy = float(np.median(legacy_times))
    packed = float(np.median(packed_times))
    speedup = legacy / packed

    # Same release surface: identical blocks, near-identical totals
    # (different noise streams over the same exact counts).
    assert [v.attrs for v in packed_synopsis.views] == [
        v.attrs for v in legacy_synopsis.views
    ]
    total = float(dataset.num_records)
    assert abs(packed_synopsis.total_count() - total) / total < 0.01
    assert snapshot["gauges"]["fit.workers"] == 8
    assert snapshot["counters"]["kernel.packed_marginals"] >= REPEATS * design.num_blocks

    assert speedup >= MIN_SPEEDUP, (
        f"packed fit {packed:.3f}s vs legacy {legacy:.3f}s — "
        f"only {speedup:.2f}x, need {MIN_SPEEDUP}x"
    )

    payload = {
        "benchmark": f"fit_d{D}_n{N}_{design.notation}",
        "n": N,
        "d": D,
        "epsilon": EPSILON,
        "design": design.notation,
        "views": design.num_blocks,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "workers": 8,
        "pack_seconds": pack_seconds,
        "legacy_fit_seconds": legacy_times,
        "packed_fit_seconds": packed_times,
        "legacy_median_s": legacy,
        "packed_median_s": packed,
        "legacy_ms_per_view": 1e3 * legacy / design.num_blocks,
        "packed_ms_per_view": 1e3 * packed / design.num_blocks,
        "speedup_packed_vs_legacy": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fit.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
