"""Ablation: global tree model vs per-query max entropy.

Extension benchmark (not a paper figure): on Markov-chain data the
Chow-Liu tree model fitted to the synopsis answers long-range
marginals — attribute sets no view covers — better than per-query
maximum entropy, because it propagates dependence through the chain.
"""

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.datasets.mchain import markov_chain_dataset
from repro.marginals.queries import random_attribute_sets
from repro.models.tree_model import TreeModel


@pytest.fixture(scope="module")
def setting(scale):
    rng = np.random.default_rng(1)
    n = scale.max_records or 200_000
    dataset = markov_chain_dataset(1, min(n, 200_000), length=32, rng=rng)
    design = best_design(32, 8, 2)
    synopsis = PriView(1.0, design=design, seed=1).fit(dataset)
    return dataset, synopsis


def test_bench_tree_model_fit(benchmark, setting):
    _, synopsis = setting
    benchmark.pedantic(
        lambda: TreeModel.from_synopsis(synopsis), rounds=2, iterations=1
    )


def test_bench_tree_model_query(benchmark, setting):
    dataset, synopsis = setting
    model = TreeModel.from_synopsis(synopsis)
    attrs = (0, 9, 18, 27)
    benchmark(lambda: model.marginal(attrs))


def test_tree_model_beats_maxent_on_uncovered_chain_queries(setting):
    dataset, synopsis = setting
    model = TreeModel.from_synopsis(synopsis)
    rng = np.random.default_rng(5)
    queries = [
        q
        for q in random_attribute_sets(32, 4, 60, rng)
        if not synopsis.is_covered(q)
    ][:10]
    tree_errs, maxent_errs = [], []
    for attrs in queries:
        truth = dataset.marginal(attrs).normalized()
        tree_errs.append(
            np.abs(model.marginal(attrs).normalized() - truth).sum()
        )
        maxent_errs.append(
            np.abs(synopsis.marginal(attrs).normalized() - truth).sum()
        )
    assert np.mean(tree_errs) <= np.mean(maxent_errs) + 0.02
    print(
        f"\ntree-model mean L1 {np.mean(tree_errs):.4f} vs "
        f"maxent {np.mean(maxent_errs):.4f} over {len(queries)} queries"
    )
