"""Benchmarks regenerating the paper's in-text tables.

Each benchmark times the driver and asserts the reproduced numbers
match the paper where they are closed-form.
"""

import pytest

from repro.experiments import tables


def test_crossover_table(benchmark):
    """Section 3.2: Direct-beats-Flat dimensions."""
    result = benchmark(tables.run_crossover)
    assert {r.k: r.expected for r in result.rows} == {
        2: 16, 3: 26, 4: 36, 5: 46,
    }
    print("\n" + result.render())


def test_ell_table(benchmark):
    """Section 4.5: the l-objective table (minimum near l=8)."""
    result = benchmark(tables.run_ell_table)
    pairs = {
        r.k: r.expected for r in result.rows if r.method == "pairs-objective"
    }
    assert pairs[8] == pytest.approx(0.286, abs=2e-3)
    print("\n" + result.render())


def test_t_choice_table(benchmark):
    """Section 4.5: Kosarak noise errors for t in {2,3,4}."""
    result = benchmark(tables.run_t_choice)
    errs = {r.k: r.expected for r in result.rows}
    assert errs[2] == pytest.approx(0.00047, abs=5e-5)
    assert errs[3] == pytest.approx(0.0011, abs=1e-4)
    assert errs[4] == pytest.approx(0.0026, abs=2e-4)
    print("\n" + result.render())


def test_cells_table(benchmark):
    """Section 4.7: cells-per-view guideline for categorical data."""
    result = benchmark(tables.run_cells_table)
    highs = [r.expected for r in result.rows if r.metric == "s_high"]
    assert highs == sorted(highs)
    print("\n" + result.render())
