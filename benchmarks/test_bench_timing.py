"""Benchmark regenerating the Section 4.6 timing table.

The paper reports P (synopsis construction), Q6 and Q8 (single
reconstruction) for Kosarak and AOL under their t=2 and t=3 designs.
Absolute times differ from the 2013 testbed; the shape must hold:
t=2 pipelines are much cheaper than t=3, Q8 much costlier than Q6.
"""

import json
import pathlib

import numpy as np
import pytest

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments import timing
from repro.experiments.data import experiment_dataset


def test_timing_table(scale):
    cases = (
        timing.CASES
        if scale.name == "paper"
        else (("kosarak", 2), ("kosarak", 3))
    )
    rows = timing.run(scale=scale, cases=cases)
    print("\n" + timing.render(rows))
    by_design = {r.design: r for r in rows}
    t2 = next(r for r in rows if r.design.startswith("C_2"))
    t3 = next(r for r in rows if r.design.startswith("C_3"))
    # the t=3 pipeline is substantially more expensive (paper: ~10x)
    assert t3.synopsis_seconds > t2.synopsis_seconds
    # an 8-way reconstruction costs more than a 6-way one
    assert t3.q8_seconds > t3.q6_seconds


def test_bench_synopsis_construction(benchmark, scale):
    """P for Kosarak C_2(8,20) (the paper's 8.78s column)."""
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(32, 8, 2)
    benchmark.pedantic(
        lambda: PriView(1.0, design=design, seed=0).fit(dataset),
        rounds=1,
        iterations=1,
    )


def test_bench_q6_reconstruction(benchmark, scale):
    """Q6 for Kosarak C_2(8,20) (the paper's 0.16s column)."""
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(32, 8, 2)
    synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
    rng = np.random.default_rng(0)
    attrs = timing._uncovered_query(design, 32, 6, rng)
    benchmark(lambda: synopsis.marginal(attrs))


def test_bench_q8_reconstruction(benchmark, scale):
    """Q8 for Kosarak C_2(8,20) (the paper's 2.79s column)."""
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(32, 8, 2)
    synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
    rng = np.random.default_rng(0)
    attrs = timing._uncovered_query(design, 32, 8, rng)
    benchmark(lambda: synopsis.marginal(attrs))


def test_bench_obs_export(scale):
    """Emit BENCH_obs.json: per-stage wall time + counters for one
    traced Kosarak pipeline — the machine-readable perf trajectory that
    later optimisation PRs diff against."""
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(32, 8, 2)
    rng = np.random.default_rng(0)
    with obs.session() as sess:
        synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
        with obs.span("q6"):
            synopsis.marginal(timing._uncovered_query(design, 32, 6, rng))
        with obs.span("q8"):
            synopsis.marginal(timing._uncovered_query(design, 32, 8, rng))
        sess.ledger.check()
        payload = {
            "benchmark": "priview_kosarak_C_2(8,20)",
            "scale": scale.name,
            "stages": obs.flatten_stages(sess.tracer.roots),
            "metrics": sess.metrics.snapshot(),
            "ledger": sess.ledger.to_dicts(),
        }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert payload["stages"]["priview.fit"]["seconds"] > 0
    assert payload["ledger"][0]["status"] == "exact"
