"""Benchmark regenerating Figure 4 (non-negativity methods)."""

import pytest

from repro.experiments import figure4


@pytest.fixture(scope="module")
def kosarak(scale):
    return figure4.run(scale=scale, datasets=("kosarak",), ks=(4, 6), seed=11)[0]


def test_figure4_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: figure4.run(
            scale=scale, datasets=("kosarak",), ks=(4,),
            variants=("None", "Ripple1"), seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + outcome[0].render())


def test_figure4_ripple_best(kosarak):
    for k in (4, 6):
        ripple = kosarak.row("Ripple1", k, 1.0).headline()
        for other in ("None", "Simple", "Global"):
            assert ripple <= kosarak.row(other, k, 1.0).headline() * 1.05


def test_figure4_simple_is_harmful(kosarak):
    """Clamping to zero introduces the bias the paper describes: it is
    worse than doing nothing."""
    for k in (4, 6):
        simple = kosarak.row("Simple", k, 1.0).headline()
        none = kosarak.row("None", k, 1.0).headline()
        assert simple > none * 0.9  # at least comparable-or-worse


def test_figure4_extra_rounds_add_nothing(kosarak):
    """Ripple3 performs as well as Ripple1 (Section 4.4)."""
    for k in (4, 6):
        r1 = kosarak.row("Ripple1", k, 1.0).headline()
        r3 = kosarak.row("Ripple3", k, 1.0).headline()
        assert r3 == pytest.approx(r1, rel=0.35)
