"""Benchmark regenerating Figure 5 (MCHAIN, d=64)."""

import pytest

from repro.experiments import figure5


@pytest.fixture(scope="module")
def result(scale):
    return figure5.run(scale=scale, orders=(1, 2, 3, 5, 7), ks=(4,), seed=13)


def test_figure5_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: figure5.run(scale=scale, orders=(1, 3), ks=(4,), seed=13),
        rounds=1,
        iterations=1,
    )
    print("\n" + outcome.render())


def test_figure5_all_orders_informative(result):
    """Even pairs-only coverage reconstructs Markov data usefully."""
    for row in result.rows:
        assert row.candle.mean < 0.2


def test_figure5_order3_is_local_worst_case(scale):
    """The paper: mc_3 produces the largest error (4-way correlation,
    only pairs covered).  The effect lives in the coverage error, so
    measure it noise-free — at quick scale's reduced N the Laplace
    noise would otherwise drown it."""
    result = figure5.run(
        scale=scale, orders=(1, 2, 3), ks=(4,), seed=13,
        epsilon=float("inf"),
    )
    errors = {r.method: r.candle.mean for r in result.rows}
    assert errors["mc_3"] > errors["mc_1"]
    assert errors["mc_3"] > errors["mc_2"]
