"""Extension benchmark: the Section 4.7 categorical evaluation.

The paper leaves evaluating the categorical extension to future work;
this benchmark does it and asserts the Figure-2-style shape carries
over to mixed-arity data.
"""

import pytest

from repro.experiments import categorical_ext


@pytest.fixture(scope="module")
def result(scale):
    return categorical_ext.run(scale=scale, epsilons=(1.0,), ks=(2, 3), seed=2)


def test_categorical_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: categorical_ext.run(
            scale=scale, epsilons=(1.0,), ks=(2,), seed=2
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + outcome.render())


def test_priview_beats_direct(result):
    for k in (2, 3):
        priview = result.row("CategoricalPriView", k, 1.0).headline()
        direct = result.row("CategoricalDirect", k, 1.0).headline()
        assert priview < direct


def test_priview_beats_uniform(result):
    for k in (2, 3):
        priview = result.row("CategoricalPriView", k, 1.0).headline()
        uniform = result.row("CategoricalUniform", k, 1.0).headline()
        assert priview < uniform


def test_direct_degrades_with_k(result):
    """Direct's noise grows with C(d,k): k=3 must be worse than k=2."""
    assert (
        result.row("CategoricalDirect", 3, 1.0).headline()
        > result.row("CategoricalDirect", 2, 1.0).headline()
    )
