"""Benchmark the synthesis vertical: fit → synthesize → sample.

Emits ``BENCH_synth.json`` — the acceptance configuration is a mixed
domain of 8 attributes with arities 2–8 at N=200k.  The bars:

* accuracy — the synthetic population's mean L1 error over every
  covered 2-way marginal (against the true data) stays within 1.5x of
  the synopsis's own noise error at the same epsilon.  Synthesis is
  post-processing, so it can only add approximation error on top of
  the noise; this bounds how much.
* throughput — record sampling from the synthesized population
  sustains at least 100k records/s.
* privacy — the ledger audit shows synthesis spent exactly zero
  additional epsilon.
"""

import itertools
import json
import pathlib
from time import perf_counter

import numpy as np

from repro import obs
from repro.categorical.dataset import CategoricalDataset
from repro.categorical.priview import CategoricalPriView
from repro.marginals.domain import Domain
from repro.synth import RecordSampler, Synthesizer

ARITIES = (2, 3, 4, 5, 6, 7, 8, 2)
N = 200_000
EPSILON = 1.0
SAMPLE_BATCH = 100_000
SAMPLE_ROUNDS = 10
L1_RATIO_BAR = 1.5
THROUGHPUT_BAR = 100_000.0


def _mean_l1_over_pairs(pairs, dataset, lookup, n):
    """Mean normalized L1 between true pair marginals and ``lookup``'s."""
    errors = []
    for pair in pairs:
        truth = dataset.marginal(pair).counts / dataset.num_records
        approx = lookup(pair)
        errors.append(np.abs(approx / n - truth).sum())
    return float(np.mean(errors))


def test_bench_synth_export(scale, bench_rng):
    domain = Domain.from_arities(ARITIES)
    dataset = CategoricalDataset.random(N, domain, rng=bench_rng)

    with obs.session() as sess:
        fit_start = perf_counter()
        synopsis = CategoricalPriView(epsilon=EPSILON, seed=20140622).fit(
            dataset
        )
        fit_s = perf_counter() - fit_start

        synth_start = perf_counter()
        records = Synthesizer(seed=20140622).fit(synopsis)
        synth_s = perf_counter() - synth_start

        audit = {row.name: row for row in sess.ledger.audit()}
    fit_row = audit["CategoricalPriView.fit"]
    synth_row = audit["Synthesizer.fit"]
    assert fit_row.spent_max == EPSILON
    # the acceptance bar: synthesis spends exactly zero epsilon
    assert synth_row.configured == 0.0
    assert synth_row.spent_max == 0.0
    assert synth_row.status == "exact"

    covered = sorted({
        pair
        for view in synopsis.views
        for pair in itertools.combinations(sorted(view.attrs), 2)
    })
    synopsis_l1 = _mean_l1_over_pairs(
        covered, dataset,
        lambda pair: synopsis.marginal(pair).counts
        / synopsis.total_count() * N,
        N,
    )
    synthetic_l1 = _mean_l1_over_pairs(
        covered, dataset,
        lambda pair: records.marginal(pair).counts
        / records.num_records * N,
        N,
    )
    ratio = synthetic_l1 / max(synopsis_l1, 1e-12)
    assert ratio <= L1_RATIO_BAR, (
        f"synthetic mean L1 {synthetic_l1:.5f} is {ratio:.2f}x the "
        f"synopsis noise error {synopsis_l1:.5f} (bar: {L1_RATIO_BAR}x)"
    )

    sampler = RecordSampler(records, seed=0)
    sampler.sample(SAMPLE_BATCH)  # warm
    sample_start = perf_counter()
    for _ in range(SAMPLE_ROUNDS):
        sampler.sample(SAMPLE_BATCH)
    sample_s = perf_counter() - sample_start
    records_per_s = SAMPLE_ROUNDS * SAMPLE_BATCH / sample_s
    assert records_per_s >= THROUGHPUT_BAR, (
        f"sampling sustained {records_per_s:,.0f} records/s "
        f"(bar: {THROUGHPUT_BAR:,.0f})"
    )

    payload = {
        "benchmark": f"synth_d{len(ARITIES)}_n{N}",
        "scale": scale.name,
        "accuracy": {
            "covered_pairs": len(covered),
            "synopsis_l1": synopsis_l1,
            "synthetic_l1": synthetic_l1,
            "l1_ratio": ratio,
            "bar": L1_RATIO_BAR,
        },
        "synthesis": {
            "fit_s": synth_s,
            "rounds": records.meta["rounds"],
            "records": records.num_records,
            "records_per_s": records.num_records / synth_s,
            "final_l1": records.meta["final_l1"],
        },
        "priview_fit_s": fit_s,
        "sampling": {
            "batch": SAMPLE_BATCH,
            "records_per_s": records_per_s,
            "bar": THROUGHPUT_BAR,
        },
        "privacy": {
            "fit_epsilon_spent": fit_row.spent_max,
            "synth_epsilon_spent": synth_row.spent_max,
        },
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_synth.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
