"""Benchmark regenerating Figure 6 (different covering designs)."""

import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def result(scale):
    return figure6.run(
        scale=scale,
        epsilons=(1.0,),
        ks=(4,),
        design_params=((7, 2), (8, 2), (9, 2), (8, 3)),
        seed=17,
    )


def test_figure6_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: figure6.run(
            scale=scale, epsilons=(1.0,), ks=(4,),
            design_params=((8, 2),), seed=17,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + outcome.render())


def test_figure6_similar_widths_perform_similarly(result):
    """'Multiple covering designs with different l values perform
    similarly' — within a small factor of each other."""
    t2_means = [
        r.candle.mean
        for r in result.rows
        if r.method.startswith("C_2") and r.k == 4
    ]
    assert max(t2_means) < 5 * min(t2_means)


def test_figure6_prediction_reasonable(result):
    """Equation 5 predicts the *noise* part; the measured error should
    be within an order of magnitude of it at quick scale."""
    for row in result.rows:
        assert row.candle.mean < 100 * row.expected
