"""Shared fixtures for the benchmark suite.

Benchmarks default to the ``quick`` experiment scale so the whole
suite finishes in minutes; set ``REPRO_SCALE=paper`` to regenerate
figures at the full Section 5 protocol (hours).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(20140622)
