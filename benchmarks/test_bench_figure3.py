"""Benchmark regenerating Figure 3 (reconstruction methods)."""

import pytest

from repro.experiments import figure3


@pytest.fixture(scope="module")
def kosarak(scale):
    return figure3.run(scale=scale, datasets=("kosarak",), ks=(4, 6), seed=5)[0]


def test_figure3_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: figure3.run(
            scale=scale, datasets=("kosarak",), ks=(4,),
            variants=("CME", "CLN"), seed=5,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + outcome[0].render())


def test_figure3_maxent_wins(kosarak):
    """'It is clear from the results that the maximum entropy method
    outperforms the alternatives.'"""
    for k in (4, 6):
        cme = kosarak.row("CME", k, 1.0).headline()
        for other in ("LP", "CLP", "CLN"):
            assert cme <= kosarak.row(other, k, 1.0).headline() * 1.1


def test_figure3_lp_worst_and_clp_fixes_it(kosarak):
    """LP without consistency is worst; adding the consistency
    preprocessing step (CLP) reduces its error (aggregated over k —
    individual k cells can tie within noise)."""
    lp_total = sum(kosarak.row("LP", k, 1.0).headline() for k in (4, 6))
    clp_total = sum(kosarak.row("CLP", k, 1.0).headline() for k in (4, 6))
    assert clp_total < lp_total
    for k in (4, 6):
        lp = kosarak.row("LP", k, 1.0).headline()
        for other in ("CME", "CLN"):
            assert kosarak.row(other, k, 1.0).headline() < lp * 1.05


def test_figure3_noise_free_floor(kosarak):
    for k in (4, 6):
        assert kosarak.row("CME*", k, 1.0).headline() < kosarak.row(
            "CME", k, 1.0
        ).headline()
