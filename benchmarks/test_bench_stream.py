"""Benchmark the streaming vertical: ingest → fit → publish → query.

Emits ``BENCH_stream.json`` — sustained window throughput (events
ingested per second and windows released per minute at d=32 with
N=200k records per window, the acceptance configuration) plus the
latency of last-k window-union queries served through the router.
The acceptance bar: every window publishes as its own store version
with window metadata, the parallel-composition audit balances
exactly, and the union of the released windows accounts for every
ingested record.
"""

import json
import pathlib
from time import perf_counter

import numpy as np

from repro import obs
from repro.serve import EngineRouter
from repro.store import SynopsisStore
from repro.stream import (
    BudgetSchedule,
    CountWindowPolicy,
    Event,
    WindowScheduler,
    answer_windows,
)

D = 32
WINDOW_RECORDS = 200_000
WINDOWS = 3
UNION_QUERIES = 30


def _events(rng, n: int):
    """Pre-draw the transaction matrix; yield one Event per record."""
    rows = rng.random((n, D)) < 0.3
    for row in rows:
        yield Event(tuple(int(x) for x in np.nonzero(row)[0]))


def test_bench_stream_export(scale, tmp_path):
    rng = np.random.default_rng(0)
    store = SynopsisStore(tmp_path / "registry")
    total = WINDOWS * WINDOW_RECORDS

    with obs.session() as sess:
        scheduler = WindowScheduler(
            store, "stream32", D, BudgetSchedule(1.0),
            CountWindowPolicy(WINDOW_RECORDS),
        )
        start = perf_counter()
        released = scheduler.run(_events(rng, total))
        elapsed = perf_counter() - start
        sess.ledger.check()
        assert sess.ledger.total_spent() == 1.0  # parallel, not 3.0

    assert [r.version for r in released] == list(range(1, WINDOWS + 1))
    assert sum(r.records for r in released) == total
    fit_s = [r.fit_seconds for r in released]

    with EngineRouter(store) as router:
        cold_start = perf_counter()
        answer = answer_windows(router, "stream32", (0, 5, 9), last=WINDOWS)
        cold_s = perf_counter() - cold_start
        assert answer.union.total() == sum(
            s.answer.table.total() for s in answer.slices
        )
        warm = []
        for i in range(UNION_QUERIES):
            attrs = (i % D, (i + 7) % D)
            t0 = perf_counter()
            answer_windows(router, "stream32", attrs, last=WINDOWS)
            warm.append(perf_counter() - t0)

    warm_ms = sorted(1e3 * s for s in warm)
    payload = {
        "benchmark": f"stream_d{D}_n{WINDOW_RECORDS}x{WINDOWS}",
        "scale": scale.name,
        "ingest": {
            "events": total,
            "events_per_s": total / elapsed,
            "wall_s": elapsed,
        },
        "windows": {
            "released": len(released),
            "per_minute": 60.0 * len(released) / elapsed,
            "fit_mean_s": sum(fit_s) / len(fit_s),
            "fit_max_s": max(fit_s),
        },
        "union_query": {
            "cold_ms": 1e3 * cold_s,
            "warm_mean_ms": sum(warm_ms) / len(warm_ms),
            "warm_p95_ms": warm_ms[int(0.95 * (len(warm_ms) - 1))],
            "slices": WINDOWS,
        },
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_stream.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
