"""Benchmark the synopsis store: publish, load, and routing overhead.

Emits ``BENCH_store.json`` — wall time for publish (serialize + hash +
fsync + manifest commit), verified vs. unverified loads, full-store
``verify``, and the router's cold-build vs. warm-lease path on a d=32
synopsis — the machine-readable trajectory later storage PRs diff
against.  The acceptance bar: every load is bitwise identical to the
published synopsis, the store verifies clean after a burst of
versions, and re-publishing identical bytes dedups to a single
content-addressed object.
"""

import json
import pathlib
from time import perf_counter

import numpy as np

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.data import experiment_dataset
from repro.serve import EngineRouter
from repro.store import SynopsisStore, artifacts

D = 32
VERSIONS = 4


def _timed(fn):
    start = perf_counter()
    result = fn()
    return perf_counter() - start, result


def test_bench_store_export(scale, tmp_path):
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(D, 8, 2)
    synopses = [
        PriView(1.0, design=design, seed=seed).fit(dataset)
        for seed in range(VERSIONS)
    ]

    store = SynopsisStore(tmp_path / "registry")
    publish_s = []
    for synopsis in synopses:
        seconds, _ = _timed(lambda s=synopsis: store.publish("kosarak", s))
        publish_s.append(seconds)

    # -- dedup: identical bytes re-published => same object, new version
    objects_before = len(list(artifacts.iter_objects(store.objects_dir)))
    again = store.publish("kosarak", synopses[-1])
    assert again.version == VERSIONS + 1
    assert (
        len(list(artifacts.iter_objects(store.objects_dir))) == objects_before
    )
    info = store.resolve("kosarak@latest")
    size_mb = info.size_bytes / 2**20

    verified_s, loaded = _timed(lambda: store.get("kosarak@latest"))
    unverified_s, _ = _timed(
        lambda: store.get("kosarak@latest", verify=False)
    )
    for mine, published in zip(loaded.views, synopses[-1].views):
        assert mine.attrs == published.attrs
        assert np.array_equal(mine.counts, published.counts)

    verify_s, report = _timed(store.verify)
    assert report["clean"], report

    with EngineRouter(store) as router:
        cold_s, _ = _timed(lambda: router.lease("kosarak").__exit__(
            None, None, None
        ))
        warm = []
        for _ in range(50):
            seconds, lease = _timed(lambda: router.lease("kosarak"))
            lease.__exit__(None, None, None)
            warm.append(seconds)

    payload = {
        "benchmark": f"store_kosarak_{design.notation}",
        "scale": scale.name,
        "artifact": {
            "versions": VERSIONS + 1,
            "objects": objects_before,
            "size_mb": size_mb,
            "num_views": info.num_views,
        },
        "publish": {
            "mean_s": sum(publish_s) / len(publish_s),
            "max_s": max(publish_s),
        },
        "load": {
            "verified_s": verified_s,
            "unverified_s": unverified_s,
            "verify_overhead": verified_s / unverified_s,
        },
        "verify_store_s": verify_s,
        "router": {
            "cold_build_s": cold_s,
            "warm_lease_mean_us": 1e6 * sum(warm) / len(warm),
            "warm_lease_max_us": 1e6 * max(warm),
        },
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_store.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
