"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the knobs the paper fixes:
the Ripple threshold theta, the consistency step's contribution, the
IPF-vs-dual max-entropy solver, and covering-design quality.
"""

import numpy as np
import pytest

from repro.core.consistency import make_consistent
from repro.core.priview import PriView
from repro.core.reconstruction import reconstruct
from repro.core.reconstruction.constraints import extract_constraints
from repro.core.reconstruction.maxent import maxent, maxent_dual
from repro.covering.bounds import schonheim_bound
from repro.covering.repository import best_design
from repro.experiments.data import experiment_dataset
from repro.marginals.queries import random_attribute_sets
from repro.metrics.l2 import normalized_l2_error


@pytest.fixture(scope="module")
def kosarak(scale):
    return experiment_dataset("kosarak", scale)


@pytest.fixture(scope="module")
def design():
    return best_design(32, 8, 2)


def _mean_error(synopsis, dataset, queries, method="maxent"):
    n = dataset.num_records
    return float(
        np.mean(
            [
                normalized_l2_error(
                    synopsis.marginal(q, method=method), dataset.marginal(q), n
                )
                for q in queries
            ]
        )
    )


class TestThetaAblation:
    """The paper fixes theta to 'some small value'; sweep it."""

    @pytest.mark.parametrize("theta", [0.1, 1.0, 10.0, 100.0])
    def test_theta_insensitive_region(self, kosarak, design, theta, bench_rng):
        queries = random_attribute_sets(32, 4, 5, bench_rng)
        synopsis = PriView(
            1.0, design=design, theta=theta, seed=2
        ).fit(kosarak)
        err = _mean_error(synopsis, kosarak, queries)
        # any small theta performs within a small factor of theta=1
        reference = PriView(1.0, design=design, theta=1.0, seed=2).fit(kosarak)
        ref_err = _mean_error(reference, kosarak, queries)
        assert err < 3 * ref_err


class TestConsistencyAblation:
    def test_consistency_reduces_error(self, kosarak, design, bench_rng):
        """The Section 4.4 claim: redundancy exploitation helps."""
        queries = random_attribute_sets(32, 4, 6, bench_rng)
        errs = {}
        for label, consistent in (("on", True), ("off", False)):
            synopsis = PriView(
                0.2,
                design=design,
                consistency=consistent,
                nonnegativity="none",
                seed=3,
            ).fit(kosarak)
            errs[label] = _mean_error(synopsis, kosarak, queries)
        assert errs["on"] < errs["off"]

    def test_bench_consistency_step(self, benchmark, kosarak, design):
        mechanism = PriView(1.0, design=design, seed=0)
        views = mechanism.generate_noisy_views(kosarak, design)
        benchmark.pedantic(
            lambda: make_consistent([v.copy() for v in views]),
            rounds=3,
            iterations=1,
        )


class TestSolverAblation:
    def _setup(self, kosarak, design, bench_rng):
        synopsis = PriView(1.0, design=design, seed=5).fit(kosarak)
        attrs = next(
            q
            for q in random_attribute_sets(32, 6, 50, bench_rng)
            if not design.covers(q)
        )
        constraints = extract_constraints(synopsis.views, attrs)
        return constraints, attrs, synopsis.total_count()

    def test_bench_ipf(self, benchmark, kosarak, design, bench_rng):
        constraints, attrs, total = self._setup(kosarak, design, bench_rng)
        benchmark(lambda: maxent(constraints, attrs, total))

    def test_bench_dual(self, benchmark, kosarak, design, bench_rng):
        constraints, attrs, total = self._setup(kosarak, design, bench_rng)
        benchmark.pedantic(
            lambda: maxent_dual(constraints, attrs, total),
            rounds=2,
            iterations=1,
        )

    def test_solvers_agree(self, kosarak, design, bench_rng):
        constraints, attrs, total = self._setup(kosarak, design, bench_rng)
        primal = maxent(constraints, attrs, total)
        dual = maxent_dual(constraints, attrs, total)
        assert np.allclose(primal.normalized(), dual.normalized(), atol=1e-3)


class TestDesignQuality:
    def test_bundled_designs_near_bounds(self):
        """Report how far each experiment design is from the Schönheim
        bound; the two algebraic ones are exactly optimal."""
        gaps = {}
        for d, l, t in [(32, 8, 2), (64, 8, 2), (45, 8, 2), (32, 8, 3)]:
            design = best_design(d, l, t)
            gaps[(d, l, t)] = design.num_blocks / schonheim_bound(d, l, t)
        assert gaps[(32, 8, 2)] == 1.0
        assert gaps[(64, 8, 2)] == 1.0
        assert gaps[(45, 8, 2)] < 1.5
        print("\nblocks / Schönheim bound:", gaps)
