"""Benchmark regenerating Figure 1 (MSNBC, d=9, all approaches).

Runs at the session's scale (quick by default; REPRO_SCALE=paper for
the full protocol) and asserts the paper's headline orderings.
"""

import pytest

from repro.experiments import figure1


@pytest.fixture(scope="module")
def result(scale):
    ks = (2, 4) if scale.name == "quick" else figure1.KS
    return figure1.run(scale=scale, ks=ks, epsilons=(1.0,), seed=7)


def test_figure1_regeneration(benchmark, scale):
    outcome = benchmark.pedantic(
        lambda: figure1.run(
            scale=scale, ks=(2,), epsilons=(1.0,), include_mwem=False, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.rows
    print("\n" + outcome.render())


def test_figure1_shape_priview_matches_flat(result):
    """Section 5.1: 'PriView performs as well as Flat' (same decade)."""
    for k in (2, 4):
        priview = result.row("PriView", k, 1.0).headline()
        flat = result.row("Flat", k, 1.0).headline()
        assert priview < 10 * flat


def test_figure1_shape_flat_beats_direct_and_fourier(result):
    for k in (2, 4):
        flat = result.row("Flat", k, 1.0).headline()
        assert flat < result.row("Direct", k, 1.0).headline()
        assert flat < result.row("Fourier", k, 1.0).headline()


def test_figure1_shape_learning_worst_even_noiseless(result):
    """The paper's most interesting Figure 1 observation."""
    for k in (4,):
        noisefree = result.row("Learning-noisefree", k, 1.0).headline()
        for better in ("PriView", "Flat", "Direct", "Fourier"):
            assert result.row(better, k, 1.0).headline() < noisefree


def test_figure1_shape_matrix_mechanism_between_flat_and_direct(result):
    for k in (2, 4):
        mm = result.row("MatrixMechanism", k, 1.0).headline()
        assert mm < result.row("Direct", k, 1.0).headline()


def test_figure1_shape_everything_beats_uniform(result):
    for k in (2, 4):
        uniform = result.row("Uniform", k, 1.0).headline()
        for method in ("PriView", "Flat", "Direct", "Fourier", "DataCube"):
            assert result.row(method, k, 1.0).headline() < uniform
