"""The observability session: one tracer + metrics + ledger bundle.

A process has at most one *active* session, installed with the
:func:`session` context manager (sessions nest; the previous one is
restored on exit).  All instrumentation in the library goes through
the module-level helpers below, whose disabled path is a single global
read — with no active session, ``span()`` returns a shared no-op
context manager and ``incr``/``record_draw`` return immediately, so
the pipeline's cost is unchanged (see ``scripts/check_obs_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.ledger import BudgetLedger, DrawRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class _NoopContext:
    """Shared do-nothing ``with`` target for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    # Make the no-op usable where a Span or BudgetScope is expected.
    def incr(self, name, value=1):
        pass


_NOOP = _NoopContext()


class ObsSession:
    """Bundles the tracer, metrics registry and budget ledger.

    Parameters
    ----------
    trace / metrics / ledger:
        Disable individual components by passing ``False``; the
        corresponding attribute is then ``None`` and its helpers
        degrade to no-ops.
    exporters:
        Objects exposing ``export_span(span)``, ``export_summary(dict)``
        and ``close()`` (see :mod:`repro.obs.exporters`).
    """

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        ledger: bool = True,
        exporters=(),
    ):
        self.tracer = Tracer() if trace else None
        self.metrics = MetricsRegistry() if metrics else None
        self.ledger = BudgetLedger() if ledger else None
        self.exporters = list(exporters)
        if self.tracer is not None:
            self.tracer._exporters = self.exporters

    def summary(self) -> dict:
        """JSON-serialisable end-of-session summary."""
        out: dict = {}
        if self.metrics is not None:
            out.update(self.metrics.snapshot())
        if self.ledger is not None:
            out["ledger"] = self.ledger.to_dicts()
            out["ledger_total_epsilon"] = self.ledger.total_spent()
            out["ledger_total_draws"] = self.ledger.total_draws()
        if self.tracer is not None:
            out["trace_roots"] = len(self.tracer.roots)
        return out

    def close(self) -> None:
        """Flush the final summary to every exporter and close them."""
        summary = self.summary()
        for exporter in self.exporters:
            exporter.export_summary(summary)
            exporter.close()


#: The process-wide active session (None = observability disabled).
_SESSION: ObsSession | None = None


def current() -> ObsSession | None:
    """The active session, or None when observability is disabled."""
    return _SESSION


def enabled() -> bool:
    """True when an observability session is active."""
    return _SESSION is not None


@contextmanager
def session(
    trace: bool = True,
    metrics: bool = True,
    ledger: bool = True,
    exporters=(),
):
    """Install an :class:`ObsSession` for the duration of the block."""
    global _SESSION
    previous = _SESSION
    sess = ObsSession(
        trace=trace, metrics=metrics, ledger=ledger, exporters=exporters
    )
    _SESSION = sess
    try:
        yield sess
    finally:
        _SESSION = previous
        sess.close()


def install(sess: ObsSession) -> ObsSession | None:
    """Install ``sess`` as the active session with no scope.

    For long-running processes (the HTTP server) where a ``with``
    block is impractical; returns the previous session so callers can
    :func:`uninstall` back to it.  Prefer :func:`session` everywhere
    a block works.
    """
    global _SESSION
    previous = _SESSION
    _SESSION = sess
    return previous


def uninstall(sess: ObsSession, previous: ObsSession | None = None) -> None:
    """Undo :func:`install` — only if ``sess`` is still the active one."""
    global _SESSION
    if _SESSION is sess:
        _SESSION = previous


# ----------------------------------------------------------------------
# Fast-path instrumentation helpers (the API the library calls)
# ----------------------------------------------------------------------
def span(name: str):
    """A timed span context manager (no-op when disabled)."""
    sess = _SESSION
    if sess is None or sess.tracer is None:
        return _NOOP
    return sess.tracer.span(name)

def incr(name: str, value: float = 1) -> None:
    """Bump a session counter and the innermost open span's counter."""
    sess = _SESSION
    if sess is None:
        return
    if sess.metrics is not None:
        sess.metrics.incr(name, value)
    if sess.tracer is not None:
        sess.tracer.incr_current(name, value)


def incr_each(names, value: float = 1) -> None:
    """Bump several counters at once (one lock, one span lookup).

    Equivalent to ``for n in names: incr(n, value)`` but resolves the
    session, the metrics lock, and the innermost span a single time —
    the form hot paths with a fixed counter set should use.
    """
    sess = _SESSION
    if sess is None:
        return
    if sess.metrics is not None:
        sess.metrics.incr_each(names, value)
    if sess.tracer is not None:
        span = sess.tracer.current()
        if span is not None:
            for name in names:
                span.incr(name, value)


def set_gauge(name: str, value: float) -> None:
    """Record the latest value of a session gauge."""
    sess = _SESSION
    if sess is None or sess.metrics is None:
        return
    sess.metrics.set_gauge(name, value)


def observe(name: str, value: float, labels=None) -> None:
    """Fold one value into a session observation (summary + histogram).

    ``labels`` (a dict, or a pre-sorted tuple of pairs on hot paths)
    selects the series — e.g. per planner path / dataset latency
    histograms in the serving layer.
    """
    sess = _SESSION
    if sess is None or sess.metrics is None:
        return
    sess.metrics.observe(name, value, labels)


def record_draw(
    mechanism: str,
    *,
    epsilon: float,
    sensitivity: float,
    scale: float,
    draws: int,
    divide_by_sensitivity: bool = True,
    label: str = "",
) -> None:
    """Attribute one noise-primitive call to the active budget scope."""
    sess = _SESSION
    if sess is None or sess.ledger is None:
        return
    sess.ledger.record(
        DrawRecord(
            mechanism=mechanism,
            epsilon=epsilon,
            sensitivity=sensitivity,
            scale=scale,
            draws=draws,
            divide_by_sensitivity=divide_by_sensitivity,
            label=label,
        )
    )


def budget_scope(
    name: str,
    configured: float | None,
    strict: bool = True,
    composition: str = "sequential",
):
    """Open a ledger scope for one logical operation (no-op when disabled).

    ``composition="parallel"`` adopts scopes opened inside it as
    children and accounts them by max — parallel composition over
    disjoint inputs (see :mod:`repro.obs.ledger`).
    """
    sess = _SESSION
    if sess is None or sess.ledger is None:
        return _NOOP
    return sess.ledger.scope(
        name, configured, strict=strict, composition=composition
    )
