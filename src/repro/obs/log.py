"""Structured logging for the repro package.

Everything logs under the ``repro`` namespace; :func:`configure_logging`
is called once by the CLI (``--log-level``) and installs a stderr
handler so log lines never mix with the experiment reports on stdout.
Library code gets loggers from :func:`get_logger` and never configures
handlers itself, so embedding applications keep full control.
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER_NAME = "repro"

LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: str | int | None = None) -> logging.Logger:
    """Install a stderr handler on the ``repro`` logger (idempotent).

    ``level`` may be a name from :data:`LEVELS`, a numeric level, or
    None for the default WARNING.
    """
    if level is None:
        level = logging.WARNING
    elif isinstance(level, str):
        level = getattr(logging, level.upper())
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    if not any(
        isinstance(h, logging.StreamHandler) and getattr(h, "_repro", False)
        for h in root.handlers
    ):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        handler._repro = True
        root.addHandler(handler)
    return root
