"""Span-based tracing for the PriView pipeline.

A :class:`Span` measures one pipeline stage with ``perf_counter``;
spans nest, forming a tree per top-level operation (a ``PriView.fit``,
an experiment run).  The :class:`Tracer` keeps one span stack per
thread, so concurrent fits trace independently, and hands finished
root spans to the attached exporters.

When no observability session is active the module-level ``span()``
helper in :mod:`repro.obs.session` returns a shared no-op context
manager, so instrumented code pays a single global read plus an empty
``with`` block — nothing is allocated.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.obs import propagation


class Span:
    """One timed pipeline stage; also its own context manager.

    When a sampled :class:`~repro.obs.propagation.TraceContext` is
    installed on the opening thread (a served request, say), the span
    records its ``trace_id``, so every span a request triggers —
    across the server handler, the engine pool, the planner and the
    solver — carries the same id end to end.
    """

    __slots__ = (
        "name", "start", "duration", "children", "counters", "trace_id",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer | None" = None):
        self.name = name
        self.start = 0.0
        self.duration = 0.0
        self.children: list[Span] = []
        self.counters: dict[str, float] = {}
        self.trace_id: str | None = None
        self._tracer = tracer

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        context = propagation.current_context()
        if context is not None and context.sampled:
            self.trace_id = context.trace_id
        if self._tracer is not None:
            self._tracer._push(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self.start
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- bookkeeping ----------------------------------------------------
    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to this span's local counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the JSON-lines exporter)."""
        out: dict = {"name": self.name, "duration": self.duration}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict` (round-trips through JSON)."""
        span = cls(data["name"])
        span.duration = float(data["duration"])
        span.trace_id = data.get("trace_id")
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration:.6f}s, children={len(self.children)})"


class Tracer:
    """Per-thread span stacks plus the finished root-span store.

    ``max_roots`` bounds memory for very long sessions (e.g. a whole
    test run); overflow roots are dropped and counted in
    :attr:`dropped_roots`.
    """

    def __init__(self, max_roots: int = 100_000):
        self._local = threading.local()
        self._lock = threading.Lock()
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.dropped_roots = 0
        self._exporters: list = []

    # -- stack plumbing (called by Span) --------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mispaired exits instead of corrupting the tree.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            while stack and stack.pop() is not span:
                pass
        if not stack:
            self._finish_root(span)

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            if len(self.roots) < self.max_roots:
                self.roots.append(span)
            else:
                self.dropped_roots += 1
        for exporter in self._exporters:
            exporter.export_span(span)

    # -- public API -----------------------------------------------------
    def span(self, name: str) -> Span:
        """A new span attached to this tracer (use as ``with`` target)."""
        return Span(name, self)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def incr_current(self, name: str, value: float = 1) -> None:
        """Bump a counter on the innermost open span (no-op outside one)."""
        span = self.current()
        if span is not None:
            span.incr(name, value)
