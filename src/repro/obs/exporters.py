"""Exporters: where finished spans and session summaries go.

Three built-ins:

* :class:`InMemoryExporter` — collects everything, for tests;
* :class:`JsonLinesExporter` — one JSON object per line, machine
  readable (``{"type": "span" | "summary", ...}``);
* console rendering helpers — :func:`render_summary` produces the
  human-readable stage-timing tree and budget audit that
  ``python -m repro run ... --trace`` prints.

Because one experiment performs hundreds of fits, the console tree
*aggregates* spans by path: siblings with the same name are merged
into one line with a call count, total and mean duration, and summed
counters.  The raw (unaggregated) trees remain available on the
tracer and in the JSON-lines output.
"""

from __future__ import annotations

import json
import math
import pathlib
import threading
import time

from repro.obs.tracing import Span


class InMemoryExporter:
    """Keeps exported spans and summaries in lists (test helper)."""

    def __init__(self):
        self.spans: list[Span] = []
        self.summaries: list[dict] = []

    def export_span(self, span: Span) -> None:
        self.spans.append(span)

    def export_summary(self, summary: dict) -> None:
        self.summaries.append(summary)

    def close(self) -> None:
        pass


class JsonLinesExporter:
    """Appends one JSON object per finished root span / final summary.

    The file is opened lazily on first write and may be shared by
    several sessions (e.g. one per experiment in ``run all``); each
    session contributes its spans followed by one summary record.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._handle = None

    def _write(self, obj: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(obj, sort_keys=True) + "\n")

    def export_span(self, span: Span) -> None:
        self._write({"type": "span", "span": span.to_dict()})

    def export_summary(self, summary: dict) -> None:
        self._write({"type": "summary", **summary})
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MetricsSnapshotWriter:
    """Periodic JSON-lines metrics snapshots, for headless runs.

    Appends one ``{"type": "metrics_snapshot", "ts": ..., "seq": n,
    "counters": ..., "gauges": ..., "observations": ...,
    "histograms": ...}`` record per interval (plus one final record on
    :meth:`stop`), so a long-running server leaves a scrape-free
    metrics trajectory behind.  ``registry`` may be an explicit
    :class:`~repro.obs.metrics.MetricsRegistry` or None, meaning
    "whatever session is active at each tick".

    Writes are serialised under a lock and each record is a single
    ``write()`` call, so concurrent :meth:`write_now` callers never
    interleave or tear lines (exercised by
    ``tests/obs/test_concurrency.py``).
    """

    def __init__(self, path, registry=None, interval_s: float = 10.0):
        self.path = pathlib.Path(path)
        self.registry = registry
        self.interval_s = float(interval_s)
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _resolve_registry(self):
        if self.registry is not None:
            return self.registry
        from repro.obs.session import current

        sess = current()
        return sess.metrics if sess is not None else None

    def write_now(self) -> dict | None:
        """Append one snapshot record immediately; returns it."""
        registry = self._resolve_registry()
        if registry is None:
            return None
        snapshot = registry.snapshot()
        with self._lock:
            self._seq += 1
            record = {
                "type": "metrics_snapshot",
                "ts": time.time(),
                "seq": self._seq,
                **snapshot,
            }
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_now()

    def start(self) -> "MetricsSnapshotWriter":
        """Start the background snapshot thread; returns self."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-metrics-snapshots", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread, flush one final snapshot, close the file."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.write_now()
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "MetricsSnapshotWriter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def read_metrics_snapshots(path) -> list[dict]:
    """The metrics-snapshot records in a JSON-lines file."""
    return [
        record for record in read_jsonl(path)
        if record.get("type") == "metrics_snapshot"
    ]


def read_jsonl(path) -> list[dict]:
    """Parse a JSON-lines file back into a list of records."""
    records = []
    with pathlib.Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def read_spans(path) -> list[Span]:
    """The span trees stored in a JSON-lines trace file."""
    return [
        Span.from_dict(record["span"])
        for record in read_jsonl(path)
        if record.get("type") == "span"
    ]


# ----------------------------------------------------------------------
# Aggregation and console rendering
# ----------------------------------------------------------------------
class _AggNode:
    __slots__ = ("name", "count", "total", "counters", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.counters: dict[str, float] = {}
        self.children: dict[str, _AggNode] = {}


def _aggregate_into(node_map: dict, spans) -> None:
    for span in spans:
        node = node_map.get(span.name)
        if node is None:
            node = node_map[span.name] = _AggNode(span.name)
        node.count += 1
        node.total += span.duration
        for key, value in span.counters.items():
            node.counters[key] = node.counters.get(key, 0) + value
        _aggregate_into(node.children, span.children)


def aggregate_spans(roots) -> dict:
    """Merge span trees by path: ``{name: _AggNode}`` at each level."""
    node_map: dict[str, _AggNode] = {}
    _aggregate_into(node_map, roots)
    return node_map


def flatten_stages(roots, separator: str = ".") -> dict:
    """Dotted-path view of the aggregated tree, for BENCH_*.json.

    Returns ``{"a.b": {"seconds": total, "count": n, "counters": {...}}}``.
    """
    flat: dict[str, dict] = {}

    def visit(node_map: dict, prefix: str) -> None:
        for name, node in node_map.items():
            path = f"{prefix}{separator}{name}" if prefix else name
            flat[path] = {
                "seconds": node.total,
                "count": node.count,
            }
            if node.counters:
                flat[path]["counters"] = dict(node.counters)
            visit(node.children, path)

    visit(aggregate_spans(roots), "")
    return flat


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.3f}ms"


def render_span_tree(roots) -> str:
    """The aggregated stage-timing tree, one line per distinct path."""
    lines = []

    def visit(node_map: dict, prefix: str, child_prefix: str) -> None:
        nodes = sorted(node_map.values(), key=lambda n: -n.total)
        for i, node in enumerate(nodes):
            last = i == len(nodes) - 1
            branch = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            label = node.name if node.count == 1 else f"{node.name} ×{node.count}"
            counters = ""
            if node.counters:
                inner = ", ".join(
                    f"{k}={v:g}" for k, v in sorted(node.counters.items())
                )
                counters = f"  [{inner}]"
            lines.append(
                f"{prefix}{branch}{label:<{max(46 - len(prefix) - 3, 8)}}"
                f"{_fmt_seconds(node.total)}{counters}"
            )
            visit(node.children, prefix + extension, child_prefix)

    visit(aggregate_spans(roots), "", "")
    return "\n".join(lines)


def _fmt_epsilon(value: float | None) -> str:
    if value is None:
        return "-"
    if math.isinf(value):
        return "inf"
    return f"{value:.6g}"


def render_audit(ledger) -> str:
    """The budget-ledger audit table (scope, configured ε, spent ε)."""
    rows = ledger.audit()
    lines = ["privacy-budget ledger"]
    if not rows:
        lines.append("  (no noise draws recorded)")
        return "\n".join(lines)
    header = (
        f"  {'scope':<28} {'fits':>5} {'ε configured':>13} "
        f"{'ε spent/fit':>13} {'status':<8}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for row in rows:
        if row.spent_min == row.spent_max:
            spent = _fmt_epsilon(row.spent_min)
        else:
            spent = f"{_fmt_epsilon(row.spent_min)}..{_fmt_epsilon(row.spent_max)}"
        mark = "ok" if row.ok else ("MISMATCH" if row.strict else "info")
        lines.append(
            f"  {row.name:<28} {row.count:>5} {_fmt_epsilon(row.configured):>13} "
            f"{spent:>13} {row.status:<8} {mark}"
        )
    lines.append(
        f"  total: {ledger.total_draws()} draw calls, "
        f"ε spent across all scopes = {_fmt_epsilon(ledger.total_spent())}"
    )
    return "\n".join(lines)


def render_counters(snapshot: dict) -> str:
    """Counters/gauges/observations as a two-column table."""
    lines = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    observations = snapshot.get("observations", {})
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<40} {counters[name]:>14g}")
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<40} {gauges[name]:>14g}")
    if observations:
        lines.append("observations")
        histograms = snapshot.get("histograms", {})
        for name in sorted(observations):
            rec = observations[name]
            hist = histograms.get(name) or {}
            quantiles = ""
            if "p50" in hist:
                quantiles = (
                    f" p50={hist['p50']:.6g} p95={hist['p95']:.6g}"
                    f" p99={hist['p99']:.6g}"
                )
            lines.append(
                f"  {name:<40} n={rec['count']:g} mean={rec['mean']:.6g}"
                f" min={rec['min']:.6g} max={rec['max']:.6g}{quantiles}"
            )
    return "\n".join(lines)


def render_summary(session) -> str:
    """Full console report: stage tree, counters, budget audit."""
    blocks = []
    if session.tracer is not None and session.tracer.roots:
        blocks.append(
            "stage timings (aggregated over "
            f"{len(session.tracer.roots)} trace roots)\n"
            + render_span_tree(session.tracer.roots)
        )
        if session.tracer.dropped_roots:
            blocks.append(
                f"  ({session.tracer.dropped_roots} trace roots dropped)"
            )
    if session.metrics is not None:
        rendered = render_counters(session.metrics.snapshot())
        if rendered:
            blocks.append(rendered)
    if session.ledger is not None:
        blocks.append(render_audit(session.ledger))
    return "\n\n".join(blocks) if blocks else "(no trace data collected)"
