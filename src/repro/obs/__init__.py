"""``repro.obs`` — tracing, metrics and privacy-budget accounting.

See ``docs/OBSERVABILITY.md`` for the full guide.  Quick tour::

    import repro.obs as obs
    from repro.obs.exporters import InMemoryExporter, render_summary

    with obs.session(exporters=[InMemoryExporter()]) as sess:
        synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
        sess.ledger.check()          # every strict scope balanced exactly
        print(render_summary(sess))  # stage tree + counters + audit

With no active session every helper is a near-zero-cost no-op, so the
library is instrumented unconditionally.
"""

from repro.obs.exporters import (
    InMemoryExporter,
    JsonLinesExporter,
    flatten_stages,
    read_jsonl,
    read_spans,
    render_summary,
)
from repro.obs.ledger import AuditRow, BudgetLedger, BudgetScope, DrawRecord
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.session import (
    ObsSession,
    budget_scope,
    current,
    enabled,
    incr,
    observe,
    record_draw,
    session,
    set_gauge,
    span,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "AuditRow",
    "BudgetLedger",
    "BudgetScope",
    "DrawRecord",
    "InMemoryExporter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "ObsSession",
    "Span",
    "Tracer",
    "budget_scope",
    "configure_logging",
    "current",
    "enabled",
    "flatten_stages",
    "get_logger",
    "incr",
    "observe",
    "read_jsonl",
    "read_spans",
    "record_draw",
    "render_summary",
    "session",
    "set_gauge",
    "span",
]
