"""``repro.obs`` — tracing, metrics and privacy-budget accounting.

See ``docs/OBSERVABILITY.md`` for the full guide.  Quick tour::

    import repro.obs as obs
    from repro.obs.exporters import InMemoryExporter, render_summary

    with obs.session(exporters=[InMemoryExporter()]) as sess:
        synopsis = PriView(1.0, design=design, seed=0).fit(dataset)
        sess.ledger.check()          # every strict scope balanced exactly
        print(render_summary(sess))  # stage tree + counters + audit

With no active session every helper is a near-zero-cost no-op, so the
library is instrumented unconditionally.

The live telemetry plane adds: quantile histograms behind
``observe()`` (:mod:`repro.obs.metrics`), Prometheus text exposition
(:mod:`repro.obs.prometheus`, served at ``GET /metrics``), end-to-end
trace propagation (:mod:`repro.obs.propagation`) and periodic
JSON-lines metrics snapshots
(:class:`~repro.obs.exporters.MetricsSnapshotWriter`).
"""

from repro.obs.exporters import (
    InMemoryExporter,
    JsonLinesExporter,
    MetricsSnapshotWriter,
    flatten_stages,
    read_jsonl,
    read_metrics_snapshots,
    read_spans,
    render_summary,
)
from repro.obs.ledger import AuditRow, BudgetLedger, BudgetScope, DrawRecord
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.prometheus import (
    histogram_quantile,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.propagation import (
    REQUEST_ID_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    current_context,
    new_context,
    parse_traceparent,
    sampled_context,
    trace_scope,
)
from repro.obs.session import (
    ObsSession,
    budget_scope,
    current,
    enabled,
    incr,
    incr_each,
    install,
    observe,
    record_draw,
    session,
    set_gauge,
    span,
    uninstall,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "AuditRow",
    "BudgetLedger",
    "BudgetScope",
    "DrawRecord",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "MetricsSnapshotWriter",
    "ObsSession",
    "REQUEST_ID_HEADER",
    "Span",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "Tracer",
    "budget_scope",
    "configure_logging",
    "current",
    "current_context",
    "enabled",
    "flatten_stages",
    "get_logger",
    "histogram_quantile",
    "incr",
    "incr_each",
    "install",
    "new_context",
    "observe",
    "parse_prometheus",
    "parse_traceparent",
    "read_jsonl",
    "read_metrics_snapshots",
    "read_spans",
    "record_draw",
    "render_prometheus",
    "render_summary",
    "sampled_context",
    "session",
    "set_gauge",
    "span",
    "trace_scope",
    "uninstall",
]
