"""End-to-end trace propagation: request ids across process hops.

One :class:`TraceContext` identifies one logical request — a
``trace_id`` shared by every span the request triggers anywhere, a
``span_id`` naming the current hop (the serving layer uses the
server-side hop's span id as the request id it returns to clients),
and a head-based ``sampled`` flag decided once at the edge (client or
server) and respected downstream, so tracing stays cheap at high qps.

The wire format is the W3C ``traceparent`` header::

    traceparent: 00-<32 hex trace id>-<16 hex span id>-<01|00>

Inside a process the current context rides a ``threading.local``;
:func:`trace_scope` installs it for a block, and the serving engine
re-installs it on pool threads before running submitted work, so
spans opened anywhere under a request inherit its trace id (see
:attr:`repro.obs.tracing.Span.trace_id`).
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

TRACEPARENT_HEADER = "traceparent"
REQUEST_ID_HEADER = "X-Request-Id"

_VERSION = "00"


def _hex_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace id, hop span id, sampling bit."""

    trace_id: str
    span_id: str
    sampled: bool = True

    @property
    def traceparent(self) -> str:
        """The W3C-style header value for this context."""
        flag = "01" if self.sampled else "00"
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{flag}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — one per hop (e.g. per server
        request, where the new span id doubles as the request id)."""
        return replace(self, span_id=_hex_id(8))


def new_context(sampled: bool = True) -> TraceContext:
    """A fresh root context (new trace id + span id)."""
    return TraceContext(
        trace_id=_hex_id(16), span_id=_hex_id(8), sampled=sampled
    )


def sampled_context(rate: float) -> TraceContext:
    """A fresh root context, sampled with probability ``rate``.

    ``rate <= 0`` never samples, ``rate >= 1`` always does; the id is
    generated either way so unsampled requests still get a request id
    in responses and error bodies.
    """
    sampled = rate >= 1.0 or (rate > 0.0 and random.random() < rate)
    return new_context(sampled=sampled)


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` value; None for absent/malformed input.

    Malformed headers are *dropped*, not errors — a bad upstream must
    never fail a query.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if (
        len(version) != 2
        or len(trace_id) != 32
        or len(span_id) != 16
        or len(flags) != 2
    ):
        return None
    try:
        int(version, 16), int(trace_id, 16), int(span_id, 16), int(flags, 16)
    except ValueError:
        return None
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None  # all-zero ids are invalid per the spec
    return TraceContext(
        trace_id=trace_id.lower(),
        span_id=span_id.lower(),
        sampled=bool(int(flags, 16) & 0x01),
    )


# ----------------------------------------------------------------------
# In-process propagation (thread-local current context)
# ----------------------------------------------------------------------
_LOCAL = threading.local()


def current_context() -> TraceContext | None:
    """The context installed on this thread, if any."""
    return getattr(_LOCAL, "context", None)


@contextmanager
def trace_scope(context: TraceContext | None):
    """Install ``context`` as the current one for the block.

    ``None`` is accepted and simply keeps the previous state, so
    callers can propagate unconditionally (``with
    trace_scope(maybe_ctx)``) without branching.
    """
    previous = getattr(_LOCAL, "context", None)
    if context is not None:
        _LOCAL.context = context
    try:
        yield context
    finally:
        _LOCAL.context = previous
