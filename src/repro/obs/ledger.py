"""The privacy-budget ledger: every noise draw, accounted for.

Each call into a noise primitive (:mod:`repro.mechanisms`) records a
:class:`DrawRecord` with the raw mechanism parameters.  Records land in
the innermost open :class:`BudgetScope` — typically one per
``mechanism.fit`` — whose *spent* epsilon can then be audited against
the epsilon the caller configured.

Epsilon-share semantics
-----------------------
This library's convention (see ``noisy_marginal``) is that a single
marginal table is a sensitivity-1 query, and a caller releasing ``m``
tables under a shared budget passes ``sensitivity=m``.  One
Laplace/geometric call therefore consumes ``epsilon / sensitivity``.
The exponential mechanism already folds its score sensitivity into the
softmax temperature, so one selection consumes the full ``epsilon``
(``divide_by_sensitivity=False``).

Exact totals
------------
Summing ``w`` copies of ``epsilon / w`` in floating point can miss
``epsilon`` by an ulp.  The ledger instead groups records by
``(mechanism, epsilon, divisor)`` and computes each group's total as
``epsilon * (count / divisor)`` — for the ubiquitous ``count ==
sensitivity`` pattern the ratio is exactly 1.0 and the group total is
exactly ``epsilon``, which is what lets the audit require *exact*
equality rather than a tolerance.

Composition
-----------
Scopes compose **sequentially** by default: a scope's spend is the
grouped total of its own records, and sibling scopes add up.  A scope
opened with ``composition="parallel"`` instead models *parallel
composition over disjoint inputs* (e.g. one DP release per disjoint
time window): any scope opened inside it on the same thread becomes a
*child* of the parallel scope rather than a new top-level scope, and
the parent's spend is its own records plus the **maximum** over its
children — the epsilon the whole release costs when every child saw a
disjoint slice of the data.  ``check()`` on a strict parallel scope
first checks every strict child exactly, then requires the aggregate
(the max) to equal the parent's configured per-slice epsilon; a
parallel scope that released nothing (no children, no records) is
``n/a``, since an empty release costs nothing.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.exceptions import LedgerError


@dataclass
class DrawRecord:
    """One call into a noise primitive.

    Attributes
    ----------
    mechanism:
        ``"laplace"`` | ``"geometric"`` | ``"exponential"``.
    epsilon:
        The epsilon argument passed to the primitive.
    sensitivity:
        The sensitivity argument passed to the primitive.
    scale:
        Noise scale actually used (``sensitivity / epsilon`` for
        Laplace-style mechanisms).
    draws:
        Number of scalar noise values drawn (table cells, or 1 for a
        selection).
    divide_by_sensitivity:
        Whether this call's epsilon share is ``epsilon / sensitivity``
        (Laplace/geometric convention) or the full ``epsilon``
        (exponential mechanism).
    label:
        Free-form annotation from the call site.
    """

    mechanism: str
    epsilon: float
    sensitivity: float
    scale: float
    draws: int
    divide_by_sensitivity: bool = True
    label: str = ""

    @property
    def epsilon_share(self) -> float:
        """The epsilon this single call consumed."""
        if math.isinf(self.epsilon):
            return 0.0
        if self.divide_by_sensitivity:
            return self.epsilon / self.sensitivity
        return self.epsilon

    def to_dict(self) -> dict:
        return {
            "mechanism": self.mechanism,
            "epsilon": self.epsilon,
            "sensitivity": self.sensitivity,
            "scale": self.scale,
            "draws": self.draws,
            "epsilon_share": self.epsilon_share,
            "label": self.label,
        }


def _grouped_total(records: list[DrawRecord]) -> float:
    """Exact-friendly epsilon total of ``records`` (see module doc)."""
    groups: dict[tuple[str, float, float], int] = {}
    for r in records:
        if math.isinf(r.epsilon):
            continue
        divisor = r.sensitivity if r.divide_by_sensitivity else 1.0
        key = (r.mechanism, r.epsilon, divisor)
        groups[key] = groups.get(key, 0) + 1
    return math.fsum(
        epsilon * (count / divisor)
        for (_, epsilon, divisor), count in groups.items()
    )


@dataclass
class BudgetScope:
    """All draws attributed to one logical operation (e.g. one ``fit``).

    ``configured`` is the epsilon the operation claims to satisfy
    (``None`` for the catch-all unscoped bucket); ``strict`` scopes are
    expected to spend it exactly.  ``composition`` is ``"sequential"``
    (spend = own records) or ``"parallel"`` (spend = own records plus
    the max over ``children``, which are the scopes opened inside this
    one — disjoint-input composition, see the module docstring).
    """

    name: str
    configured: float | None
    strict: bool = True
    composition: str = "sequential"
    records: list[DrawRecord] = field(default_factory=list)
    children: list["BudgetScope"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.composition not in ("sequential", "parallel"):
            raise LedgerError(
                f"unknown composition {self.composition!r} "
                "(expected 'sequential' or 'parallel')"
            )

    def spent(self) -> float:
        """Total epsilon consumed by this scope.

        Sequential scopes count their own records only (nested scopes
        are separate top-level entries, the legacy behaviour).  A
        parallel scope adds the **maximum** child spend to its own
        records: under parallel composition over disjoint inputs the
        release costs the worst single slice, not the sum.
        """
        own = _grouped_total(self.records)
        if self.composition == "parallel" and self.children:
            return own + max(child.spent() for child in self.children)
        return own

    @property
    def status(self) -> str:
        """``exact`` | ``over`` | ``under`` | ``n/a`` (inf or unscoped)."""
        if self.configured is None or math.isinf(self.configured):
            return "n/a"
        if (
            self.composition == "parallel"
            and not self.children
            and not self.records
        ):
            return "n/a"  # an empty release costs nothing to prove
        spent = self.spent()
        if spent == self.configured:
            return "exact"
        return "over" if spent > self.configured else "under"

    def check(self) -> None:
        """Raise :class:`LedgerError` unless the scope balanced exactly.

        A parallel scope first checks every strict child (each must
        balance its own configured epsilon exactly), then its own
        aggregate against the configured per-slice epsilon.
        """
        for child in self.children:
            if child.strict:
                child.check()
        if self.status in ("exact", "n/a"):
            return
        raise LedgerError(
            f"budget scope {self.name!r} spent {self.spent()!r}, "
            f"configured {self.configured!r} ({self.status})"
        )


@dataclass
class AuditRow:
    """One line of the audit: scopes grouped by (name, configured)."""

    name: str
    configured: float | None
    count: int
    spent_min: float
    spent_max: float
    status: str
    strict: bool
    composition: str = "sequential"
    children: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("exact", "n/a")


class BudgetLedger:
    """Records every noise draw of a session, organised into scopes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.unscoped = BudgetScope("(unscoped)", None, strict=False)
        #: Completed + active scopes, in creation order.
        self.scopes: list[BudgetScope] = []

    # -- scope stack ----------------------------------------------------
    def _stack(self) -> list[BudgetScope]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def scope(
        self,
        name: str,
        configured: float | None,
        strict: bool = True,
        composition: str = "sequential",
    ) -> "_ScopeContext":
        """Open a budget scope; use as a context manager.

        ``composition="parallel"`` makes the scope adopt every scope
        opened inside it (same thread) as a child and account their
        spends by **max**, the parallel-composition bound over
        disjoint inputs — one child per disjoint window, each spending
        the full per-window epsilon, proves the whole stream cost
        exactly that epsilon.
        """
        return _ScopeContext(
            self, BudgetScope(name, configured, strict, composition)
        )

    def current_scope(self) -> BudgetScope:
        stack = self._stack()
        return stack[-1] if stack else self.unscoped

    # -- recording ------------------------------------------------------
    def record(self, record: DrawRecord) -> None:
        """Attribute one draw to the innermost open scope."""
        scope = self.current_scope()
        with self._lock:
            scope.records.append(record)

    # -- totals & audit -------------------------------------------------
    def total_spent(self) -> float:
        """Epsilon consumed across every scope (and unscoped draws)."""
        with self._lock:
            scopes = list(self.scopes)
        return math.fsum(
            [s.spent() for s in scopes] + [self.unscoped.spent()]
        )

    def total_draws(self) -> int:
        with self._lock:
            scopes = list(self.scopes)
        return sum(len(s.records) for s in scopes) + len(self.unscoped.records)

    def audit(self) -> list[AuditRow]:
        """Scopes grouped by (name, configured epsilon), for display."""
        with self._lock:
            scopes = list(self.scopes)
        if self.unscoped.records:
            scopes = scopes + [self.unscoped]
        grouped: dict[tuple, list[BudgetScope]] = {}
        for s in scopes:
            key = (s.name, s.configured, s.strict, s.composition)
            grouped.setdefault(key, []).append(s)
        rows = []
        for (name, configured, strict, composition), members in grouped.items():
            spents = [m.spent() for m in members]
            statuses = {m.status for m in members}
            status = statuses.pop() if len(statuses) == 1 else "mixed"
            rows.append(
                AuditRow(
                    name=name,
                    configured=configured,
                    count=len(members),
                    spent_min=min(spents),
                    spent_max=max(spents),
                    status=status,
                    strict=strict,
                    composition=composition,
                    children=sum(len(m.children) for m in members),
                )
            )
        return rows

    def check(self) -> None:
        """Raise :class:`LedgerError` if any strict scope is unbalanced."""
        with self._lock:
            scopes = list(self.scopes)
        for scope in scopes:
            if scope.strict:
                scope.check()

    def to_dicts(self) -> list[dict]:
        """JSON-serialisable audit summary (one dict per scope group)."""
        return [
            {
                "scope": row.name,
                "configured_epsilon": row.configured,
                "fits": row.count,
                "spent_min": row.spent_min,
                "spent_max": row.spent_max,
                "status": row.status,
                "strict": row.strict,
                "composition": row.composition,
                "children": row.children,
            }
            for row in self.audit()
        ]


class _ScopeContext:
    """Context manager pushing/popping a scope on the ledger."""

    __slots__ = ("_ledger", "scope")

    def __init__(self, ledger: BudgetLedger, scope: BudgetScope):
        self._ledger = ledger
        self.scope = scope

    def __enter__(self) -> BudgetScope:
        stack = self._ledger._stack()
        parent = stack[-1] if stack else None
        with self._ledger._lock:
            if parent is not None and parent.composition == "parallel":
                # Adopted children are accounted through the parent's
                # max-aggregate, not as top-level scopes (which would
                # double-count them in total_spent / audit).
                parent.children.append(self.scope)
            else:
                self._ledger.scopes.append(self.scope)
        stack.append(self.scope)
        return self.scope

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._ledger._stack()
        if stack and stack[-1] is self.scope:
            stack.pop()
        elif self.scope in stack:
            stack.remove(self.scope)
        return False
