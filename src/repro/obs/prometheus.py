"""Prometheus text exposition for the metrics registry.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot`
dict into the text format every Prometheus-compatible scraper reads
(``GET /metrics`` on the serving layer, ``repro obs dump`` on the
CLI).  :func:`parse_prometheus` is the inverse used by the CI gate to
prove the output is machine-parseable and the expected series exist.

Mapping rules
-------------
* dotted metric names are sanitised to ``snake_case``
  (``serve.request_seconds`` → ``serve_request_seconds``);
* counters gain a ``_total`` suffix; a handful of counter families
  that encode a label in their dotted name are re-shaped into real
  labels (``serve.path.solved`` →
  ``serve_path_requests_total{path="solved"}``, ``serve.dataset.X`` →
  ``serve_dataset_requests_total{dataset="X"}``) so dashboards can
  aggregate across them;
* gauges pass through;
* observation series become full histogram families: cumulative
  ``_bucket{le="..."}`` lines per bound plus ``+Inf``, ``_sum`` and
  ``_count``, labeled with the series labels — quantiles are left to
  the scraper (``histogram_quantile`` over the buckets).
"""

from __future__ import annotations

import math
import re

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Counter families whose dotted suffix is really a label value:
#: prefix -> (metric name, label key).
_RELABELED_COUNTERS = {
    "serve.path.": ("serve_path_requests_total", "path"),
    "serve.dataset.": ("serve_dataset_requests_total", "dataset"),
}


def sanitize_name(name: str) -> str:
    """A legal Prometheus metric name for a dotted repro metric."""
    out = _NAME_OK.sub("_", name.replace(".", "_"))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_name(k)}="{_escape_label(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_lines(name: str, labels: dict, hist: dict) -> list[str]:
    """Exposition lines for one histogram series snapshot."""
    lines = []
    cumulative = 0
    by_le = {le: n for le, n in hist.get("buckets", ())}
    bounds = sorted(le for le in by_le if le is not None)
    for le in bounds:
        cumulative += by_le[le]
        lines.append(
            f"{name}_bucket{_labels_text({**labels, 'le': _fmt(le)})}"
            f" {cumulative}"
        )
    cumulative += by_le.get(None, 0)
    lines.append(
        f"{name}_bucket{_labels_text({**labels, 'le': '+Inf'})} {cumulative}"
    )
    lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(hist['sum'])}")
    lines.append(f"{name}_count{_labels_text(labels)} {hist['count']}")
    return lines


def render_prometheus(snapshot: dict, help_text: dict | None = None) -> str:
    """Prometheus text exposition (format 0.0.4) for one snapshot.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output (or a
    JSON-lines record of one — the format is stable under JSON).
    """
    help_text = help_text or {}
    out: list[str] = []

    # -- counters ------------------------------------------------------
    relabeled: dict[str, list[tuple[dict, float]]] = {}
    plain: dict[str, float] = {}
    for name, value in sorted(snapshot.get("counters", {}).items()):
        for prefix, (family, label_key) in _RELABELED_COUNTERS.items():
            if name.startswith(prefix) and len(name) > len(prefix):
                relabeled.setdefault(family, []).append(
                    ({label_key: name[len(prefix):]}, value)
                )
                break
        else:
            plain[name] = value
    for family in sorted(relabeled):
        out.append(f"# TYPE {family} counter")
        for labels, value in relabeled[family]:
            out.append(f"{family}{_labels_text(labels)} {_fmt(value)}")
    for name, value in plain.items():
        metric = sanitize_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        if metric in help_text:
            out.append(f"# HELP {metric} {help_text[metric]}")
        out.append(f"# TYPE {metric} counter")
        out.append(f"{metric} {_fmt(value)}")

    # -- gauges --------------------------------------------------------
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_name(name)
        out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric} {_fmt(value)}")

    # -- histograms ----------------------------------------------------
    families: dict[str, list[tuple[dict, dict]]] = {}
    for rendered, hist in snapshot.get("histograms", {}).items():
        base = hist.get("metric") or rendered
        labels = dict(hist.get("labels") or {})
        families.setdefault(sanitize_name(base), []).append((labels, hist))
    for metric in sorted(families):
        if metric in help_text:
            out.append(f"# HELP {metric} {help_text[metric]}")
        out.append(f"# TYPE {metric} histogram")
        for labels, hist in families[metric]:
            out.extend(_histogram_lines(metric, labels, hist))
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Parsing (for gates and tests; a deliberately small subset)
# ----------------------------------------------------------------------
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{family: {"type", "samples"}}``.

    Each sample is ``(metric_name, labels_dict, float_value)``; the
    family key strips ``_bucket``/``_sum``/``_count`` suffixes for
    histogram families so a whole histogram lands in one entry.
    Raises ``ValueError`` on any malformed line, which is exactly what
    the CI gate wants to detect.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            types[parts[2]] = parts[3]
            families.setdefault(
                parts[2], {"type": parts[3], "samples": []}
            )["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels = {}
        if match.group("labels"):
            labels = {
                key: value.encode().decode("unicode_escape")
                for key, value in _LABEL.findall(match.group("labels"))
            }
        raw = match.group("value")
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        else:
            value = float(raw)  # raises ValueError on garbage
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        families.setdefault(
            family, {"type": types.get(family, "untyped"), "samples": []}
        )["samples"].append((name, labels, value))
    return families


def histogram_quantile(samples: list, q: float) -> float | None:
    """``histogram_quantile`` over parsed ``_bucket`` samples.

    ``samples`` are the ``(name, labels, value)`` tuples of one
    histogram family (buckets may span several label sets; they are
    summed, mirroring a PromQL ``sum by (le)``).  Linear interpolation
    inside the winning bucket, matching
    :meth:`repro.obs.metrics.Histogram.quantile` up to the min/max
    clamp, so scraped p95s agree with the engine's internal snapshot
    within one bucket.
    """
    by_le: dict[float, float] = {}
    for name, labels, value in samples:
        if not name.endswith("_bucket") or "le" not in labels:
            continue
        le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
        by_le[le] = by_le.get(le, 0.0) + value
    if not by_le:
        return None
    bounds = sorted(by_le)
    total = by_le[bounds[-1]]
    if total == 0:
        return None
    target = q * total
    previous_bound, previous_cum = 0.0, 0.0
    for bound in bounds:
        cumulative = by_le[bound]
        if cumulative >= target:
            if bound == math.inf:
                return previous_bound
            count = cumulative - previous_cum
            if count <= 0:
                return bound
            return previous_bound + (target - previous_cum) / count * (
                bound - previous_bound
            )
        previous_bound, previous_cum = bound, cumulative
    return bounds[-1]
