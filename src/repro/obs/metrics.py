"""Counters and gauges for pipeline telemetry.

Counters accumulate (ripple passes, IPF sweeps, cells clipped);
gauges hold the last observed value (design size ``w``, final
residuals).  The registry is a plain dict behind a lock — metric
updates happen at stage granularity, not per cell, so contention is
negligible.
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """Thread-safe counter/gauge store for one observability session."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Last value of gauge ``name`` (None if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def snapshot(self) -> dict:
        """A JSON-serialisable copy of all counters and gauges."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }
