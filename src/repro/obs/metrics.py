"""Counters, gauges and value distributions for pipeline telemetry.

Counters accumulate (ripple passes, IPF sweeps, cells clipped);
gauges hold the last observed value (design size ``w``, final
residuals); observations summarise a stream of values (per-request
latencies in the serving layer).  Every observation stream keeps two
representations:

* a **summary** — count/sum/min/max/mean, the cheap aggregate the
  original ``observe()`` API exposed (kept for backward compat);
* a **histogram** — fixed log-spaced buckets (:class:`Histogram`)
  from which p50/p90/p95/p99 are estimated and which merge exactly
  across label sets, threads and processes (bucket counts add).

Observations may carry **labels** (``{"path": "solved", "dataset":
"adult"}``); each distinct label set is its own series, and lookups
without labels merge every series of that name, so pre-label callers
see the same totals as before.  The registry is a plain dict behind a
lock — metric updates happen at stage/request granularity, not per
cell, so contention is negligible.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

#: Log-spaced (factor 2) latency buckets: 1µs .. ~67s, then +Inf.
#: Quantile estimates are therefore exact to within one factor-2
#: bucket; linear interpolation inside the bucket does much better in
#: practice.  28 buckets keep snapshots and the Prometheus exposition
#: small enough to ship on every scrape.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-6 * 2.0 ** i for i in range(27))

#: Quantiles included in every histogram snapshot.
SNAPSHOT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)


def _normalize_labels(labels) -> tuple:
    """Canonical hashable form: sorted ``(key, value)`` string pairs."""
    if not labels:
        return ()
    if isinstance(labels, tuple):
        return labels  # pre-sorted by the caller (hot-path fast lane)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series(name: str, labels: tuple) -> str:
    """``name{k=v,...}`` — the flat key used in snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper bucket edges (Prometheus ``le``
    semantics); one implicit ``+Inf`` bucket catches the overflow.
    Counts are stored per bucket (not cumulative); two histograms over
    the same bounds merge by adding counts, so snapshots taken on
    different threads, label sets or processes combine losslessly.
    """

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # [+Inf] is last
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Fold one value in (O(log buckets))."""
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Add ``other`` into self (bounds must match); returns self."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def copy(self) -> "Histogram":
        out = Histogram(self.bounds)
        out.merge(self)
        return out

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Finds the bucket holding the target rank and interpolates
        linearly inside it; the overflow bucket answers with the
        observed max.  Exact to within one bucket width by
        construction.  None when empty.
        """
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            below = cumulative
            cumulative += n
            if cumulative >= target:
                if i >= len(self.bounds):  # +Inf bucket
                    return self.max
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                estimate = lower + (target - below) / n * (upper - lower)
                # The true extremes are known exactly; never estimate
                # outside them.
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - count>0 always lands above

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` for every bound plus ``+Inf``."""
        out = []
        cumulative = 0
        for bound, n in zip(self.bounds, self.buckets):
            cumulative += n
            out.append((bound, cumulative))
        out.append((math.inf, cumulative + self.buckets[-1]))
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (mergeable via :meth:`from_dict`).

        ``buckets`` lists only non-empty buckets as ``[le, count]``
        pairs (``le`` null for the overflow bucket) so idle series stay
        one line in JSON exports.
        """
        buckets = []
        for i, n in enumerate(self.buckets):
            if n:
                le = self.bounds[i] if i < len(self.bounds) else None
                buckets.append([le, n])
        out: dict = {
            "count": self.count,
            "sum": self.sum,
            "buckets": buckets,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.sum / self.count
            for q in SNAPSHOT_QUANTILES:
                out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    @classmethod
    def from_dict(
        cls, data: dict, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(bounds)
        index = {bound: i for i, bound in enumerate(hist.bounds)}
        for le, n in data.get("buckets", ()):
            if le is None:
                hist.buckets[-1] += int(n)
            elif le in index:
                hist.buckets[index[le]] += int(n)
            else:
                raise ValueError(f"bucket bound {le!r} not in bounds")
        hist.count = int(data.get("count", sum(b for b in hist.buckets)))
        hist.sum = float(data.get("sum", 0.0))
        hist.min = float(data.get("min", math.inf))
        hist.max = float(data.get("max", -math.inf))
        return hist

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6g})"


class MetricsRegistry:
    """Thread-safe counter/gauge/observation store for one session."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self._lock = threading.Lock()
        self._buckets = tuple(buckets)
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        #: (name, labels) -> running summary dict
        self._observations: dict[tuple[str, tuple], dict] = {}
        #: (name, labels) -> Histogram
        self._histograms: dict[tuple[str, tuple], Histogram] = {}

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def incr_each(self, names, value: float = 1) -> None:
        """Add ``value`` to several counters under one lock acquisition.

        The serving hot path bumps four counters per request; taking
        the lock once instead of four times keeps the warm-cache path
        inside its latency budget.
        """
        counters = self._counters
        with self._lock:
            for name in names:
                counters[name] = counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Last value of gauge ``name`` (None if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def observe(self, name: str, value: float, labels=None) -> None:
        """Fold ``value`` into the summary *and* histogram for ``name``.

        ``labels`` (dict, or a pre-sorted tuple of pairs for hot
        paths) selects the series; omitted means the unlabeled series.
        """
        value = float(value)
        key = (name, _normalize_labels(labels))
        with self._lock:
            rec = self._observations.get(key)
            if rec is None:
                rec = self._observations[key] = {
                    "count": 0, "sum": 0.0, "min": value, "max": value,
                }
                self._histograms[key] = Histogram(self._buckets)
            rec["count"] += 1
            rec["sum"] += value
            if value < rec["min"]:
                rec["min"] = value
            if value > rec["max"]:
                rec["max"] = value
            self._histograms[key].record(value)

    # ------------------------------------------------------------------
    def _matching(self, name: str, labels) -> list[tuple[str, tuple]]:
        """(lock held) Series keys matching ``name`` (+labels subset)."""
        if labels is not None:
            wanted = _normalize_labels(labels)
            return [
                key for key in self._observations
                if key[0] == name and set(wanted) <= set(key[1])
            ]
        return [key for key in self._observations if key[0] == name]

    def observation(self, name: str, labels=None) -> dict | None:
        """Summary for ``name`` incl. ``mean`` (None if never seen).

        Without ``labels`` every series of that name is merged, so
        callers from before labels existed keep seeing process totals.
        With ``labels`` only series carrying *at least* those labels
        contribute.
        """
        with self._lock:
            keys = self._matching(name, labels)
            if not keys:
                return None
            out = {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
            for key in keys:
                rec = self._observations[key]
                out["count"] += rec["count"]
                out["sum"] += rec["sum"]
                out["min"] = min(out["min"], rec["min"])
                out["max"] = max(out["max"], rec["max"])
            out["mean"] = out["sum"] / out["count"]
            return out

    def histogram(self, name: str, labels=None) -> Histogram | None:
        """A merged *copy* of the histogram(s) for ``name``.

        Same matching rules as :meth:`observation`; mutating the
        returned histogram never touches the registry.
        """
        with self._lock:
            keys = self._matching(name, labels)
            if not keys:
                return None
            merged = Histogram(self._buckets)
            for key in keys:
                merged.merge(self._histograms[key])
            return merged

    def series(self) -> list[dict]:
        """Structured view of every observation series (for exposition).

        Each entry: ``{"name", "labels", "summary", "histogram"}``
        where histogram is a :class:`Histogram` *copy*.
        """
        with self._lock:
            out = []
            for key in sorted(self._observations):
                name, labels = key
                rec = self._observations[key]
                out.append({
                    "name": name,
                    "labels": dict(labels),
                    "summary": {**rec, "mean": rec["sum"] / rec["count"]},
                    "histogram": self._histograms[key].copy(),
                })
            return out

    def snapshot(self) -> dict:
        """A JSON-serialisable copy of all metrics.

        Observation and histogram entries are keyed by their rendered
        series name (``name`` or ``name{k=v,...}``); labeled entries
        carry ``metric``/``labels`` fields so exporters can rebuild
        the structure.
        """
        with self._lock:
            out: dict = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }
            if self._observations:
                observations = {}
                histograms = {}
                for key in sorted(self._observations):
                    name, labels = key
                    rendered = render_series(name, labels)
                    rec = self._observations[key]
                    entry = {**rec, "mean": rec["sum"] / rec["count"]}
                    hist_entry = self._histograms[key].to_dict()
                    if labels:
                        meta = {"metric": name, "labels": dict(labels)}
                        entry.update(meta)
                        hist_entry.update(meta)
                    observations[rendered] = entry
                    histograms[rendered] = hist_entry
                out["observations"] = observations
                out["histograms"] = histograms
            return out
