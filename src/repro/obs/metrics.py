"""Counters, gauges and value distributions for pipeline telemetry.

Counters accumulate (ripple passes, IPF sweeps, cells clipped);
gauges hold the last observed value (design size ``w``, final
residuals); observations summarise a stream of values with
count/sum/min/max (per-request latencies in the serving layer).  The
registry is a plain dict behind a lock — metric updates happen at
stage/request granularity, not per cell, so contention is negligible.
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """Thread-safe counter/gauge/observation store for one session."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._observations: dict[str, dict] = {}

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Last value of gauge ``name`` (None if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the running summary for ``name``."""
        value = float(value)
        with self._lock:
            rec = self._observations.get(name)
            if rec is None:
                rec = self._observations[name] = {
                    "count": 0, "sum": 0.0, "min": value, "max": value,
                }
            rec["count"] += 1
            rec["sum"] += value
            rec["min"] = min(rec["min"], value)
            rec["max"] = max(rec["max"], value)

    def observation(self, name: str) -> dict | None:
        """Summary dict for ``name`` incl. ``mean`` (None if never seen)."""
        with self._lock:
            rec = self._observations.get(name)
            if rec is None:
                return None
            return {**rec, "mean": rec["sum"] / rec["count"]}

    def snapshot(self) -> dict:
        """A JSON-serialisable copy of all counters/gauges/observations."""
        with self._lock:
            out = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }
            if self._observations:
                out["observations"] = {
                    name: {**rec, "mean": rec["sum"] / rec["count"]}
                    for name, rec in self._observations.items()
                }
            return out
