"""Residual-basis (pseudo-marginal) reconstruction with local
non-negativity — the ReM method of Mullins et al., *Efficient and
Private Marginal Reconstruction with Local Non-Negativity*.

Binary marginals diagonalise in the Walsh–Hadamard ("residual") basis:
for a target table ``T_A`` over ``k`` attributes, coefficient
``theta_m = sum_x (-1)^{popcount(m & x)} T_A[x]``, and the marginal of
``T_A`` over a subset ``B`` determines exactly the coefficients whose
mask is supported on ``B``'s bit positions.  Reconstruction from view
marginals is therefore closed form:

1. transform each constraint's target marginal (one fast WHT each),
2. scatter the resulting coefficients onto the target's masks —
   averaging where several views determine the same coefficient, which
   for mutually consistent views is a no-op and for raw noisy views is
   the least-squares combination,
3. zero every undetermined coefficient (the minimum-L2-norm /
   pseudo-marginal completion, paper Section 3),
4. invert with one fast WHT and project the cells onto the scaled
   simplex ``{x >= 0, sum(x) = total}`` — the paper's *local*
   non-negativity: exact, per-query, no global fitting.

Unlike iterative proportional fitting this costs ``O(k 2**k)`` per
query with no convergence loop, and a whole batch of same-arity
queries is one stacked transform (:func:`residual_batch`).

:class:`ResidualIndex` goes one step further for long-lived view sets:
it transforms every view *once* at construction and stores one scalar
coefficient per determined attribute subset, so a solve is ``2**k``
dictionary lookups, one inverse transform and one projection — no
per-query constraint extraction at all.  The serving engine holds one
per synopsis and answers both single solved-path queries and whole
``/v1/batch`` workloads through it.
"""

from __future__ import annotations

import functools
import operator

import numpy as np

from repro import obs
from repro.core.reconstruction.constraints import MarginalConstraint
from repro.exceptions import ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.projection import embedding_masks, subset_positions
from repro.marginals.table import MarginalTable

_TINY = 1e-12

#: Below this length the transform is one dense matmul against a cached
#: Hadamard matrix (BLAS beats the Python butterfly loop by an order of
#: magnitude on marginal-sized arrays); above it, the O(n log n)
#: butterflies win on arithmetic.
_MATMUL_MAX = 256


@functools.lru_cache(maxsize=16)
def _hadamard(n: int) -> np.ndarray:
    """The dense Sylvester-ordered n-by-n Hadamard matrix, read-only."""
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    h.setflags(write=False)
    return h


def fwht(values: np.ndarray) -> np.ndarray:
    """Fast Walsh–Hadamard transform along the last axis (a copy).

    Uses the Sylvester ordering: ``out[m] = sum_x (-1)^{popcount(m & x)}
    values[x]``.  The transform is its own inverse up to a factor of
    ``n``: ``fwht(fwht(a)) == n * a``.  Works on any leading batch
    shape, so a stack of tables transforms in one call.
    """
    n = np.shape(values)[-1] if np.ndim(values) else 0
    if n == 0 or n & (n - 1):
        raise ReconstructionError(
            f"fwht needs a power-of-two axis, got length {n}"
        )
    if n <= _MATMUL_MAX:
        # H is symmetric, so values @ H == (H @ values.T).T.
        return np.asarray(values, dtype=np.float64) @ _hadamard(n)
    out = np.array(values, dtype=np.float64)
    flat = out.reshape(-1, n)
    h = 1
    while h < n:
        view = flat.reshape(flat.shape[0], n // (2 * h), 2, h)
        top = view[:, :, 0, :].copy()
        bot = view[:, :, 1, :].copy()
        view[:, :, 0, :] = top + bot
        view[:, :, 1, :] = top - bot
        h *= 2
    return out


@functools.lru_cache(maxsize=32)
def _ladder(m: int) -> np.ndarray:
    """``[1.0 .. m]``, the water-filling divisors, read-only."""
    ladder = np.arange(1, m + 1, dtype=np.float64)
    ladder.setflags(write=False)
    return ladder


def project_to_simplex(cells: np.ndarray, total: float) -> np.ndarray:
    """Euclidean projection of each row onto ``{x >= 0, sum = total}``.

    The exact local non-negativity step: sort, find the largest prefix
    whose water level stays below its smallest member, subtract the
    level, clip.  Rows that are already feasible come back unchanged
    (up to exact float identity — ``tau`` is then non-positive only
    when some slack exists, so feasible rows take the fast path).
    ``total`` is clamped at zero; a non-positive total projects to the
    all-zero table.
    """
    cells = np.atleast_2d(np.asarray(cells, dtype=np.float64))
    total = max(float(total), 0.0)
    feasible = (cells.min(axis=-1) >= 0.0) & (
        np.abs(cells.sum(axis=-1) - total) <= 1e-9 + 1e-12 * total
    )
    if feasible.all():
        return cells.copy()
    # Solved-path answers almost always need projecting, so the
    # all-infeasible case skips the masked copies and projects in
    # place of the input rows.
    some_feasible = feasible.any()
    bad = cells[~feasible] if some_feasible else cells
    fixed = _project_rows(bad, total)
    if not some_feasible:
        return fixed
    out = cells.copy()
    out[~feasible] = fixed
    return out


def _project_rows(bad: np.ndarray, total: float) -> np.ndarray:
    """The water-filling core: project known-infeasible rows."""
    m = bad.shape[-1]
    ranked = np.sort(bad, axis=-1)[:, ::-1]
    prefix = np.cumsum(ranked, axis=-1) - total
    support = ranked - prefix / _ladder(m) > 0
    # rho: size of the optimal support (last index where the water
    # level stays below the sorted value); at least 1 by construction.
    rho = np.maximum(support.sum(axis=-1), 1)
    tau = prefix[np.arange(bad.shape[0]), rho - 1] / rho
    return np.maximum(bad - tau[:, None], 0.0)


def _coefficients(
    constraints: list[MarginalConstraint],
    target: AttrSet,
    total: float,
) -> tuple[np.ndarray, int]:
    """Assemble the determined residual coefficients of ``T_target``.

    Returns ``(theta, determined)`` where ``theta`` has one slot per
    mask (zero where no constraint reaches) and ``determined`` counts
    the pinned coefficients including ``theta[0] = total``.
    """
    k = len(target)
    size = 1 << k
    theta_sum = np.zeros(size)
    theta_cnt = np.zeros(size, dtype=np.int64)
    for c in constraints:
        marginal = np.asarray(c.target, dtype=np.float64)
        s = marginal.sum()
        if s > _TINY and abs(s - total) > 1e-9 * max(1.0, abs(total)):
            # Normalise each constraint to the common total so views
            # whose totals drifted (raw noisy inputs) stay comparable.
            marginal = marginal * (total / s)
        phi = fwht(marginal)
        masks = embedding_masks(k, subset_positions(target, c.attrs))
        # Masks are distinct within one constraint, so plain fancy
        # indexing accumulates correctly.
        theta_sum[masks] += phi
        theta_cnt[masks] += 1
    determined = theta_cnt > 0
    theta = np.zeros(size)
    np.divide(theta_sum, theta_cnt, out=theta, where=determined)
    theta[0] = total
    if not np.all(np.isfinite(theta)):
        raise ReconstructionError(
            "residual reconstruction hit non-finite coefficients "
            f"for target {tuple(target)} (NaN/inf in a view marginal?)"
        )
    return theta, max(int(determined.sum()), 1)


def residual(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
) -> MarginalTable:
    """Closed-form pseudo-marginal table matching the constraints.

    Parameters mirror :func:`~repro.core.reconstruction.maxent.maxent`;
    the result is non-negative, sums to ``max(total, 0)``, and carries
    its provenance in ``table.meta["residual"]`` — coefficient counts,
    the negative mass removed by the simplex projection, and whether
    the projection had to move anything at all.

    Degenerate bases are explicit: the empty attribute set is the
    single-cell total (no solve), and an all-zero / negative total
    yields the zero table rather than a division blow-up.
    """
    tables = residual_batch([constraints], [target_attrs], total)
    return tables[0]


def residual_batch(
    constraint_lists: list[list[MarginalConstraint]],
    target_attrs_list,
    total: float,
) -> list[MarginalTable]:
    """Stacked residual solve: many targets, one transform per arity.

    Targets are grouped by arity ``k``; each group's coefficient
    vectors stack into an ``(n, 2**k)`` matrix inverted by a single
    batched WHT and one vectorised simplex projection, so a serving
    batch of uncovered queries costs one solve instead of ``n``.
    Results align with the input order.  All targets share ``total``
    (the synopsis's common ``N_V``).
    """
    if len(constraint_lists) != len(target_attrs_list):
        raise ReconstructionError(
            f"{len(constraint_lists)} constraint lists for "
            f"{len(target_attrs_list)} targets"
        )
    targets = [AttrSet(attrs) for attrs in target_attrs_list]
    total = float(total)
    out: list[MarginalTable | None] = [None] * len(targets)

    by_arity: dict[int, list[int]] = {}
    for i, target in enumerate(targets):
        if not target:
            out[i] = _empty_table(total)
            continue
        by_arity.setdefault(len(target), []).append(i)

    for k, indices in by_arity.items():
        size = 1 << k
        theta = np.empty((len(indices), size))
        determined = np.empty(len(indices), dtype=np.int64)
        for row, i in enumerate(indices):
            theta[row], determined[row] = _coefficients(
                constraint_lists[i], targets[i], total
            )
        tables = _invert_theta(
            theta, determined, [targets[i] for i in indices], total
        )
        for i, table in zip(indices, tables):
            out[i] = table
    return out  # type: ignore[return-value]


def _empty_table(total: float) -> MarginalTable:
    """The 0-way answer: only ``theta_0`` exists, and it *is* the
    answer — the degenerate residual basis."""
    table = MarginalTable((), np.array([max(total, 0.0)]))
    table.meta["residual"] = {
        "determined": 1, "coefficients": 1,
        "negative_mass": 0.0, "projected": False,
    }
    return table


def _invert_theta(
    theta: np.ndarray,
    determined: np.ndarray,
    group_targets: list[AttrSet],
    total: float,
) -> list[MarginalTable]:
    """Invert stacked same-arity coefficient rows into final tables:
    one batched transform, one vectorised simplex projection.

    Feasibility here reduces to non-negativity: each row's cell sum is
    its DC coefficient ``theta[0] = total`` by the transform identity,
    so a row needs projecting exactly when it carries negative mass
    (a negative ``total`` forces negative cells and projects to zero,
    matching :func:`project_to_simplex`'s clamp).
    """
    size = theta.shape[-1]
    cells = fwht(theta) / size
    negative_mass = -np.minimum(cells, 0.0).sum(axis=-1)
    needs = negative_mass > 0.0
    if needs.any():
        if needs.all():
            projected = _project_rows(cells, max(total, 0.0))
        else:
            projected = cells.copy()
            projected[needs] = _project_rows(cells[needs], max(total, 0.0))
        moved = np.abs(projected - cells).sum(axis=-1) > 1e-9
    else:
        projected = cells
        moved = needs
    tables = []
    for row, target in enumerate(group_targets):
        table = MarginalTable(target, projected[row])
        table.meta["residual"] = {
            "determined": int(determined[row]),
            "coefficients": size,
            "negative_mass": float(negative_mass[row]),
            "projected": bool(moved[row]),
        }
        tables.append(table)
    obs.incr("residual.calls", len(tables))
    obs.incr("residual.coefficients", int(determined.sum()))
    return tables


@functools.lru_cache(maxsize=64)
def _mask_positions(k: int) -> tuple[tuple[int, ...], ...]:
    """For each ``k``-bit mask, the positions of its set bits."""
    return tuple(
        tuple(j for j in range(k) if mask >> j & 1)
        for mask in range(1 << k)
    )


def _single_getter(p: int):
    return lambda target: (target[p],)


@functools.lru_cache(maxsize=64)
def _mask_getters(k: int) -> tuple:
    """Per mask, a callable mapping a target tuple to the attr subset
    at the mask's bit positions — C-level itemgetters beat a generator
    per lookup on the solve hot path."""
    getters = []
    for positions in _mask_positions(k):
        if len(positions) == 0:
            getters.append(lambda target: ())  # mask 0; never looked up
        elif len(positions) == 1:
            getters.append(_single_getter(positions[0]))
        else:
            getters.append(operator.itemgetter(*positions))
    return tuple(getters)


class ResidualIndex:
    """Precomputed residual coefficients of a fixed set of views.

    Construction transforms every view once and keeps one averaged
    scalar per attribute subset some view determines (identical across
    consistent views; the least-squares combination for raw ones).  A
    solve then assembles ``theta`` by dictionary lookup — ``O(2**k)``
    with no constraint extraction — and shares the batched inversion
    with :func:`residual_batch`.  Built by the serving engine per
    synopsis; the answers match :func:`residual` exactly on consistent
    views.

    Raises :class:`ReconstructionError` at construction when a view
    holds non-finite mass, so callers can fall back *before* caching
    anything poisoned.
    """

    def __init__(self, views: list[MarginalTable], total: float | None = None):
        if total is None:
            total = (
                float(sum(v.total() for v in views) / len(views))
                if views else 0.0
            )
        self.total = float(total)
        coeff_sum: dict[tuple[int, ...], float] = {}
        coeff_cnt: dict[tuple[int, ...], int] = {}
        for view in views:
            counts = np.asarray(view.counts, dtype=np.float64)
            s = counts.sum()
            if s > _TINY and abs(s - self.total) > 1e-9 * max(1.0, self.total):
                counts = counts * (self.total / s)
            phi = fwht(counts)
            if not np.all(np.isfinite(phi)):
                raise ReconstructionError(
                    f"view {view.attrs} holds non-finite mass; "
                    "residual index refuses to cache it"
                )
            attrs = view.attrs
            for mask, positions in enumerate(_mask_positions(len(attrs))):
                if not positions:
                    continue
                subset = tuple(attrs[p] for p in positions)
                if subset in coeff_sum:
                    coeff_sum[subset] += phi[mask]
                    coeff_cnt[subset] += 1
                else:
                    coeff_sum[subset] = float(phi[mask])
                    coeff_cnt[subset] = 1
        self._theta = {
            subset: coeff_sum[subset] / coeff_cnt[subset]
            for subset in coeff_sum
        }

    def __len__(self) -> int:
        """Number of determined (non-DC) coefficients held."""
        return len(self._theta)

    def solve(self, target_attrs) -> MarginalTable:
        """One closed-form solve against the indexed views."""
        return self.solve_batch([target_attrs])[0]

    def solve_batch(self, target_attrs_list) -> list[MarginalTable]:
        """Stacked solves, aligned with the input order."""
        targets = [AttrSet(attrs) for attrs in target_attrs_list]
        out: list[MarginalTable | None] = [None] * len(targets)
        by_arity: dict[int, list[int]] = {}
        for i, target in enumerate(targets):
            if not target:
                out[i] = _empty_table(self.total)
                continue
            by_arity.setdefault(len(target), []).append(i)
        lookup = self._theta.get
        for k, indices in by_arity.items():
            size = 1 << k
            getters = _mask_getters(k)
            theta = np.zeros((len(indices), size))
            determined = np.empty(len(indices), dtype=np.int64)
            for row, i in enumerate(indices):
                target = targets[i]
                row_theta = theta[row]
                found = 1
                for mask in range(1, size):
                    value = lookup(getters[mask](target))
                    if value is not None:
                        row_theta[mask] = value
                        found += 1
                row_theta[0] = self.total
                determined[row] = found
            tables = _invert_theta(
                theta, determined, [targets[i] for i in indices], self.total
            )
            for i, table in zip(indices, tables):
                out[i] = table
        return out  # type: ignore[return-value]
