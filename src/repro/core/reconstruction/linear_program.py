"""Linear-programming reconstruction (paper Section 4.3, "LP"/"CLP").

Following Barak et al.'s formulation: find a non-negative table whose
constraint violations are uniformly smallest,

    minimize   tau
    subject to x >= 0,  |M x - b| <= tau  (elementwise).

Unlike the other solvers this one does not require consistent views —
the paper's "LP" variant feeds it raw noisy views, while "CLP" runs it
after the consistency step (Figure 3 compares the two).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.reconstruction.constraints import (
    MarginalConstraint,
    build_constraint_system,
)
from repro.exceptions import ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable


def linear_program(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
) -> MarginalTable:
    """Solve the min-max-violation LP with scipy's HiGHS backend."""
    target = AttrSet(target_attrs)
    if not constraints:
        return MarginalTable.uniform(target, max(total, 0.0))
    matrix, rhs = build_constraint_system(constraints, target)
    n_cells = matrix.shape[1]
    n_rows = matrix.shape[0]

    # Variables: [x (n_cells), tau]; objective: tau.
    cost = np.zeros(n_cells + 1)
    cost[-1] = 1.0
    ones = np.ones((n_rows, 1))
    # M x - b <= tau  and  b - M x <= tau
    a_ub = np.vstack(
        [np.hstack([matrix, -ones]), np.hstack([-matrix, -ones])]
    )
    b_ub = np.concatenate([rhs, -rhs])
    bounds = [(0.0, None)] * n_cells + [(0.0, None)]
    result = optimize.linprog(
        cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
    )
    if not result.success:
        raise ReconstructionError(f"LP reconstruction failed: {result.message}")
    return MarginalTable(target, np.maximum(result.x[:n_cells], 0.0))
