"""Mixed-radix (categorical) reconstruction, in the shared registry.

The same IPF algorithm as :mod:`repro.core.reconstruction.maxent`
("the maximum entropy-based reconstruction method can be applied
directly with non-binary categorical attributes" — Section 4.7),
running over mixed-radix projections.  This used to live in
``repro.categorical.reconstruction`` as a private fork of the core
solvers; it is now part of :mod:`repro.core.reconstruction` so binary
and categorical reconstruction share one registry (and one copy of
every numerical helper — the simplex projection in
:mod:`repro.core.reconstruction.residual` included).  The old module
remains as a :class:`DeprecationWarning` shim.

Imports of :mod:`repro.categorical` helpers happen lazily inside the
functions: ``repro.categorical.priview`` imports this module at class
definition time, so a module-level import here would be circular.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import ReconstructionError

_TINY = 1e-12

#: Mixed-radix solvers by name.  ``maxent`` is the only entry the
#: paper defines for the categorical extension; the registry keeps the
#: same shape as the binary ``_SOLVERS`` table so new solvers slot in.
MIXED_SOLVERS: dict = {}

MIXED_RECONSTRUCTION_METHODS: tuple = ()


def _register(name: str):
    def deco(fn):
        global MIXED_RECONSTRUCTION_METHODS
        MIXED_SOLVERS[name] = fn
        MIXED_RECONSTRUCTION_METHODS = tuple(MIXED_SOLVERS)
        return fn

    return deco


def extract_categorical_constraints(views, target_attrs) -> list:
    """Maximal-intersection constraint tables for the target attrs."""
    target = tuple(sorted(int(a) for a in target_attrs))
    target_set = set(target)
    by_attrs: dict = {}
    for view in views:
        inter = tuple(sorted(target_set & set(view.attrs)))
        if not inter or inter in by_attrs:
            continue
        by_attrs[inter] = view.project(inter)
    if not by_attrs:
        raise ReconstructionError(
            f"no view intersects the target attributes {target}"
        )
    return [
        by_attrs[a]
        for a in by_attrs
        if not any(set(a) < set(other) for other in by_attrs)
    ]


@_register("maxent")
def categorical_maxent(
    constraints,
    target_attrs,
    target_arities,
    total: float,
    max_cycles: int = 500,
    tol: float = 1e-9,
):
    """IPF over the mixed-radix target table."""
    from repro.categorical.indexing import (
        mixed_radix_projection_map,
        table_size,
    )
    from repro.categorical.table import CategoricalMarginalTable

    target = tuple(sorted(int(a) for a in target_attrs))
    target_arities = tuple(int(b) for b in target_arities)
    total = max(float(total), _TINY)
    size = table_size(target_arities)
    if not constraints:
        return CategoricalMarginalTable.uniform(target, target_arities, total)

    index = {a: j for j, a in enumerate(target)}
    prepared = []
    for c in constraints:
        positions = tuple(index[a] for a in c.attrs)
        pmap = mixed_radix_projection_map(target_arities, positions)
        tgt = np.maximum(c.counts, 0.0)
        s = tgt.sum()
        tgt = (
            np.full(tgt.size, total / tgt.size) if s <= 0 else tgt * (total / s)
        )
        prepared.append((pmap, tgt))

    cells = np.full(size, total / size)
    for _ in range(max_cycles):
        mismatch = 0.0
        for pmap, tgt in prepared:
            current = np.bincount(pmap, weights=cells, minlength=tgt.size)
            mismatch += float(np.abs(current - tgt).sum())
            factor = tgt / np.maximum(current, _TINY)
            np.clip(factor, 0.0, 1e12, out=factor)
            cells *= factor[pmap]
        if mismatch / total < tol:
            break
    return CategoricalMarginalTable(target, target_arities, cells)


def reconstruct_mixed(
    views,
    target_attrs,
    arities,
    method: str = "maxent",
    total: float | None = None,
    use_covering_view: bool = True,
):
    """Reconstruct a mixed-radix marginal from categorical view tables.

    The categorical counterpart of
    :func:`repro.core.reconstruction.reconstruct`: a straight
    projection when some view covers ``target_attrs``, otherwise the
    named solver from :data:`MIXED_SOLVERS` over the maximal
    intersecting constraints.

    ``arities`` is the full-domain arity vector (indexable by global
    attribute index); ``total`` defaults to the mean view total.
    """
    if method not in MIXED_SOLVERS:
        raise ReconstructionError(
            f"unknown mixed reconstruction method {method!r}; "
            f"choose from {MIXED_RECONSTRUCTION_METHODS}"
        )
    target = tuple(sorted(int(a) for a in target_attrs))
    with obs.span("reconstruct.mixed"):
        if use_covering_view:
            for view in views:
                if set(target).issubset(view.attrs):
                    obs.incr("reconstruct.covered")
                    return view.project(target)
        obs.incr(f"reconstruct.mixed.{method}")
        constraints = extract_categorical_constraints(views, target)
        if total is None:
            total = (
                float(sum(v.total() for v in views) / len(views))
                if views
                else 0.0
            )
        target_arities = tuple(int(arities[a]) for a in target)
        return MIXED_SOLVERS[method](
            constraints, target, target_arities, float(total)
        )
