"""Reconstruction of k-way marginals from view marginals (Section 4.3).

:func:`reconstruct` is the front door.  When some view fully covers the
target attributes the answer is a straight projection; otherwise the
requested solver combines the views' partial information:

* ``maxent`` — maximum entropy via IPF (the paper's choice, "CME");
* ``maxent-dual`` — same optimisation through the scipy dual solver;
* ``residual`` — closed-form ReM pseudo-marginal reconstruction with
  local non-negativity (Mullins et al.), no iterative fitting;
* ``lsq`` — least-L2-norm solution ("CLN");
* ``lp`` — min-max-violation linear program ("LP"/"CLP").

:func:`reconstruct_batch` answers a whole workload of targets at once:
``residual`` targets of equal arity share one stacked transform and
``maxent`` targets share vectorised IPF sweeps, so a serving batch of
uncovered queries costs one solve instead of N.

Degenerate bases are handled here, before any solver runs: the empty
attribute set is always the single-cell total (its residual basis is
just ``theta_0``), and the full-domain set flows through the solvers
unchanged (every view is its own constraint).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.reconstruction.categorical import (
    MIXED_RECONSTRUCTION_METHODS,
    categorical_maxent,
    extract_categorical_constraints,
    reconstruct_mixed,
)
from repro.core.reconstruction.constraints import (
    MarginalConstraint,
    build_constraint_system,
    covering_view,
    extract_constraints,
)
from repro.core.reconstruction.least_squares import least_squares
from repro.core.reconstruction.linear_program import linear_program
from repro.core.reconstruction.maxent import maxent, maxent_batch, maxent_dual
from repro.core.reconstruction.residual import (
    ResidualIndex,
    fwht,
    project_to_simplex,
    residual,
    residual_batch,
)
from repro.exceptions import ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

_SOLVERS = {
    "maxent": maxent,
    "maxent-dual": maxent_dual,
    "residual": residual,
    "lsq": least_squares,
    "lp": linear_program,
}

#: solvers with a dedicated stacked implementation; everything else
#: falls back to a per-target loop inside :func:`reconstruct_batch`.
_BATCH_SOLVERS = {
    "maxent": maxent_batch,
    "residual": residual_batch,
}

RECONSTRUCTION_METHODS = tuple(_SOLVERS)


def _check_method(method: str) -> None:
    if method not in _SOLVERS:
        raise ReconstructionError(
            f"unknown reconstruction method {method!r}; "
            f"choose from {RECONSTRUCTION_METHODS}"
        )


def _mean_total(views: list[MarginalTable]) -> float:
    return float(sum(v.total() for v in views) / len(views)) if views else 0.0


def _empty_target_table(total: float) -> MarginalTable:
    """The 0-way marginal: one cell holding the (non-negative) total."""
    return MarginalTable((), np.array([max(float(total), 0.0)]))


def reconstruct(
    views: list[MarginalTable],
    target_attrs,
    method: str = "maxent",
    use_covering_view: bool = True,
    total: float | None = None,
) -> MarginalTable:
    """Reconstruct the marginal over ``target_attrs`` from view tables.

    Parameters
    ----------
    views:
        View marginals (mutually consistent for every method but
        ``lp``, which also accepts raw views).
    target_attrs:
        Attribute set ``A`` of the desired k-way marginal.
    method:
        One of :data:`RECONSTRUCTION_METHODS`.
    use_covering_view:
        When True (default) and a view contains ``A``, return its
        projection directly — the trivial case of Section 4.3.
    total:
        The common total count ``N_V``.  Defaults to the mean of the
        view totals; long-lived callers (the serving engine) pass it
        in to avoid re-summing every view per query.
    """
    _check_method(method)
    target = AttrSet(target_attrs)
    with obs.span("reconstruct"):
        if not target:
            # Degenerate residual basis: no solver can (or should) run.
            obs.incr("reconstruct.empty_target")
            return _empty_target_table(
                total if total is not None else _mean_total(views)
            )
        if use_covering_view:
            cover = covering_view(views, target)
            if cover is not None:
                obs.incr("reconstruct.covered")
                return cover.project(target)
        obs.incr(f"reconstruct.{method}")
        keep_maximal = method != "lp"
        constraints = extract_constraints(
            views, target, keep_maximal_only=keep_maximal
        )
        if total is None:
            total = _mean_total(views)
        return _SOLVERS[method](constraints, target, float(total))


def reconstruct_batch(
    views: list[MarginalTable],
    target_attrs_list,
    method: str = "maxent",
    use_covering_view: bool = True,
    total: float | None = None,
) -> list[MarginalTable]:
    """Reconstruct a whole workload of targets in one stacked solve.

    Covered targets (when ``use_covering_view``) and the empty set are
    answered by projection; the rest share one call into the method's
    batch solver (:func:`residual_batch` / :func:`maxent_batch`), or a
    per-target loop for methods without a stacked implementation.
    Results align with the input order.
    """
    _check_method(method)
    targets = [AttrSet(attrs) for attrs in target_attrs_list]
    if total is None:
        total = _mean_total(views)
    total = float(total)
    out: list[MarginalTable | None] = [None] * len(targets)

    solve_indices: list[int] = []
    with obs.span("reconstruct.batch"):
        for i, target in enumerate(targets):
            if not target:
                obs.incr("reconstruct.empty_target")
                out[i] = _empty_target_table(total)
                continue
            if use_covering_view:
                cover = covering_view(views, target)
                if cover is not None:
                    obs.incr("reconstruct.covered")
                    out[i] = cover.project(target)
                    continue
            solve_indices.append(i)
        if solve_indices:
            obs.incr(f"reconstruct.{method}", len(solve_indices))
            keep_maximal = method != "lp"
            constraint_lists = [
                extract_constraints(
                    views, targets[i], keep_maximal_only=keep_maximal
                )
                for i in solve_indices
            ]
            solver = _BATCH_SOLVERS.get(method)
            if solver is not None:
                tables = solver(
                    constraint_lists, [targets[i] for i in solve_indices], total
                )
            else:
                tables = [
                    _SOLVERS[method](constraints, targets[i], total)
                    for constraints, i in zip(constraint_lists, solve_indices)
                ]
            for i, table in zip(solve_indices, tables):
                out[i] = table
    return out  # type: ignore[return-value]


__all__ = [
    "MIXED_RECONSTRUCTION_METHODS",
    "MarginalConstraint",
    "RECONSTRUCTION_METHODS",
    "ResidualIndex",
    "build_constraint_system",
    "categorical_maxent",
    "covering_view",
    "extract_categorical_constraints",
    "extract_constraints",
    "fwht",
    "reconstruct_mixed",
    "least_squares",
    "linear_program",
    "maxent",
    "maxent_batch",
    "maxent_dual",
    "project_to_simplex",
    "reconstruct",
    "reconstruct_batch",
    "residual",
    "residual_batch",
]
