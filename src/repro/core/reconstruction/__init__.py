"""Reconstruction of k-way marginals from view marginals (Section 4.3).

:func:`reconstruct` is the front door.  When some view fully covers the
target attributes the answer is a straight projection; otherwise the
requested solver combines the views' partial information:

* ``maxent`` — maximum entropy via IPF (the paper's choice, "CME");
* ``maxent-dual`` — same optimisation through the scipy dual solver;
* ``lsq`` — least-L2-norm solution ("CLN");
* ``lp`` — min-max-violation linear program ("LP"/"CLP").
"""

from __future__ import annotations

from repro import obs
from repro.core.reconstruction.constraints import (
    MarginalConstraint,
    build_constraint_system,
    covering_view,
    extract_constraints,
)
from repro.core.reconstruction.least_squares import least_squares
from repro.core.reconstruction.linear_program import linear_program
from repro.core.reconstruction.maxent import maxent, maxent_dual
from repro.exceptions import ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

_SOLVERS = {
    "maxent": maxent,
    "maxent-dual": maxent_dual,
    "lsq": least_squares,
    "lp": linear_program,
}

RECONSTRUCTION_METHODS = tuple(_SOLVERS)


def reconstruct(
    views: list[MarginalTable],
    target_attrs,
    method: str = "maxent",
    use_covering_view: bool = True,
    total: float | None = None,
) -> MarginalTable:
    """Reconstruct the marginal over ``target_attrs`` from view tables.

    Parameters
    ----------
    views:
        View marginals (mutually consistent for every method but
        ``lp``, which also accepts raw views).
    target_attrs:
        Attribute set ``A`` of the desired k-way marginal.
    method:
        One of :data:`RECONSTRUCTION_METHODS`.
    use_covering_view:
        When True (default) and a view contains ``A``, return its
        projection directly — the trivial case of Section 4.3.
    total:
        The common total count ``N_V``.  Defaults to the mean of the
        view totals; long-lived callers (the serving engine) pass it
        in to avoid re-summing every view per query.
    """
    if method not in _SOLVERS:
        raise ReconstructionError(
            f"unknown reconstruction method {method!r}; "
            f"choose from {RECONSTRUCTION_METHODS}"
        )
    target = AttrSet(target_attrs)
    with obs.span("reconstruct"):
        if use_covering_view:
            cover = covering_view(views, target)
            if cover is not None:
                obs.incr("reconstruct.covered")
                return cover.project(target)
        obs.incr(f"reconstruct.{method}")
        keep_maximal = method != "lp"
        constraints = extract_constraints(
            views, target, keep_maximal_only=keep_maximal
        )
        if total is None:
            total = float(
                sum(v.total() for v in views) / len(views)
            ) if views else 0.0
        return _SOLVERS[method](constraints, target, float(total))


__all__ = [
    "MarginalConstraint",
    "RECONSTRUCTION_METHODS",
    "build_constraint_system",
    "covering_view",
    "extract_constraints",
    "least_squares",
    "linear_program",
    "maxent",
    "maxent_dual",
    "reconstruct",
]
