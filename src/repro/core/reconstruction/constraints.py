"""Constraint extraction for k-way reconstruction (paper Section 4.3).

For a target attribute set ``A`` and a view ``V``, the view's marginal
projected onto ``B = V ∩ A`` imposes ``2**|B|`` linear constraints on
the cells of ``T_A``.  Constraints from a ``B`` nested inside another
view's ``B'`` are implied once the views are consistent, so only
maximal intersections are kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReconstructionError
from repro.marginals.projection import (
    constraint_matrix,
    projection_index,
    subset_positions,
)
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable


@dataclass(frozen=True)
class MarginalConstraint:
    """``T_A[attrs] == target`` — one view's contribution."""

    attrs: tuple[int, ...]  # subset of the reconstruction target A
    target: np.ndarray  # length 2**len(attrs)

    @property
    def arity(self) -> int:
        return len(self.attrs)


def extract_constraints(
    views: list[MarginalTable],
    target_attrs,
    keep_maximal_only: bool = True,
) -> list[MarginalConstraint]:
    """Constraints on ``T_A`` induced by the given view marginals.

    With ``keep_maximal_only`` (the default, appropriate for mutually
    consistent views) a constraint set nested in another is dropped,
    and duplicate sets are collapsed to one (their targets agree after
    consistency; we average to also support raw views).
    """
    target = AttrSet(target_attrs)
    target_set = set(target)
    by_attrs: dict[tuple[int, ...], list[MarginalTable]] = {}
    for view in views:
        inter = tuple(sorted(target_set.intersection(view.attrs)))
        if not inter:
            continue
        by_attrs.setdefault(inter, []).append(view)

    if not by_attrs:
        raise ReconstructionError(
            f"no view intersects the target attributes {target}"
        )

    kept = list(by_attrs)
    if keep_maximal_only:
        as_sets = {b: frozenset(b) for b in by_attrs}
        kept = [
            b
            for b, b_set in as_sets.items()
            if not any(
                b_set < other for other in as_sets.values() if other is not b_set
            )
        ]
    # Dominated intersections are dropped *before* any projection runs
    # — on a wide synopsis most views lose to a larger overlap, and
    # projecting them first was the solved path's main fixed cost.
    constraints = []
    for attrs in sorted(kept, key=lambda a: (-len(a), a)):
        size = 1 << len(attrs)
        projected = [
            np.bincount(
                projection_index(view.attrs, attrs)[1],
                weights=view.counts, minlength=size,
            )
            for view in by_attrs[attrs]
        ]
        merged = projected[0] if len(projected) == 1 else np.mean(
            projected, axis=0
        )
        constraints.append(MarginalConstraint(attrs, merged))
    return constraints


def covering_view(views: list[MarginalTable], target_attrs) -> MarginalTable | None:
    """The first view fully containing the target, if any (trivial case)."""
    target = set(AttrSet(target_attrs))
    for view in views:
        if target.issubset(view.attrs):
            return view
    return None


def build_constraint_system(
    constraints: list[MarginalConstraint],
    target_attrs,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack constraints into a dense system ``M x = b``.

    ``x`` is the flattened 2**k cell vector of the target marginal.
    Used by the LP and least-squares solvers; the max-entropy solver
    works directly on the structured constraints instead.
    """
    target = AttrSet(target_attrs)
    k = len(target)
    rows = []
    rhs = []
    for c in constraints:
        positions = subset_positions(target, c.attrs)
        rows.append(constraint_matrix(k, positions))
        rhs.append(c.target)
    return np.vstack(rows), np.concatenate(rhs)
