"""Maximum-entropy reconstruction (paper Section 4.3, "CME").

Subject to a consistent family of marginal constraints, the
maximum-entropy table is the fixpoint of Iterative Proportional
Fitting (Darroch & Ratcliff 1972): start uniform, repeatedly rescale
the cells so each constrained sub-marginal matches its target.  IPF is
fast (a handful of O(2**k) sweeps), always non-negative, and exactly
solves the optimisation the paper states.

A scipy dual-ascent solver (:func:`maxent_dual`) is provided as an
independent cross-check; both are exercised against each other in the
test suite.  Mirroring the paper's trick of progressively relaxing the
equality constraints when the solver struggles, :func:`maxent` falls
back to damped updates if plain IPF fails to converge (possible when
the targets are slightly inconsistent, e.g. reconstruction from raw
noisy views).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.reconstruction.constraints import MarginalConstraint
from repro.exceptions import ReconstructionError
from repro.marginals.projection import (
    constraint_matrix,
    projection_map,
    subset_positions,
)
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

_TINY = 1e-12


def _prepare_targets(
    constraints: list[MarginalConstraint], total: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Clamp targets at zero and normalise each to the common total."""
    prepared = []
    for c in constraints:
        target = np.maximum(np.asarray(c.target, dtype=np.float64), 0.0)
        s = target.sum()
        if s <= 0:
            target = np.full(target.size, total / target.size)
        else:
            target = target * (total / s)
        prepared.append((np.asarray(c.attrs), target))
    return prepared


def maxent(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
    max_cycles: int = 500,
    tol: float = 1e-9,
) -> MarginalTable:
    """Max-entropy ``T_A`` matching the constraints, via IPF.

    Parameters
    ----------
    constraints:
        Marginal constraints over subsets of ``target_attrs``.
    target_attrs:
        The attribute set ``A`` to reconstruct.
    total:
        The common total count ``N_V`` (from any consistent view).
    max_cycles:
        Full sweeps over the constraint list before declaring
        non-convergence; a damped second attempt then runs.
    tol:
        Convergence threshold on the relative L1 mismatch per sweep.

    Returns
    -------
    MarginalTable
        Non-negative table over ``target_attrs`` summing to ``total``,
        with the convergence record (iterations, final residual,
        whether the damped fallback ran) in ``table.meta["maxent"]``.
    """
    target = AttrSet(target_attrs)
    k = len(target)
    total = max(float(total), _TINY)
    if not constraints:
        table = MarginalTable.uniform(target, total)
        table.meta["maxent"] = {
            "iterations": 0,
            "residual": 0.0,
            "converged": True,
            "damped": False,
        }
        return table

    prepared = []
    for attrs_arr, tgt in _prepare_targets(constraints, total):
        positions = subset_positions(target, tuple(int(a) for a in attrs_arr))
        pmap = projection_map(k, positions)
        prepared.append((pmap, tgt))

    cells = np.full(1 << k, total / (1 << k))
    mismatch, cycles = _ipf_sweeps(
        cells, prepared, total, max_cycles, tol, damping=1.0
    )
    damped = mismatch > tol
    if damped:
        # Progressive relaxation: damped multiplicative updates converge
        # to a compromise when the targets are (slightly) inconsistent.
        mismatch, extra = _ipf_sweeps(
            cells, prepared, total, max_cycles, tol, damping=0.5
        )
        cycles += extra
    obs.incr("maxent.calls")
    obs.incr("maxent.sweeps", cycles)
    obs.set_gauge("maxent.last_residual", mismatch)
    table = MarginalTable(target, cells)
    table.meta["maxent"] = {
        "iterations": cycles,
        "residual": mismatch,
        "converged": mismatch <= tol,
        "damped": damped,
    }
    return table


def _ipf_sweeps(
    cells: np.ndarray,
    prepared: list[tuple[np.ndarray, np.ndarray]],
    total: float,
    max_cycles: int,
    tol: float,
    damping: float,
) -> tuple[float, int]:
    """Run IPF sweeps in place; returns (final relative mismatch, sweeps)."""
    mismatch = np.inf
    cycles = 0
    for _ in range(max_cycles):
        cycles += 1
        mismatch = 0.0
        for pmap, tgt in prepared:
            current = np.bincount(pmap, weights=cells, minlength=tgt.size)
            mismatch += float(np.abs(current - tgt).sum())
            factor = tgt / np.maximum(current, _TINY)
            # Cells feeding an unreachable positive target stay at zero:
            # where current is ~0 but the target is positive, the factor
            # blows up without moving mass, so cap it.
            np.clip(factor, 0.0, 1e12, out=factor)
            if damping != 1.0:
                factor = factor**damping
            cells *= factor[pmap]
        mismatch /= total
        if mismatch < tol:
            break
    return mismatch, cycles


def maxent_batch(
    constraint_lists: list[list[MarginalConstraint]],
    target_attrs_list,
    total: float,
    max_cycles: int = 500,
    tol: float = 1e-9,
) -> list[MarginalTable]:
    """Stacked IPF: fit many targets with vectorised sweeps.

    The aggregate-then-adjust idiom: targets are grouped by arity, and
    within a group constraints sharing the same *position signature*
    (which bit positions of the target they pin) share one projection
    map — each sweep then applies every such signature to all of its
    rows at once through a single dense matmul + gather, instead of one
    bincount per query per constraint.  Each row still converges to
    its own max-entropy table; per-row mismatches decide convergence
    and the damped fallback re-runs only the rows that need it.
    Results (and ``meta["maxent"]``) align with the input order and
    agree with per-query :func:`maxent` up to solver tolerance.
    """
    if len(constraint_lists) != len(target_attrs_list):
        raise ReconstructionError(
            f"{len(constraint_lists)} constraint lists for "
            f"{len(target_attrs_list)} targets"
        )
    targets = [AttrSet(attrs) for attrs in target_attrs_list]
    total = max(float(total), _TINY)
    out: list[MarginalTable | None] = [None] * len(targets)

    by_arity: dict[int, list[int]] = {}
    for i, target in enumerate(targets):
        if not constraint_lists[i]:
            table = MarginalTable.uniform(target, total)
            table.meta["maxent"] = {
                "iterations": 0, "residual": 0.0,
                "converged": True, "damped": False,
            }
            out[i] = table
            continue
        by_arity.setdefault(len(target), []).append(i)

    for k, indices in by_arity.items():
        cells = np.full((len(indices), 1 << k), total / (1 << k))
        # positions signature -> (row indices, stacked prepared targets)
        by_positions: dict[tuple[int, ...], tuple[list[int], list[np.ndarray]]] = {}
        for row, i in enumerate(indices):
            for attrs_arr, tgt in _prepare_targets(constraint_lists[i], total):
                positions = subset_positions(
                    targets[i], tuple(int(a) for a in attrs_arr)
                )
                rows, tgts = by_positions.setdefault(positions, ([], []))
                rows.append(row)
                tgts.append(tgt)
        # Largest constraints first, mirroring extract_constraints'
        # ordering for the per-query solver.
        groups = [
            (np.asarray(rows), np.vstack(tgts),
             projection_map(k, positions), constraint_matrix(k, positions))
            for positions, (rows, tgts) in sorted(
                by_positions.items(), key=lambda kv: (-len(kv[0]), kv[0])
            )
        ]
        mismatch, cycles = _ipf_sweeps_grouped(
            cells, groups, total, max_cycles, tol, damping=1.0
        )
        damped = mismatch > tol
        if damped.any():
            # Re-run only the unconverged rows with damped updates.
            stale = np.flatnonzero(damped)
            index_of = {row: slot for slot, row in enumerate(stale)}
            sub_groups = []
            for rows, tgts, pmap, matrix in groups:
                keep = np.isin(rows, stale)
                if keep.any():
                    sub_groups.append((
                        np.asarray([index_of[r] for r in rows[keep]]),
                        tgts[keep], pmap, matrix,
                    ))
            sub_cells = cells[stale]
            sub_mismatch, extra = _ipf_sweeps_grouped(
                sub_cells, sub_groups, total, max_cycles, tol, damping=0.5
            )
            cells[stale] = sub_cells
            mismatch[stale] = sub_mismatch
            cycles += extra
        obs.incr("maxent.calls", len(indices))
        obs.incr("maxent.sweeps", cycles)
        for row, i in enumerate(indices):
            table = MarginalTable(targets[i], cells[row])
            table.meta["maxent"] = {
                "iterations": cycles,
                "residual": float(mismatch[row]),
                "converged": bool(mismatch[row] <= tol),
                "damped": bool(damped[row]),
            }
            out[i] = table
    return out  # type: ignore[return-value]


def _ipf_sweeps_grouped(
    cells: np.ndarray,
    groups: list,
    total: float,
    max_cycles: int,
    tol: float,
    damping: float,
) -> tuple[np.ndarray, int]:
    """Vectorised IPF sweeps over an ``(n, 2**k)`` row stack, in place.

    ``groups`` holds ``(rows, targets, pmap, matrix)`` per position
    signature; returns ``(relative mismatch per row, sweeps run)``.
    """
    n = cells.shape[0]
    mismatch = np.full(n, np.inf)
    cycles = 0
    for _ in range(max_cycles):
        cycles += 1
        mismatch = np.zeros(n)
        for rows, tgts, pmap, matrix in groups:
            # current[r] = sub-marginal of row r under this signature —
            # the dense matmul equivalent of a per-row bincount.
            current = cells[rows] @ matrix.T
            np.add.at(
                mismatch, rows, np.abs(current - tgts).sum(axis=-1)
            )
            factor = tgts / np.maximum(current, _TINY)
            np.clip(factor, 0.0, 1e12, out=factor)
            if damping != 1.0:
                factor = factor**damping
            cells[rows] *= factor[:, pmap]
        mismatch /= total
        if (mismatch < tol).all():
            break
    return mismatch, cycles


def maxent_dual(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
) -> MarginalTable:
    """Max-entropy via the Lagrangian dual, solved with scipy L-BFGS.

    Solves the same optimisation as :func:`maxent` through the
    exponential-family parameterisation ``p ∝ exp(M^T lambda)``; used
    as an independent cross-check of the IPF solver.
    """
    from scipy import optimize

    from repro.core.reconstruction.constraints import build_constraint_system

    target = AttrSet(target_attrs)
    total = max(float(total), _TINY)
    if not constraints:
        table = MarginalTable.uniform(target, total)
        table.meta["maxent"] = {
            "iterations": 0,
            "residual": 0.0,
            "converged": True,
            "damped": False,
        }
        return table
    matrix, rhs = build_constraint_system(constraints, target)
    rhs = np.maximum(rhs, 0.0)
    # Work with probabilities: b are target probabilities per row.
    row_attr_size = rhs / total

    def objective(lam: np.ndarray) -> tuple[float, np.ndarray]:
        theta = matrix.T @ lam
        shift = theta.max()
        weights = np.exp(theta - shift)
        partition = weights.sum()
        p = weights / partition
        value = float(np.log(partition) + shift - lam @ row_attr_size)
        grad = matrix @ p - row_attr_size
        return value, grad

    lam0 = np.zeros(matrix.shape[0])
    result = optimize.minimize(
        objective, lam0, jac=True, method="L-BFGS-B",
        # scipy's ftol is relative; the defaults stop far from the
        # constraint-satisfying optimum, so push all tolerances down
        # and give L-BFGS more curvature memory.
        options={"maxiter": 50_000, "ftol": 1e-18, "gtol": 1e-12, "maxcor": 50},
    )
    if not np.isfinite(result.fun):
        raise ReconstructionError("dual max-entropy solver diverged")
    theta = matrix.T @ result.x
    theta -= theta.max()
    weights = np.exp(theta)
    cells = total * weights / weights.sum()
    obs.incr("maxent_dual.calls")
    obs.incr("maxent_dual.iterations", int(result.nit))
    table = MarginalTable(target, cells)
    table.meta["maxent"] = {
        "iterations": int(result.nit),
        "residual": float(np.abs(np.asarray(result.jac)).max()),
        "converged": bool(result.success),
        "damped": False,
    }
    return table
