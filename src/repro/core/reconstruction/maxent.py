"""Maximum-entropy reconstruction (paper Section 4.3, "CME").

Subject to a consistent family of marginal constraints, the
maximum-entropy table is the fixpoint of Iterative Proportional
Fitting (Darroch & Ratcliff 1972): start uniform, repeatedly rescale
the cells so each constrained sub-marginal matches its target.  IPF is
fast (a handful of O(2**k) sweeps), always non-negative, and exactly
solves the optimisation the paper states.

A scipy dual-ascent solver (:func:`maxent_dual`) is provided as an
independent cross-check; both are exercised against each other in the
test suite.  Mirroring the paper's trick of progressively relaxing the
equality constraints when the solver struggles, :func:`maxent` falls
back to damped updates if plain IPF fails to converge (possible when
the targets are slightly inconsistent, e.g. reconstruction from raw
noisy views).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.reconstruction.constraints import MarginalConstraint
from repro.exceptions import ReconstructionError
from repro.marginals.projection import projection_map, subset_positions
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

_TINY = 1e-12


def _prepare_targets(
    constraints: list[MarginalConstraint], total: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Clamp targets at zero and normalise each to the common total."""
    prepared = []
    for c in constraints:
        target = np.maximum(np.asarray(c.target, dtype=np.float64), 0.0)
        s = target.sum()
        if s <= 0:
            target = np.full(target.size, total / target.size)
        else:
            target = target * (total / s)
        prepared.append((np.asarray(c.attrs), target))
    return prepared


def maxent(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
    max_cycles: int = 500,
    tol: float = 1e-9,
) -> MarginalTable:
    """Max-entropy ``T_A`` matching the constraints, via IPF.

    Parameters
    ----------
    constraints:
        Marginal constraints over subsets of ``target_attrs``.
    target_attrs:
        The attribute set ``A`` to reconstruct.
    total:
        The common total count ``N_V`` (from any consistent view).
    max_cycles:
        Full sweeps over the constraint list before declaring
        non-convergence; a damped second attempt then runs.
    tol:
        Convergence threshold on the relative L1 mismatch per sweep.

    Returns
    -------
    MarginalTable
        Non-negative table over ``target_attrs`` summing to ``total``,
        with the convergence record (iterations, final residual,
        whether the damped fallback ran) in ``table.meta["maxent"]``.
    """
    target = AttrSet(target_attrs)
    k = len(target)
    total = max(float(total), _TINY)
    if not constraints:
        table = MarginalTable.uniform(target, total)
        table.meta["maxent"] = {
            "iterations": 0,
            "residual": 0.0,
            "converged": True,
            "damped": False,
        }
        return table

    prepared = []
    for attrs_arr, tgt in _prepare_targets(constraints, total):
        positions = subset_positions(target, tuple(int(a) for a in attrs_arr))
        pmap = projection_map(k, positions)
        prepared.append((pmap, tgt))

    cells = np.full(1 << k, total / (1 << k))
    mismatch, cycles = _ipf_sweeps(
        cells, prepared, total, max_cycles, tol, damping=1.0
    )
    damped = mismatch > tol
    if damped:
        # Progressive relaxation: damped multiplicative updates converge
        # to a compromise when the targets are (slightly) inconsistent.
        mismatch, extra = _ipf_sweeps(
            cells, prepared, total, max_cycles, tol, damping=0.5
        )
        cycles += extra
    obs.incr("maxent.calls")
    obs.incr("maxent.sweeps", cycles)
    obs.set_gauge("maxent.last_residual", mismatch)
    table = MarginalTable(target, cells)
    table.meta["maxent"] = {
        "iterations": cycles,
        "residual": mismatch,
        "converged": mismatch <= tol,
        "damped": damped,
    }
    return table


def _ipf_sweeps(
    cells: np.ndarray,
    prepared: list[tuple[np.ndarray, np.ndarray]],
    total: float,
    max_cycles: int,
    tol: float,
    damping: float,
) -> tuple[float, int]:
    """Run IPF sweeps in place; returns (final relative mismatch, sweeps)."""
    mismatch = np.inf
    cycles = 0
    for _ in range(max_cycles):
        cycles += 1
        mismatch = 0.0
        for pmap, tgt in prepared:
            current = np.bincount(pmap, weights=cells, minlength=tgt.size)
            mismatch += float(np.abs(current - tgt).sum())
            factor = tgt / np.maximum(current, _TINY)
            # Cells feeding an unreachable positive target stay at zero:
            # where current is ~0 but the target is positive, the factor
            # blows up without moving mass, so cap it.
            np.clip(factor, 0.0, 1e12, out=factor)
            if damping != 1.0:
                factor = factor**damping
            cells *= factor[pmap]
        mismatch /= total
        if mismatch < tol:
            break
    return mismatch, cycles


def maxent_dual(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
) -> MarginalTable:
    """Max-entropy via the Lagrangian dual, solved with scipy L-BFGS.

    Solves the same optimisation as :func:`maxent` through the
    exponential-family parameterisation ``p ∝ exp(M^T lambda)``; used
    as an independent cross-check of the IPF solver.
    """
    from scipy import optimize

    from repro.core.reconstruction.constraints import build_constraint_system

    target = AttrSet(target_attrs)
    total = max(float(total), _TINY)
    if not constraints:
        table = MarginalTable.uniform(target, total)
        table.meta["maxent"] = {
            "iterations": 0,
            "residual": 0.0,
            "converged": True,
            "damped": False,
        }
        return table
    matrix, rhs = build_constraint_system(constraints, target)
    rhs = np.maximum(rhs, 0.0)
    # Work with probabilities: b are target probabilities per row.
    row_attr_size = rhs / total

    def objective(lam: np.ndarray) -> tuple[float, np.ndarray]:
        theta = matrix.T @ lam
        shift = theta.max()
        weights = np.exp(theta - shift)
        partition = weights.sum()
        p = weights / partition
        value = float(np.log(partition) + shift - lam @ row_attr_size)
        grad = matrix @ p - row_attr_size
        return value, grad

    lam0 = np.zeros(matrix.shape[0])
    result = optimize.minimize(
        objective, lam0, jac=True, method="L-BFGS-B",
        # scipy's ftol is relative; the defaults stop far from the
        # constraint-satisfying optimum, so push all tolerances down
        # and give L-BFGS more curvature memory.
        options={"maxiter": 50_000, "ftol": 1e-18, "gtol": 1e-12, "maxcor": 50},
    )
    if not np.isfinite(result.fun):
        raise ReconstructionError("dual max-entropy solver diverged")
    theta = matrix.T @ result.x
    theta -= theta.max()
    weights = np.exp(theta)
    cells = total * weights / weights.sum()
    obs.incr("maxent_dual.calls")
    obs.incr("maxent_dual.iterations", int(result.nit))
    table = MarginalTable(target, cells)
    table.meta["maxent"] = {
        "iterations": int(result.nit),
        "residual": float(np.abs(np.asarray(result.jac)).max()),
        "converged": bool(result.success),
        "damped": False,
    }
    return table
