"""Least-squares reconstruction (paper Section 4.3, "CLN").

Selects the solution of the under-determined constraint system with
the least L2 norm, subject to non-negativity.  We first try the
closed-form minimum-norm solution (pseudo-inverse); if it violates
non-negativity, we solve the bound-constrained problem

    minimize  ||x||^2 + mu * ||M x - b||^2   subject to  x >= 0

with a large penalty ``mu`` via :func:`scipy.optimize.lsq_linear`,
which enforces the marginal constraints to numerical precision while
keeping the solver robust (the exact QP and the penalty formulation
agree in the limit; tests check the constraint residual).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.reconstruction.constraints import (
    MarginalConstraint,
    build_constraint_system,
)
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

#: Weight of the constraint residual relative to the norm objective.
CONSTRAINT_PENALTY = 1e6


def least_squares(
    constraints: list[MarginalConstraint],
    target_attrs,
    total: float,
) -> MarginalTable:
    """Minimum-L2-norm non-negative table matching the constraints."""
    target = AttrSet(target_attrs)
    if not constraints:
        return MarginalTable.uniform(target, max(total, 0.0))
    matrix, rhs = build_constraint_system(constraints, target)

    # Unconstrained minimum-norm solution first: x = M^+ b.
    cells, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    if cells.min() >= -1e-9 * max(1.0, abs(total)):
        return MarginalTable(target, np.maximum(cells, 0.0))

    scale = max(1.0, float(np.abs(rhs).max()))
    weight = np.sqrt(CONSTRAINT_PENALTY)
    stacked = np.vstack([weight * matrix / scale, np.eye(matrix.shape[1]) / scale])
    stacked_rhs = np.concatenate([weight * rhs / scale, np.zeros(matrix.shape[1])])
    result = optimize.lsq_linear(
        stacked, stacked_rhs, bounds=(0.0, np.inf), tol=1e-12
    )
    return MarginalTable(target, np.maximum(result.x, 0.0))
