"""The PriView synopsis: what is published, and how it answers queries.

A :class:`PriViewSynopsis` holds the post-processed view marginals.  It
no longer references the private dataset — once built, any number of
k-way marginals (for any ``k``) can be reconstructed from it without
further privacy cost, the property the paper highlights at the end of
Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.reconstruction import reconstruct
from repro.covering.design import CoveringDesign
from repro.marginals.table import MarginalTable, _as_sorted_attrs


@dataclass
class PriViewSynopsis:
    """Published, consistent, non-negative view marginals.

    Attributes
    ----------
    design:
        The covering design whose blocks are the view attribute sets.
    views:
        One :class:`MarginalTable` per design block, mutually
        consistent.
    epsilon:
        The privacy budget the synopsis satisfies.
    num_attributes:
        Dimensionality ``d`` of the underlying dataset.
    """

    design: CoveringDesign
    views: list[MarginalTable]
    epsilon: float
    num_attributes: int
    metadata: dict = field(default_factory=dict)

    @property
    def num_views(self) -> int:
        """``w`` — number of released view marginals."""
        return len(self.views)

    def total_count(self) -> float:
        """The common (consistent) total count ``N_V``."""
        if not self.views:
            return 0.0
        return sum(v.total() for v in self.views) / len(self.views)

    def is_covered(self, attrs) -> bool:
        """True when some view fully contains ``attrs``."""
        target = set(_as_sorted_attrs(attrs))
        return any(target.issubset(v.attrs) for v in self.views)

    def marginal(self, attrs, method: str = "maxent") -> MarginalTable:
        """Reconstruct the k-way marginal over ``attrs``.

        When some view covers ``attrs`` this is a projection; otherwise
        the requested solver (default: maximum entropy) combines the
        constraints every intersecting view contributes.
        """
        return reconstruct(self.views, attrs, method=method)

    def marginals(self, attr_sets, method: str = "maxent") -> list[MarginalTable]:
        """Reconstruct several marginals (convenience wrapper)."""
        return [self.marginal(attrs, method=method) for attrs in attr_sets]

    def __repr__(self) -> str:
        return (
            f"PriViewSynopsis(design={self.design.notation}, d={self.num_attributes},"
            f" epsilon={self.epsilon}, views={self.num_views})"
        )
