"""The PriView synopsis: what is published, and how it answers queries.

A :class:`PriViewSynopsis` holds the post-processed view marginals.  It
no longer references the private dataset — once built, any number of
k-way marginals (for any ``k``) can be reconstructed from it without
further privacy cost, the property the paper highlights at the end of
Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.reconstruction import reconstruct, reconstruct_batch
from repro.covering.design import CoveringDesign
from repro.marginals.attrs import AttrSet
from repro.marginals.domain import Domain
from repro.marginals.table import MarginalTable


@dataclass
class PriViewSynopsis:
    """Published, consistent, non-negative view marginals.

    Attributes
    ----------
    design:
        The covering design whose blocks are the view attribute sets.
    views:
        One :class:`MarginalTable` per design block, mutually
        consistent.
    epsilon:
        The privacy budget the synopsis satisfies.
    num_attributes:
        Dimensionality ``d`` of the underlying dataset.
    domain:
        Optional attribute schema (names, kinds, bin edges) for the
        same ``d`` binary attributes; carried through serialization
        and the store so record-level consumers can decode samples.
    """

    design: CoveringDesign
    views: list[MarginalTable]
    epsilon: float
    num_attributes: int
    metadata: dict = field(default_factory=dict)
    domain: Domain | None = None
    #: optional repro.serve.QueryEngine; set via attach_engine
    _engine: object | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_views(self) -> int:
        """``w`` — number of released view marginals."""
        return len(self.views)

    # ------------------------------------------------------------------
    # Serving-engine integration
    # ------------------------------------------------------------------
    def attach_engine(self, engine) -> None:
        """Route ``marginal``/``marginals`` through a serving engine.

        The engine (see :class:`repro.serve.QueryEngine`) answers with
        planning and an LRU answer cache; repeated queries stop paying
        for reconstruction.  Pass ``None`` to detach.
        """
        self._engine = engine

    @property
    def engine(self):
        """The attached serving engine, if any."""
        return self._engine

    def total_count(self) -> float:
        """The common (consistent) total count ``N_V``."""
        if not self.views:
            return 0.0
        return sum(v.total() for v in self.views) / len(self.views)

    def is_covered(self, attrs) -> bool:
        """True when some view fully contains ``attrs``."""
        target = set(AttrSet(attrs))
        return any(target.issubset(v.attrs) for v in self.views)

    def marginal(self, attrs, method: str = "maxent") -> MarginalTable:
        """Reconstruct the k-way marginal over ``attrs``.

        When some view covers ``attrs`` this is a projection; otherwise
        the requested solver (default: maximum entropy) combines the
        constraints every intersecting view contributes.  With an
        attached serving engine the query goes through its planner and
        answer cache instead.

        Degenerate sets are explicit: the empty set answers with the
        single-cell total ``N_V`` and the full-domain set runs through
        the solver like any other uncovered target — neither depends
        on the views happening to cover them.
        """
        if self._engine is not None:
            return self._engine.answer(attrs, method=method).table
        return reconstruct(self.views, attrs, method=method)

    def marginals(self, attr_sets, method: str = "maxent") -> list[MarginalTable]:
        """Reconstruct several marginals, solving each distinct set once.

        Repeated or equivalent attribute sets (``(1, 3)`` vs ``[3, 1]``)
        are normalised and answered from the first computation; every
        slot still gets its own table, aligned with the input order.
        With an attached serving engine the whole workload goes through
        its de-duplicating batch path; without one the distinct
        uncovered sets share a single stacked solve
        (:func:`~repro.core.reconstruction.reconstruct_batch`).
        """
        if self._engine is not None:
            return [
                answer.table
                for answer in self._engine.answer_batch(attr_sets, method=method)
            ]
        order = list(dict.fromkeys(AttrSet(attrs) for attrs in attr_sets))
        tables = reconstruct_batch(self.views, order, method=method)
        distinct = dict(zip(order, tables))
        out = []
        seen: set[tuple[int, ...]] = set()
        for attrs in attr_sets:
            target = AttrSet(attrs)
            table = distinct[target]
            out.append(table.copy() if target in seen else table)
            seen.add(target)
        return out

    def __repr__(self) -> str:
        return (
            f"PriViewSynopsis(design={self.design.notation}, d={self.num_attributes},"
            f" epsilon={self.epsilon}, views={self.num_views})"
        )
