"""PriView core: the paper's primary contribution (Section 4).

The pipeline is

1. :mod:`repro.core.view_selection` — choose a covering design of views
   from ``d``, ``epsilon`` and ``N`` (Section 4.5);
2. noisy view generation with ``Lap(w / epsilon)`` (Section 4.2 step 2);
3. :mod:`repro.core.consistency` — make all views mutually consistent
   (Section 4.4), interleaved with
   :mod:`repro.core.nonnegativity` — the Ripple procedure;
4. :mod:`repro.core.reconstruction` — answer any k-way marginal by
   maximum entropy (Section 4.3).

:class:`repro.core.priview.PriView` ties the stages together and is the
main entry point of the library.
"""

from repro.core.priview import PriView
from repro.core.synopsis import PriViewSynopsis
from repro.core.view_selection import (
    choose_strength,
    priview_noise_error,
    select_views,
)
from repro.core.consistency import intersection_closure, make_consistent
from repro.core.nonnegativity import apply_nonnegativity, ripple
from repro.core.serialization import load_synopsis, save_synopsis

__all__ = [
    "PriView",
    "PriViewSynopsis",
    "choose_strength",
    "priview_noise_error",
    "select_views",
    "intersection_closure",
    "make_consistent",
    "apply_nonnegativity",
    "ripple",
    "load_synopsis",
    "save_synopsis",
]
