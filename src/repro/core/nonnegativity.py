"""Non-negativity post-processing of noisy views (paper Section 4.4).

The paper's *Ripple* procedure turns each cell below ``-theta`` into 0
and subtracts the removed (negative) mass, split evenly, from the
cell's ``l`` Hamming-distance-1 neighbours, iterating until no cell is
below ``-theta``.  This keeps the table total unchanged and — unlike a
plain clamp — avoids positively biasing queries that touch low-count
regions.

Alternatives evaluated in Figure 4 are also provided: ``none``,
``simple`` (clamp at zero) and ``global`` (clamp, then subtract a
constant from positive cells to preserve the total).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import ReconstructionError
from repro.marginals.projection import cell_neighbours
from repro.marginals.table import MarginalTable

#: Default threshold: the paper's "small value" theta.  One count is
#: negligible against the Laplace noise scale of any realistic view.
DEFAULT_THETA = 1.0

#: Safety valve; Ripple's geometric decay finishes in far fewer passes.
MAX_RIPPLE_PASSES = 10_000


def ripple(table: MarginalTable, theta: float = DEFAULT_THETA) -> int:
    """Apply Ripple non-negativity in place; returns the pass count.

    Each pass zeroes every cell with count ``c < -theta`` and adds
    ``c / l`` (a negative amount) to each of its ``l`` neighbours, so
    the total is conserved and the negative mass spreads and decays.
    """
    if theta <= 0:
        raise ReconstructionError(
            f"theta must be positive for Ripple to terminate, got {theta}"
        )
    arity = table.arity
    if arity == 0:
        return 0
    if table.counts.sum() <= 0:
        # A table with no positive mass cannot absorb its negatives; it
        # carries no usable counts, so zero it.  (Unreachable in the
        # real pipeline: consistency first equalises every view's total
        # to the common ~N > 0.)
        table.counts[:] = 0.0
        return 0
    neighbours = cell_neighbours(arity)
    counts = table.counts
    passes = 0
    cells_clipped = 0
    while passes < MAX_RIPPLE_PASSES:
        negative = np.flatnonzero(counts < -theta)
        if negative.size == 0:
            break
        passes += 1
        cells_clipped += int(negative.size)
        removed = counts[negative].copy()
        counts[negative] = 0.0
        share = np.repeat(removed / arity, arity)
        np.add.at(counts, neighbours[negative].ravel(), share)
    else:
        raise ReconstructionError(
            f"Ripple did not settle within {MAX_RIPPLE_PASSES} passes"
        )
    obs.incr("ripple.passes", passes)
    obs.incr("ripple.cells_clipped", cells_clipped)
    return passes


def categorical_ripple(table, theta: float = DEFAULT_THETA) -> int:
    """Ripple with change-one-value neighbourhoods (Section 4.7).

    "The only change is in the Ripple Non-negativity step, neighbouring
    cells are obtained by changing only one value (as opposed to
    flipping one value)."  ``table`` is a
    :class:`~repro.categorical.table.CategoricalMarginalTable`; returns
    the pass count.  Folded into the shared core from the old
    ``repro.categorical.nonnegativity`` (which remains as a deprecated
    shim); the neighbourhood import is lazy to keep the package
    dependency one-way.
    """
    from repro.categorical.indexing import categorical_neighbours

    if theta <= 0:
        raise ReconstructionError(
            f"theta must be positive for Ripple to terminate, got {theta}"
        )
    if table.arity == 0:
        return 0
    if table.counts.sum() <= 0:
        table.counts[:] = 0.0
        return 0
    neighbours = categorical_neighbours(table.arities)
    degree = neighbours.shape[1]
    counts = table.counts
    passes = 0
    cells_clipped = 0
    while passes < MAX_RIPPLE_PASSES:
        negative = np.flatnonzero(counts < -theta)
        if negative.size == 0:
            obs.incr("ripple.passes", passes)
            obs.incr("ripple.cells_clipped", cells_clipped)
            return passes
        passes += 1
        cells_clipped += int(negative.size)
        removed = counts[negative].copy()
        counts[negative] = 0.0
        share = np.repeat(removed / degree, degree)
        np.add.at(counts, neighbours[negative].ravel(), share)
    raise ReconstructionError(
        f"categorical Ripple did not settle within {MAX_RIPPLE_PASSES} passes"
    )


def simple_clamp(table: MarginalTable) -> None:
    """Set negative cells to zero (Figure 4's ``Simple``).

    Biases totals upward — kept only as an evaluation baseline.
    """
    if obs.enabled():
        obs.incr("nonneg.cells_clipped", int((table.counts < 0).sum()))
    np.maximum(table.counts, 0.0, out=table.counts)


def global_redistribute(table: MarginalTable, max_passes: int = 1000) -> None:
    """Clamp negatives, subtracting the excess evenly from positive cells.

    Figure 4's ``Global``: preserves the total but, unlike Ripple,
    spreads the correction over the whole table rather than locally.
    Subtracting can create fresh negatives, so the step iterates.
    """
    counts = table.counts
    for _ in range(max_passes):
        negative = counts < 0
        if not negative.any():
            return
        if obs.enabled():
            obs.incr("nonneg.cells_clipped", int(negative.sum()))
        deficit = -counts[negative].sum()
        counts[negative] = 0.0
        positive = counts > 0
        if not positive.any():
            return
        counts[positive] -= deficit / positive.sum()
    np.maximum(counts, 0.0, out=counts)


def apply_nonnegativity(
    table: MarginalTable,
    method: str = "ripple",
    theta: float = DEFAULT_THETA,
) -> None:
    """Dispatch by name: ``none`` | ``simple`` | ``global`` | ``ripple``."""
    if method == "none":
        return
    if method == "simple":
        simple_clamp(table)
    elif method == "global":
        global_redistribute(table)
    elif method == "ripple":
        ripple(table, theta=theta)
    else:
        raise ReconstructionError(f"unknown non-negativity method {method!r}")
