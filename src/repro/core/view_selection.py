"""View selection (paper Section 4.5).

Two decisions: the view width ``l`` (the paper recommends 8, justified
by the ``2**(l/2) / (l (l-1))`` minimisation reproduced in
:mod:`repro.analysis.ell_selection`) and the covering strength ``t``,
chosen so that the *noise error* predicted by Equation 5 lands in a
target band (the paper uses 0.001 .. 0.003).
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.covering.design import CoveringDesign
from repro.covering.repository import best_design
from repro.exceptions import DesignError

#: The paper's empirically recommended band for the noise error.
NOISE_ERROR_BAND = (0.001, 0.003)

#: The paper's recommended view width.
DEFAULT_VIEW_WIDTH = 8

#: Budget sliver the paper suggests for the noisy record count that
#: steers the choice of ``t`` — tracked explicitly so budget audits can
#: account for it (``PriView.fit`` adds it to its configured total).
RECORD_COUNT_EPSILON = 0.001


def priview_noise_error(
    num_records: float,
    num_attributes: int,
    epsilon: float,
    block_size: int,
    num_blocks: int,
) -> float:
    """Equation 5: predicted normalised L2 noise error of a pair.

    ``err = 2**((l+1)/2) / (N * eps) * sqrt(w d (d-1) / (l (l-1)))``.

    With the paper's Kosarak numbers (d=32, N~900k, eps=1, l=8, w=20)
    this evaluates to ~0.00047, matching the Section 4.5 table.
    """
    if num_records <= 0:
        raise DesignError(f"need a positive record-count estimate, got {num_records}")
    l, w, d = block_size, num_blocks, num_attributes
    return (
        2 ** ((l + 1) / 2.0)
        / (num_records * epsilon)
        * math.sqrt(w * d * (d - 1) / (l * (l - 1.0)))
    )


def choose_strength(
    num_records: float,
    num_attributes: int,
    epsilon: float,
    block_size: int = DEFAULT_VIEW_WIDTH,
    candidates: tuple[int, ...] = (2, 3, 4),
    band: tuple[float, float] = NOISE_ERROR_BAND,
) -> int:
    """Pick the covering strength ``t`` per the Section 4.5 heuristic.

    Among candidate strengths whose Equation-5 noise error stays below
    the band's upper edge, prefer the smallest one whose error reaches
    the band's lower edge (more coverage is "probably not worthwhile"
    once the noise error is already in band — the paper picks t=3, not
    t=4, for Kosarak at eps=1).  If every candidate exceeds the band,
    fall back to the smallest strength.
    """
    lower, upper = band
    feasible: list[tuple[int, float]] = []
    for t in sorted(candidates):
        design = best_design(num_attributes, min(block_size, num_attributes), t)
        err = priview_noise_error(
            num_records, num_attributes, epsilon, block_size, design.num_blocks
        )
        if err <= upper:
            feasible.append((t, err))
    if not feasible:
        return min(candidates)
    for t, err in feasible:
        if err >= lower:
            return t
    # All feasible strengths are below the band: take the largest
    # coverage, its noise is essentially free.
    return feasible[-1][0]


def select_views(
    num_records: float,
    num_attributes: int,
    epsilon: float,
    block_size: int = DEFAULT_VIEW_WIDTH,
    strength: int | None = None,
) -> CoveringDesign:
    """The full Section 4.5 procedure: returns the covering design.

    ``num_records`` may be a rough estimate (the paper suggests
    spending a sliver of budget on a noisy count); only its order of
    magnitude matters.
    """
    with obs.span("select_views"):
        block_size = min(block_size, num_attributes)
        if strength is None:
            strength = choose_strength(
                num_records, num_attributes, epsilon, block_size
            )
        design = best_design(num_attributes, block_size, strength)
    obs.set_gauge("view_selection.strength", strength)
    return design


def noisy_record_count(
    num_records: int,
    epsilon: float = RECORD_COUNT_EPSILON,
    rng: np.random.Generator | None = None,
) -> float:
    """A differentially private estimate of N (sensitivity 1).

    The paper suggests eps=0.001 here; the estimate only steers the
    choice of ``t``, so very coarse is fine.
    """
    rng = rng or np.random.default_rng()
    obs.record_draw(
        "laplace",
        epsilon=epsilon,
        sensitivity=1.0,
        scale=1.0 / epsilon,
        draws=1,
        label="record_count",
    )
    return max(1.0, num_records + rng.laplace(scale=1.0 / epsilon))
