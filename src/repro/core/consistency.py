"""Overall consistency across noisy views (paper Section 4.4).

The procedure: collect every attribute set arising as an intersection
of views, process them in a topological order of the subset poset
(smallest first, the empty set leading), and at each set ``A`` replace
the projection of every view containing ``A`` by the average of those
projections.  By Lemma 1, later steps never break earlier ones, and
averaging reduces the noise variance on shared information.
"""

from __future__ import annotations

from repro import obs
from repro.marginals.table import MarginalTable


def intersection_closure(
    attr_sets: list[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """All intersections of sub-families of ``attr_sets``, small first.

    The closure of a family under *pairwise* intersection contains the
    intersection of every sub-family, so a worklist over pairs
    suffices.  The empty tuple (shared total count) is always included
    and sorted first; the sets themselves are excluded — consistency on
    a full view with itself is a no-op.
    """
    base = [frozenset(a) for a in attr_sets]
    closure: set[frozenset[int]] = set()
    worklist = list(base)
    known = set(base)
    while worklist:
        current = worklist.pop()
        for other in base:
            inter = current & other
            if inter == current or inter == other:
                continue
            if inter not in known:
                known.add(inter)
                closure.add(inter)
                worklist.append(inter)
    # Views duplicated in the family still need consistency on their
    # common set (which is the view itself).
    seen: set[frozenset[int]] = set()
    for view in base:
        if view in seen:
            closure.add(view)
        seen.add(view)
    closure.add(frozenset())
    return sorted((tuple(sorted(s)) for s in closure), key=lambda s: (len(s), s))


def mutual_consistency(tables: list[MarginalTable], attrs: tuple[int, ...]) -> None:
    """Make ``tables`` agree on ``attrs`` (all must contain ``attrs``).

    Implements the two-step Section 4.4 update: average the projections
    (the minimum-variance combination when the tables share size and
    budget), then shift each table's cells to match the average.

    Works for any table type exposing ``project`` / ``counts`` /
    ``consistency_update`` — the categorical tables of Section 4.7 use
    this exact procedure, as the paper notes.
    """
    if len(tables) < 2:
        return
    projections = [t.project(attrs) for t in tables]
    mean = projections[0]
    mean.counts = sum(p.counts for p in projections) / len(projections)
    for table in tables:
        table.consistency_update(mean)


def make_consistent(tables: list[MarginalTable]) -> list[tuple[int, ...]]:
    """Run overall consistency in place; returns the processed sets.

    After this call, for every pair of tables ``T_V, T_W`` the
    projections onto ``V ∩ W`` coincide (Definition 2), and shared
    information has been averaged across all views carrying it.
    """
    order = intersection_closure([t.attrs for t in tables])
    table_attr_sets = [frozenset(t.attrs) for t in tables]
    updates = 0
    for attrs in order:
        target = frozenset(attrs)
        involved = [
            t
            for t, attr_set in zip(tables, table_attr_sets)
            if target <= attr_set
        ]
        if len(involved) >= 2:
            updates += len(involved)
        mutual_consistency(involved, attrs)
    obs.incr("consistency.sets_processed", len(order))
    obs.incr("consistency.table_updates", updates)
    return order
