"""The end-to-end PriView mechanism (paper Section 4.2).

Typical use::

    from repro import PriView
    mechanism = PriView(epsilon=1.0, seed=7)
    synopsis = mechanism.fit(dataset)          # the only private step
    table = synopsis.marginal((0, 5, 9, 23))   # any k-way marginal

``fit`` spends the entire epsilon on the noisy views (Laplace noise of
scale ``w / epsilon`` per view, by sequential composition over the
``w`` views); everything afterwards is post-processing and free.

The fit hot path (one exact ℓ-way marginal per view — the only step
touching raw records) can run on the bit-sliced popcount kernels and
a worker pool from :mod:`repro.kernels`::

    PriView(epsilon=1.0, seed=7, packed=True, workers=8).fit(dataset)

``packed=True`` alone changes *nothing* about the released synopsis
(the packed marginal is bitwise identical and the noise stream is
untouched).  Setting ``workers`` switches the noise to per-view
``SeedSequence.spawn`` child streams: the synopsis is then
bit-identical for any worker count (1, 2, 8, …) and backend, though
different from the legacy ``workers=None`` sequential stream.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro import obs
from repro.core.consistency import make_consistent
from repro.core.nonnegativity import DEFAULT_THETA, apply_nonnegativity
from repro.core.synopsis import PriViewSynopsis
from repro.core.view_selection import (
    DEFAULT_VIEW_WIDTH,
    RECORD_COUNT_EPSILON,
    noisy_record_count,
    select_views,
)
from repro.covering.design import CoveringDesign
from repro.exceptions import PrivacyBudgetError
from repro.kernels import config as kernels_config
from repro.kernels.fit import generate_noisy_views as _parallel_noisy_views
from repro.kernels.packed import as_packed
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import noisy_marginal


class PriView:
    """Configurable PriView mechanism.

    Parameters
    ----------
    epsilon:
        Total privacy budget; ``float('inf')`` gives the paper's
        noise-free ``C*`` variants.
    view_width:
        The ``l`` of the covering design (paper recommends 8).
    strength:
        Covering strength ``t``; ``None`` picks it with the Section 4.5
        heuristic from a noisy record count.
    design:
        Explicit covering design, overriding automatic selection —
        used by the experiments that sweep designs.
    nonnegativity:
        ``"ripple"`` (default), ``"simple"``, ``"global"`` or
        ``"none"``.
    nonneg_rounds:
        How many (non-negativity + consistency) rounds follow the
        initial consistency pass.  1 reproduces the paper's
        Consistency + Ripple + Consistency; Figure 4 shows more rounds
        add nothing.
    theta:
        Ripple threshold.
    seed:
        Seeds the noise generator for reproducible experiments.
    packed:
        Run marginal extraction on the bit-sliced popcount kernels
        (:class:`repro.kernels.PackedDataset`).  Bitwise identical
        output, typically ~10x faster extraction.  ``None`` (default)
        inherits the process-wide default set through
        :func:`repro.kernels.set_fit_defaults` (e.g. the CLI's
        ``run --packed``).
    workers:
        ``None`` (default, possibly overridden by the process-wide
        default): legacy sequential noise stream.  Any integer: fan
        the views out over that many workers with per-view
        ``SeedSequence.spawn`` streams — bit-identical for every
        worker count, including 1.
    backend:
        Executor backend for the parallel path: ``auto`` (threads),
        ``serial``, ``thread`` or ``process``.
    """

    name = "priview"

    def __init__(
        self,
        epsilon: float,
        view_width: int = DEFAULT_VIEW_WIDTH,
        strength: int | None = None,
        design: CoveringDesign | None = None,
        nonnegativity: str = "ripple",
        nonneg_rounds: int = 1,
        theta: float = DEFAULT_THETA,
        consistency: bool = True,
        seed: int | None = None,
        packed: bool | None = None,
        workers: int | None = None,
        backend: str = "auto",
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        defaults = kernels_config.fit_defaults()
        self.epsilon = float(epsilon)
        self.view_width = view_width
        self.strength = strength
        self.design = design
        self.nonnegativity = nonnegativity
        self.nonneg_rounds = nonneg_rounds
        self.theta = theta
        self.consistency = consistency
        self.packed = defaults["packed"] if packed is None else bool(packed)
        self.workers = defaults["workers"] if workers is None else workers
        self.backend = backend
        self._rng = np.random.default_rng(seed)
        self._seed_seq = np.random.SeedSequence(seed)

    # ------------------------------------------------------------------
    def choose_design(self, dataset: BinaryDataset) -> CoveringDesign:
        """The covering design ``fit`` will use for ``dataset``."""
        if self.design is not None:
            return self.design
        n_estimate = (
            dataset.num_records
            if np.isinf(self.epsilon)
            else noisy_record_count(dataset.num_records, rng=self._rng)
        )
        return select_views(
            n_estimate,
            dataset.num_attributes,
            self.epsilon,
            block_size=self.view_width,
            strength=self.strength,
        )

    def generate_noisy_views(
        self, dataset: BinaryDataset, design: CoveringDesign
    ) -> list[MarginalTable]:
        """Step 2: the only step that touches the private data.

        With ``packed`` the exact marginals come off the bit-sliced
        popcount kernels (bitwise-identical counts); with ``workers``
        set, views are fanned out with per-view child noise streams
        (see the class docstring for the determinism contract).
        """
        w = design.num_blocks
        source = as_packed(dataset) if self.packed else dataset
        if self.workers is None:
            obs.set_gauge("fit.workers", 1)
            return [
                noisy_marginal(
                    source.marginal(block), self.epsilon, sensitivity=w, rng=self._rng
                )
                for block in design.blocks
            ]
        return _parallel_noisy_views(
            source,
            design.blocks,
            self.epsilon,
            sensitivity=w,
            root_seed=self._seed_seq,
            workers=self.workers,
            backend=self.backend,
        )

    def post_process(self, views: list[MarginalTable]) -> list[MarginalTable]:
        """Steps 3: consistency and non-negativity, in the paper's order.

        Consistency, then ``nonneg_rounds`` repetitions of
        (non-negativity + consistency).  Runs in place and returns the
        same list for convenience.
        """
        if self.consistency:
            with obs.span("consistency"):
                make_consistent(views)
        rounds = self.nonneg_rounds if self.nonnegativity != "none" else 0
        for _ in range(rounds):
            with obs.span("nonnegativity"):
                for view in views:
                    apply_nonnegativity(view, self.nonnegativity, theta=self.theta)
            if self.consistency:
                with obs.span("consistency"):
                    make_consistent(views)
        return views

    def fit(self, dataset: BinaryDataset) -> PriViewSynopsis:
        """Run the full pipeline and return the private synopsis.

        Under an observability session the fit is traced stage by stage
        and every noise draw lands in a strict ``PriView.fit`` budget
        scope.  The scope's configured total is ``epsilon`` plus — when
        the design is chosen automatically under finite budget — the
        paper's ``RECORD_COUNT_EPSILON`` sliver for the noisy record
        count, so the ledger audit balances exactly.
        """
        configured = self.epsilon
        if self.design is None and not np.isinf(self.epsilon):
            configured = self.epsilon + RECORD_COUNT_EPSILON
        fit_start = perf_counter()
        with obs.span("priview.fit"), obs.budget_scope("PriView.fit", configured):
            with obs.span("choose_design"):
                design = self.choose_design(dataset)
            obs.set_gauge("priview.design_blocks", design.num_blocks)
            obs.set_gauge("priview.design_width", design.block_size)
            obs.set_gauge("fit.packed", int(self.packed))
            with obs.span("noisy_views"):
                views = self.generate_noisy_views(dataset, design)
            with obs.span("post_process"):
                views = self.post_process(views)
            obs.observe(
                "fit.seconds",
                perf_counter() - fit_start,
                {"mechanism": "priview"},
            )
        return PriViewSynopsis(
            design=design,
            views=views,
            epsilon=self.epsilon,
            num_attributes=dataset.num_attributes,
            domain=getattr(dataset, "domain", None),
            metadata={
                "nonnegativity": self.nonnegativity,
                "nonneg_rounds": self.nonneg_rounds,
                "theta": self.theta,
            },
        )
