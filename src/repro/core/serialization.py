"""Persisting a PriView synopsis.

The synopsis *is* the published artifact: once written to disk it can
be shipped to analysts, who reconstruct marginals without any access
to the private data (or to this library's fitting code paths).
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.core.synopsis import PriViewSynopsis
from repro.covering.design import CoveringDesign
from repro.exceptions import DatasetError
from repro.marginals.table import MarginalTable

#: bumped on breaking changes to the on-disk layout
FORMAT_VERSION = 1


def jsonable(obj):
    """Recursively coerce ``obj`` into plain JSON-serialisable types.

    numpy scalars become Python scalars, arrays become lists, mapping
    keys become strings; anything unrecognised falls back to ``str``.
    Used for the free-form ``meta``/``metadata`` dicts the pipeline
    attaches to tables (solver telemetry and the like).
    """
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return str(obj)


def save_synopsis(
    synopsis: PriViewSynopsis, path: str | os.PathLike
) -> pathlib.Path:
    """Write a synopsis to ``path`` (compressed .npz)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": FORMAT_VERSION,
        "epsilon": synopsis.epsilon,
        "num_attributes": synopsis.num_attributes,
        "design": synopsis.design.to_text(),
        "view_attrs": [list(v.attrs) for v in synopsis.views],
        "view_meta": [jsonable(v.meta) for v in synopsis.views],
        "metadata": jsonable(synopsis.metadata),
    }
    arrays = {
        f"view_{i}": view.counts for i, view in enumerate(synopsis.views)
    }
    np.savez_compressed(path, header=json.dumps(header), **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_synopsis(path: str | os.PathLike) -> PriViewSynopsis:
    """Load a synopsis written by :func:`save_synopsis`."""
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise DatasetError(f"missing synopsis file {path}")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        if header.get("format_version") != FORMAT_VERSION:
            raise DatasetError(
                f"unsupported synopsis format {header.get('format_version')}"
            )
        # view_meta is absent in files written before it existed:
        # default to empty dicts so those synopses still load.
        metas = header.get("view_meta") or [{}] * len(header["view_attrs"])
        views = [
            MarginalTable(tuple(attrs), archive[f"view_{i}"], dict(meta))
            for i, (attrs, meta) in enumerate(
                zip(header["view_attrs"], metas)
            )
        ]
    return PriViewSynopsis(
        design=CoveringDesign.from_text(header["design"]),
        views=views,
        epsilon=float(header["epsilon"]),
        num_attributes=int(header["num_attributes"]),
        metadata=header.get("metadata", {}),
    )
