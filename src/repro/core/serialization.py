"""Persisting a PriView synopsis.

The synopsis *is* the published artifact: once written to disk it can
be shipped to analysts, who reconstruct marginals without any access
to the private data (or to this library's fitting code paths).

Integrity
---------
``save_synopsis`` records a sha256 digest of the payload (every view's
attribute set and counts) in the header; ``load_synopsis`` recomputes
and compares it, raising :class:`~repro.exceptions.SynopsisIntegrityError`
on mismatch — so a flipped bit anywhere in the arrays is caught even
for loose ``.npz`` files outside the :mod:`repro.store` registry (which
additionally checksums whole files).  Undecodable files (truncation,
zip/zlib corruption) surface as the same typed error instead of a
``BadZipFile``/``KeyError`` deep in parsing.

Compatibility
-------------
``format_version`` is bumped on changes to the on-disk layout; the
loader accepts every version up to :data:`FORMAT_VERSION` (fields
added later simply default) and raises a clear
:class:`~repro.exceptions.SynopsisFormatError` for files written by a
*newer* library version.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import zipfile
import zlib

import numpy as np

from repro.core.synopsis import PriViewSynopsis
from repro.covering.design import CoveringDesign
from repro.exceptions import (
    DatasetError,
    ReproError,
    SynopsisFormatError,
    SynopsisIntegrityError,
)
from repro.marginals.domain import Domain
from repro.marginals.table import MarginalTable

#: bumped on changes to the on-disk layout; the loader reads any
#: version up to this one (v1 files simply lack ``payload_sha256``,
#: v2 files lack ``kind``/``domain``/``view_arities`` and keep their
#: views-only digest)
FORMAT_VERSION = 3

#: oldest version the loader still understands
MIN_FORMAT_VERSION = 1


def jsonable(obj):
    """Recursively coerce ``obj`` into plain JSON-serialisable types.

    numpy scalars become Python scalars, arrays become lists, mapping
    keys become strings; anything unrecognised falls back to ``str``.
    Used for the free-form ``meta``/``metadata`` dicts the pipeline
    attaches to tables (solver telemetry and the like).
    """
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return str(obj)


def payload_digest(views, domain=None, kind: str = "priview") -> str:
    """sha256 over every view's attribute set (and arities) and counts.

    This is the digest ``save_synopsis`` records and ``load_synopsis``
    verifies; it is independent of zip container details, so the same
    views always hash the same regardless of compression.  The domain
    schema (when present) and the synopsis kind are covered too, so a
    flipped bit in the serialized schema fails verification rather
    than silently degrading to a schema-less load.  With the default
    arguments the digest of binary views is byte-identical to the
    v1/v2 formula, which is how pre-v3 files stay verifiable.
    """
    digest = hashlib.sha256()
    if kind != "priview":
        digest.update(f"kind:{kind}\n".encode())
    if domain is not None:
        schema = json.dumps(domain.to_json(), sort_keys=True)
        digest.update(f"domain:{schema}\n".encode())
    for view in views:
        digest.update(repr(tuple(int(a) for a in view.attrs)).encode())
        arities = getattr(view, "arities", None)
        if arities is not None:
            digest.update(repr(tuple(int(b) for b in arities)).encode())
        digest.update(
            np.ascontiguousarray(view.counts, dtype=np.float64).tobytes()
        )
    return digest.hexdigest()


def save_synopsis(synopsis, path: str | os.PathLike) -> pathlib.Path:
    """Write a synopsis to ``path`` (compressed .npz).

    Accepts a binary :class:`PriViewSynopsis` or a
    :class:`~repro.categorical.priview.CategoricalSynopsis`; the
    header's ``kind`` field records which, and the optional ``domain``
    schema (covered by the payload digest) rides along for both.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    domain = getattr(synopsis, "domain", None)
    kind = "priview" if hasattr(synopsis, "design") else "categorical"
    header = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "epsilon": synopsis.epsilon,
        "num_attributes": synopsis.num_attributes,
        "view_attrs": [list(v.attrs) for v in synopsis.views],
        "view_meta": [jsonable(v.meta) for v in synopsis.views],
        "metadata": jsonable(synopsis.metadata),
        "domain": None if domain is None else domain.to_json(),
        "payload_sha256": payload_digest(synopsis.views, domain, kind),
    }
    if kind == "priview":
        header["design"] = synopsis.design.to_text()
    else:
        header["arities"] = [int(b) for b in synopsis.arities]
        header["view_arities"] = [
            [int(b) for b in v.arities] for v in synopsis.views
        ]
    arrays = {
        f"view_{i}": view.counts for i, view in enumerate(synopsis.views)
    }
    np.savez_compressed(path, header=json.dumps(header), **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def _check_format_version(header: dict, path: pathlib.Path) -> int:
    version = header.get("format_version")
    if not isinstance(version, int):
        raise SynopsisIntegrityError(
            f"corrupt synopsis {path}: missing/invalid format_version "
            f"{version!r}"
        )
    if version > FORMAT_VERSION:
        raise SynopsisFormatError(
            f"synopsis {path} uses format_version {version}, but this "
            f"library reads at most {FORMAT_VERSION} — it was written "
            "by a newer repro release; upgrade to load it"
        )
    if version < MIN_FORMAT_VERSION:
        raise SynopsisFormatError(
            f"synopsis {path} uses retired format_version {version} "
            f"(oldest supported: {MIN_FORMAT_VERSION})"
        )
    return version


def _parse_domain(header: dict, path: pathlib.Path) -> Domain | None:
    """Domain schema from the header, or None; malformed schemas are
    an integrity failure, never a silent schema-less fallback."""
    blob = header.get("domain")
    if blob is None:
        return None
    try:
        return Domain.from_json(blob)
    except (ReproError, TypeError, KeyError, ValueError) as exc:
        raise SynopsisIntegrityError(
            f"corrupt synopsis {path}: undecodable domain schema: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def load_synopsis(path: str | os.PathLike, verify: bool = True):
    """Load a synopsis written by :func:`save_synopsis`.

    Returns a :class:`PriViewSynopsis` or — for files whose header
    says ``kind: categorical`` — a
    :class:`~repro.categorical.priview.CategoricalSynopsis`.  Raises
    :class:`~repro.exceptions.SynopsisFormatError` for files from a
    newer library, and
    :class:`~repro.exceptions.SynopsisIntegrityError` when the file
    does not decode or (with ``verify``, the default) the recorded
    payload sha256 does not match the header + arrays read back.
    """
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise DatasetError(f"missing synopsis file {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"]))
            version = _check_format_version(header, path)
            kind = header.get("kind", "priview")
            domain = _parse_domain(header, path)
            # view_meta is absent in files written before it existed:
            # default to empty dicts so those synopses still load.
            metas = header.get("view_meta") or [{}] * len(header["view_attrs"])
            counts = [
                archive[f"view_{i}"]
                for i in range(len(header["view_attrs"]))
            ]
        if kind == "categorical":
            # Imported lazily: repro.categorical itself imports the
            # core at module level, so the reverse edge must not exist
            # at import time.
            from repro.categorical.priview import CategoricalSynopsis
            from repro.categorical.table import CategoricalMarginalTable

            views = [
                CategoricalMarginalTable(
                    tuple(attrs), tuple(arities), cells, dict(meta)
                )
                for attrs, arities, cells, meta in zip(
                    header["view_attrs"],
                    header["view_arities"],
                    counts,
                    metas,
                )
            ]
            synopsis = CategoricalSynopsis(
                views=views,
                arities=tuple(header["arities"]),
                epsilon=float(header["epsilon"]),
                metadata=header.get("metadata", {}),
                domain=domain,
            )
        elif kind == "priview":
            views = [
                MarginalTable(tuple(attrs), cells, dict(meta))
                for attrs, cells, meta in zip(
                    header["view_attrs"], counts, metas
                )
            ]
            synopsis = PriViewSynopsis(
                design=CoveringDesign.from_text(header["design"]),
                views=views,
                epsilon=float(header["epsilon"]),
                num_attributes=int(header["num_attributes"]),
                metadata=header.get("metadata", {}),
                domain=domain,
            )
        else:
            raise SynopsisIntegrityError(
                f"corrupt synopsis {path}: unknown synopsis kind {kind!r}"
            )
    except ReproError:
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        json.JSONDecodeError,
        KeyError,
        ValueError,
        OSError,
        EOFError,
    ) as exc:
        raise SynopsisIntegrityError(
            f"corrupt synopsis {path}: {type(exc).__name__}: {exc}"
        ) from exc
    expected = header.get("payload_sha256")
    if verify and expected is not None:
        if version >= 3:
            actual = payload_digest(synopsis.views, domain, kind)
        else:
            actual = payload_digest(synopsis.views)
        if actual != expected:
            raise SynopsisIntegrityError(
                f"synopsis {path} failed its integrity check: payload "
                f"sha256 {actual} != recorded {expected}"
            )
    return synopsis
