"""Event normalisation for the streaming ingestion layer.

An *event* is one record of the evolving dataset: the set of binary
attributes ("items", transaction-style — the same shape
:meth:`~repro.marginals.dataset.BinaryDataset.from_transactions`
consumes) plus an optional event time.  Producers hand the ingestor
any of:

* a bare iterable of item ids — ``[0, 3, 5]`` — untimed;
* a ``(items, time)`` pair — ``([0, 3, 5], 17.25)``;
* a mapping — ``{"items": [0, 3, 5], "ts": 17.25}`` (``"time"`` and
  ``"event_time"`` are accepted aliases for ``"ts"``);
* JSON lines of either of the first two shapes via
  :func:`read_jsonl_events`.

Item ids outside ``range(num_attributes)`` are ignored downstream
(the paper's top-K preprocessing convention), and an item repeated
inside one event still sets a single 1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.exceptions import ReproError


class StreamError(ReproError):
    """Malformed events, windows or stream configuration."""


@dataclass(frozen=True)
class Event:
    """One normalised stream record."""

    items: tuple[int, ...]
    time: float | None = None


_TIME_KEYS = ("ts", "time", "event_time")


def as_event(obj) -> Event:
    """Normalise any accepted producer shape into an :class:`Event`."""
    if isinstance(obj, Event):
        return obj
    if isinstance(obj, dict):
        if "items" not in obj:
            raise StreamError(f"event object needs an 'items' key: {obj!r}")
        time = None
        for key in _TIME_KEYS:
            if obj.get(key) is not None:
                time = float(obj[key])
                break
        return Event(_as_items(obj["items"]), time)
    if (
        isinstance(obj, tuple)
        and len(obj) == 2
        and not isinstance(obj[1], (list, tuple, set, frozenset))
        and (obj[1] is None or isinstance(obj[1], (int, float)))
        and isinstance(obj[0], (list, tuple, set, frozenset))
    ):
        items, time = obj
        return Event(_as_items(items), None if time is None else float(time))
    return Event(_as_items(obj), None)


def _as_items(items) -> tuple[int, ...]:
    try:
        return tuple(int(item) for item in items)
    except (TypeError, ValueError) as exc:
        raise StreamError(
            f"event items must be an iterable of integers, got {items!r}"
        ) from exc


def iter_events(source):
    """Yield normalised :class:`Event` objects from any producer."""
    for obj in source:
        yield as_event(obj)


def read_jsonl_events(path):
    """Yield events from a JSON-lines file, one event per line.

    Each line is a JSON array of item ids or an object with ``items``
    (+ optional ``ts``/``time``/``event_time``).  Blank lines are
    skipped; malformed lines raise :class:`StreamError` with the line
    number, since silently dropping records would bias every window.
    """
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StreamError(
                    f"{path}:{lineno}: invalid JSON event: {exc}"
                ) from exc
            yield as_event(blob)
