"""Per-window privacy-budget schedules.

Disjoint tumbling windows compose **in parallel**: each window's
release spends its epsilon against a different slice of the data, so
the stream as a whole costs the *maximum* per-window epsilon, not the
sum.  A :class:`BudgetSchedule` fixes the per-window epsilon up front
and exposes the parallel-composition total (:attr:`configured`) the
scheduler promises to the ledger — ``ledger.check()`` then proves the
promise was honoured exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.stream.events import StreamError


@dataclass(frozen=True)
class BudgetSchedule:
    """Epsilon assignment for a stream of disjoint windows.

    Parameters
    ----------
    epsilon_per_window:
        The epsilon every window's release spends.  ``math.inf`` is
        allowed (noise-free releases, used by exactness tests).
    overrides:
        Optional ``{window_index: epsilon}`` exceptions.  The
        parallel-composition total is the max over the base and all
        overrides — note the audit is only *exact* if some released
        window actually spends that max, so overrides above the base
        should be reserved for windows guaranteed to be non-empty.
    """

    epsilon_per_window: float
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epsilon_per_window <= 0:
            raise StreamError(
                f"epsilon_per_window must be positive, got "
                f"{self.epsilon_per_window}"
            )
        for index, epsilon in self.overrides.items():
            if epsilon <= 0:
                raise StreamError(
                    f"override epsilon for window {index} must be "
                    f"positive, got {epsilon}"
                )

    def epsilon_for(self, index: int) -> float:
        """The epsilon window ``index`` may spend."""
        return float(self.overrides.get(index, self.epsilon_per_window))

    @property
    def configured(self) -> float:
        """The stream's total cost under parallel composition (max)."""
        epsilons = [self.epsilon_per_window, *self.overrides.values()]
        finite = [e for e in epsilons if not math.isinf(e)]
        if not finite:
            return math.inf
        return float(max(finite))
