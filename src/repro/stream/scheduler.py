"""The window scheduler: close → fit → publish, under one audit.

:class:`WindowScheduler` drives the full streaming vertical: it pulls
events through a window policy (:mod:`repro.stream.windows`), fits a
DP synopsis on every closed window through the existing
:class:`~repro.core.priview.PriView` mechanism, and auto-publishes
each synopsis to a :class:`~repro.store.registry.SynopsisStore` as the
next version of the stream's dataset name — ``{dataset}@{window}`` in
release terms maps to store version specs (``name@version``), with the
window's bounds/kind/record count recorded in the manifest's
``extra["window"]`` block so serving layers can list and time-slice
windows without touching artifacts.

The whole run executes inside one
``obs.budget_scope(..., composition="parallel")``: every per-window
``PriView.fit`` scope becomes a child of the stream scope, and since
windows partition the records, ``ledger.check()`` proves the run cost
exactly the schedule's per-window epsilon — not the sum over windows.

A store watcher (``EngineRouter(watch=True)`` / ``repro serve
--watch``) picks each published window up live; readers hot-swap to
the newest version with zero dropped requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.stream.schedule import BudgetSchedule
from repro.stream.windows import (
    DEFAULT_CHUNK_RECORDS,
    ClosedWindow,
    iter_windows,
)

#: View width used by the default mechanism factory.
DEFAULT_VIEW_WIDTH = 8
#: Covering strength used by the default mechanism factory.
DEFAULT_STRENGTH = 2


@dataclass(frozen=True)
class WindowRecord:
    """One released window: its metadata and the published version."""

    index: int
    start: float
    end: float
    kind: str
    records: int
    epsilon: float
    version: int
    fit_seconds: float

    @property
    def spec(self) -> str:
        """The version spec a router can lease (``name@version``)."""
        return str(self.version)


class WindowScheduler:
    """Fit-and-publish loop over closed windows.

    Parameters
    ----------
    store:
        The :class:`~repro.store.registry.SynopsisStore` windows are
        published into.
    dataset:
        Store dataset name; every window becomes its next version.
    num_attributes:
        Width ``d`` of the binary domain.
    schedule:
        :class:`~repro.stream.schedule.BudgetSchedule` (or a bare
        float, taken as the per-window epsilon).
    policy:
        A window policy (:class:`~repro.stream.windows
        .CountWindowPolicy` / :class:`TimeWindowPolicy`).
    mechanism_factory:
        ``f(epsilon, window) -> mechanism`` with a
        ``fit(dataset) -> synopsis`` method.  The default builds a
        :class:`PriView` with an **explicit** covering design (chosen
        once, reused across windows) so each window's ledger spend is
        exactly its epsilon — automatic design selection would add the
        noisy-record-count sliver per window and shift the parallel
        audit.  Custom factories must likewise spend exactly the
        epsilon they are handed, or the strict audit will (correctly)
        fail.
    keep_last:
        When set, prune the dataset to its newest ``keep_last``
        versions after each publish (pinned versions always survive).
    seed:
        Base seed; window ``i`` fits with ``seed + i`` so runs are
        reproducible yet windows draw independent noise.
    """

    def __init__(
        self,
        store,
        dataset: str,
        num_attributes: int,
        schedule,
        policy,
        *,
        mechanism_factory=None,
        keep_last: int | None = None,
        seed: int | None = 0,
        view_width: int = DEFAULT_VIEW_WIDTH,
        strength: int = DEFAULT_STRENGTH,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        scope_name: str = "stream.windows",
    ):
        if not isinstance(schedule, BudgetSchedule):
            schedule = BudgetSchedule(float(schedule))
        self.store = store
        self.dataset = dataset
        self.num_attributes = int(num_attributes)
        self.schedule = schedule
        self.policy = policy
        self.keep_last = keep_last
        self.seed = seed
        self.chunk_records = chunk_records
        self.scope_name = scope_name
        if mechanism_factory is None:
            width = min(view_width, self.num_attributes)
            strength = min(strength, width)
            design = best_design(self.num_attributes, width, strength)
            mechanism_factory = self._default_factory(design)
        self.mechanism_factory = mechanism_factory

    def _default_factory(self, design):
        def factory(epsilon: float, window: ClosedWindow):
            seed = None if self.seed is None else self.seed + window.index
            # Shards arrive bit-packed; keep the packed fast path on.
            return PriView(epsilon, design=design, seed=seed, packed=True)

        return factory

    # ------------------------------------------------------------------
    def release(self, window: ClosedWindow) -> WindowRecord:
        """Fit and publish one closed window; returns its record."""
        epsilon = self.schedule.epsilon_for(window.index)
        mechanism = self.mechanism_factory(epsilon, window)
        start = perf_counter()
        with obs.span("stream.release"):
            synopsis = mechanism.fit(window.shard)
            fit_seconds = perf_counter() - start
            meta = window.meta()
            meta["epsilon"] = epsilon
            late = getattr(self.policy, "late_events", 0)
            if late:
                meta["late_events_so_far"] = late
            info = self.store.publish(
                self.dataset,
                synopsis,
                fit_seconds=fit_seconds,
                extra={"window": meta},
            )
            if self.keep_last is not None:
                self.store.prune(self.dataset, keep_last=self.keep_last)
        obs.incr("stream.publish")
        obs.incr("stream.records", window.num_records)
        obs.observe(
            "stream.window.fit_seconds",
            fit_seconds,
            {"dataset": self.dataset},
        )
        return WindowRecord(
            index=window.index,
            start=window.start,
            end=window.end,
            kind=window.kind,
            records=window.num_records,
            epsilon=epsilon,
            version=info.version,
            fit_seconds=fit_seconds,
        )

    def run(self, events, on_release=None) -> list[WindowRecord]:
        """Consume ``events`` to exhaustion, releasing every window.

        The loop runs inside a strict parallel-composition budget
        scope configured at ``schedule.configured``; with an active
        obs session, ``sess.ledger.check()`` afterwards proves the
        stream spent exactly that.  ``on_release`` (if given) is
        called with each :class:`WindowRecord` as it is published —
        the hook live dashboards / tests use to observe progress.
        """
        released: list[WindowRecord] = []
        with obs.span("stream.run"), obs.budget_scope(
            self.scope_name,
            self.schedule.configured,
            composition="parallel",
        ):
            for window in iter_windows(
                events,
                self.policy,
                self.num_attributes,
                name=self.dataset,
                chunk_records=self.chunk_records,
            ):
                record = self.release(window)
                released.append(record)
                if on_release is not None:
                    on_release(record)
        return released
