"""Time-sliced marginal queries over published stream windows.

Every window the scheduler releases is one store version of the stream
dataset carrying the window's bounds in ``extra["window"]``.  This
module answers marginals against those slices through the ordinary
serving stack — each per-window answer leases the pinned version
(``name@version``) from an :class:`~repro.serve.multiplex
.EngineRouter`, so it flows through the full planner (covered /
derived / solved) and per-engine cache.

The **union** of the last ``k`` windows is the record-weighted merge
of the per-window answers: marginal tables are *count* tables over
disjoint record sets, so the union table is simply their cell-wise
sum (each window contributes proportionally to its record count, with
no renormalisation step).  Accuracy caveat: noise adds across the
union — ``k`` merged windows carry ~``sqrt(k)``x the per-window noise
standard deviation, while the signal grows with the union's record
count; see ``docs/STREAMING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro import obs
from repro.exceptions import QueryError
from repro.marginals.table import MarginalTable
from repro.serve.engine import QueryAnswer


def list_windows(store, name: str) -> list[dict]:
    """Released windows of ``name``, oldest first.

    One dict per store version that carries window metadata, merging
    the manifest's ``extra["window"]`` block with the version number
    and epsilon.  Versions published outside the stream scheduler (no
    window block) are skipped.
    """
    entry = store.manifest().datasets.get(name)
    if entry is None:
        return []
    out = []
    for info in entry.versions:
        window = info.extra.get("window") if info.extra else None
        if not isinstance(window, dict):
            continue
        row = dict(window)
        row["version"] = info.version
        row["spec"] = info.spec
        if "epsilon" not in row:
            row["epsilon"] = info.epsilon
        out.append(row)
    return out


def _select(rows: list[dict], windows=None, last: int | None = None):
    """Newest version per window index, filtered to the requested slice."""
    by_index: dict[int, dict] = {}
    for row in rows:  # rows are version-ordered; later wins
        by_index[int(row["index"])] = row
    ordered = [by_index[i] for i in sorted(by_index)]
    if windows is not None:
        wanted = [int(w) for w in windows]
        missing = [w for w in wanted if w not in by_index]
        if missing:
            raise QueryError(f"unknown window index(es): {missing}")
        return [by_index[w] for w in wanted]
    if last is not None:
        if last < 1:
            raise QueryError(f"last must be >= 1, got {last}")
        return ordered[-last:]
    return ordered


@dataclass(frozen=True)
class WindowSlice:
    """One window's contribution to a time-sliced query."""

    index: int
    version: int
    start: float
    end: float
    records: int
    epsilon: float | None
    answer: QueryAnswer = field(repr=False)

    def to_json(self) -> dict:
        from repro.serve.protocol import encode_answer

        blob = encode_answer(self.answer)
        blob["window"] = {
            "index": self.index,
            "version": self.version,
            "start": self.start,
            "end": self.end,
            "records": self.records,
            "epsilon": self.epsilon,
        }
        return blob


@dataclass(frozen=True)
class WindowsAnswer:
    """Per-window answers plus their record-weighted union."""

    dataset: str
    attrs: tuple[int, ...]
    method: str
    slices: list[WindowSlice]
    union: MarginalTable = field(repr=False)

    def to_json(self) -> dict:
        return {
            "dataset": self.dataset,
            "attrs": list(self.attrs),
            "method": self.method,
            "windows": [s.to_json() for s in self.slices],
            "union": {
                "counts": self.union.counts.tolist(),
                "total": self.union.total(),
                "records": float(
                    sum(s.records for s in self.slices)
                ),
                "merged": len(self.slices),
            },
        }


def answer_windows(
    router,
    name: str,
    attrs,
    *,
    windows=None,
    last: int | None = None,
    method: str | None = None,
    timeout: float | None = None,
) -> WindowsAnswer:
    """Answer one marginal per selected window, plus their union.

    ``windows`` picks explicit window indices; ``last`` the newest
    ``k`` released windows; neither selects every released window.
    Each slice leases its pinned version through ``router`` — the
    same zero-drop path live serving uses — and the union is the
    cell-wise sum of the per-window count tables.
    """
    start = perf_counter()
    rows = list_windows(router.store, name)
    if not rows:
        raise QueryError(
            f"unknown dataset {name!r} (or it has no released windows)"
        )
    selected = _select(rows, windows=windows, last=last)
    slices: list[WindowSlice] = []
    union_counts = None
    resolved_method = method
    for row in selected:
        with router.lease(f"{name}@{row['version']}") as engine:
            answer = engine.answer(attrs, method=method, timeout=timeout)
        resolved_method = answer.method
        slices.append(
            WindowSlice(
                index=int(row["index"]),
                version=int(row["version"]),
                start=float(row["start"]),
                end=float(row["end"]),
                records=int(row.get("records", 0)),
                epsilon=row.get("epsilon"),
                answer=answer,
            )
        )
        if union_counts is None:
            union_counts = answer.table.counts.copy()
        else:
            union_counts = union_counts + answer.table.counts
    union = MarginalTable(
        slices[0].answer.table.attrs,
        np.asarray(union_counts),
        meta={"windows": [s.index for s in slices]},
    )
    obs.incr("serve.window.requests")
    obs.incr("serve.window.slices", len(slices))
    obs.observe(
        "serve.window.seconds", perf_counter() - start, {"dataset": name}
    )
    return WindowsAnswer(
        dataset=name,
        attrs=slices[0].answer.attrs,
        method=resolved_method,
        slices=slices,
        union=union,
    )
