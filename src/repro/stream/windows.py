"""Window policies and per-window bit-packed shards.

The ingestion driver (:func:`iter_windows`) routes a stream of events
into tumbling windows and yields one :class:`ClosedWindow` — carrying
a bit-sliced :class:`~repro.kernels.packed.PackedDataset` shard — per
closed window, in close order.  Two policies:

* :class:`CountWindowPolicy` — every ``size`` accepted events start a
  new window; window bounds are event-sequence numbers.  Count
  windows can never see a late event.
* :class:`TimeWindowPolicy` — event-time tumbling windows of
  ``width`` seconds, closed by a watermark that trails the maximum
  event time seen by ``lateness`` seconds.  Events older than the
  watermark's closed horizon are *late*: they are counted
  (``stream.late_events``, :attr:`TimeWindowPolicy.late_events`) and
  dropped rather than silently mutating an already-released window —
  a released DP synopsis is immutable, so re-opening it would either
  leak budget or corrupt the ledger's parallel-composition audit.

Shards are packed **incrementally**: events accumulate into a small
row buffer that is bit-packed (:func:`repro.kernels.packed.
pack_columns`) every ``chunk_records`` rows, so a window of any size
streams through a fixed working set and closes into a ready
:class:`PackedDataset` without ever materialising the `(N, d)` uint8
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.kernels.packed import PackedDataset, pack_columns
from repro.stream.events import Event, StreamError, iter_events

#: Rows buffered before an incremental pack.  Must be a multiple of 64
#: so every full block packs to whole words and blocks concatenate
#: without bit shifting; 8192 rows x d=64 is a ~512 KiB working set.
DEFAULT_CHUNK_RECORDS = 8192


class WindowShard:
    """One open window's records, bit-packed incrementally."""

    def __init__(
        self,
        num_attributes: int,
        name: str = "window",
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ):
        if num_attributes < 1:
            raise StreamError(
                f"num_attributes must be >= 1, got {num_attributes}"
            )
        if chunk_records < 64 or chunk_records % 64:
            raise StreamError(
                f"chunk_records must be a positive multiple of 64, "
                f"got {chunk_records}"
            )
        self.num_attributes = int(num_attributes)
        self.name = name
        self._chunk = int(chunk_records)
        self._buffer = np.zeros((self._chunk, num_attributes), dtype=np.uint8)
        self._fill = 0
        self._blocks: list[np.ndarray] = []
        self._records = 0

    @property
    def num_records(self) -> int:
        return self._records

    def add(self, event: Event) -> None:
        """Append one event's row (out-of-range items ignored)."""
        row = self._buffer[self._fill]
        row[:] = 0
        for item in event.items:
            if 0 <= item < self.num_attributes:
                row[item] = 1
        self._fill += 1
        self._records += 1
        if self._fill == self._chunk:
            self._blocks.append(pack_columns(self._buffer))
            self._fill = 0

    def finish(self) -> PackedDataset:
        """Close the shard into a :class:`PackedDataset`."""
        blocks = list(self._blocks)
        if self._fill:
            blocks.append(pack_columns(self._buffer[: self._fill]))
        if blocks:
            words = np.concatenate(blocks, axis=1)
        else:
            words = np.zeros((self.num_attributes, 0), dtype=np.uint64)
        return PackedDataset(words, self._records, name=self.name)


class CountWindowPolicy:
    """Tumbling windows of ``size`` events each."""

    kind = "count"

    def __init__(self, size: int):
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        self.size = int(size)
        self.late_events = 0
        self._seen = 0
        self._closable: list[int] = []

    def route(self, event: Event) -> int | None:
        index = self._seen // self.size
        if self._seen and self._seen % self.size == 0:
            self._closable.append(index - 1)
        self._seen += 1
        return index

    def pending_close(self) -> list[int]:
        closable, self._closable = self._closable, []
        return closable

    def bounds(self, index: int) -> tuple[float, float]:
        """Window bounds in event-sequence coordinates."""
        return float(index * self.size), float((index + 1) * self.size)


class TimeWindowPolicy:
    """Event-time tumbling windows with a trailing watermark.

    Window ``i`` spans ``[origin + i*width, origin + (i+1)*width)`` and
    closes once the watermark — the maximum event time seen minus
    ``lateness`` — passes its end.  Events targeting a closed window
    are dropped and counted in :attr:`late_events`.
    """

    kind = "time"

    def __init__(
        self, width: float, lateness: float = 0.0, origin: float = 0.0
    ):
        if width <= 0:
            raise StreamError(f"window width must be > 0, got {width}")
        if lateness < 0:
            raise StreamError(f"lateness must be >= 0, got {lateness}")
        self.width = float(width)
        self.lateness = float(lateness)
        self.origin = float(origin)
        self.late_events = 0
        self._max_time: float | None = None
        #: Windows strictly below this index are closed.
        self._close_bound = None
        self._closable: list[int] = []

    @property
    def watermark(self) -> float | None:
        if self._max_time is None:
            return None
        return self._max_time - self.lateness

    def route(self, event: Event) -> int | None:
        if event.time is None:
            raise StreamError(
                "time-window policy needs a timestamp on every event "
                "(use dict events with 'ts', or a count policy)"
            )
        index = int(np.floor((event.time - self.origin) / self.width))
        if self._close_bound is not None and index < self._close_bound:
            self.late_events += 1
            obs.incr("stream.late_events")
            return None
        if self._max_time is None or event.time > self._max_time:
            self._max_time = event.time
            watermark = self.watermark
            obs.set_gauge("stream.watermark", watermark)
            bound = int(np.floor((watermark - self.origin) / self.width))
            if self._close_bound is None or bound > self._close_bound:
                start = self._close_bound if self._close_bound is not None else bound
                self._closable.extend(range(start, bound))
                self._close_bound = bound
        return index

    def pending_close(self) -> list[int]:
        closable, self._closable = self._closable, []
        return closable

    def bounds(self, index: int) -> tuple[float, float]:
        return (
            self.origin + index * self.width,
            self.origin + (index + 1) * self.width,
        )


@dataclass(frozen=True)
class ClosedWindow:
    """One closed window, ready to fit: metadata + bit-packed shard."""

    index: int
    start: float
    end: float
    shard: PackedDataset = None
    kind: str = "count"

    @property
    def num_records(self) -> int:
        return self.shard.num_records

    def meta(self) -> dict:
        """The window block recorded in store manifests."""
        return {
            "index": self.index,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "records": self.num_records,
        }


def iter_windows(
    events,
    policy,
    num_attributes: int,
    name: str = "stream",
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
):
    """Route ``events`` through ``policy``; yield closed windows in order.

    Windows that received no events release nothing (they are skipped,
    not yielded as empty shards).  At stream end every still-open
    window is flushed in index order, so a finite stream always
    releases its tail.
    """
    shards: dict[int, WindowShard] = {}

    def close(index: int) -> ClosedWindow | None:
        shard = shards.pop(index, None)
        if shard is None:
            return None
        start, end = policy.bounds(index)
        obs.incr("stream.windows")
        return ClosedWindow(
            index=index,
            start=start,
            end=end,
            shard=shard.finish(),
            kind=policy.kind,
        )

    for event in iter_events(events):
        obs.incr("stream.events")
        index = policy.route(event)
        if index is not None:
            shard = shards.get(index)
            if shard is None:
                shard = shards[index] = WindowShard(
                    num_attributes,
                    name=f"{name}[{index}]",
                    chunk_records=chunk_records,
                )
            shard.add(event)
        for closable in policy.pending_close():
            closed = close(closable)
            if closed is not None:
                yield closed
    for index in sorted(shards):
        closed = close(index)
        if closed is not None:
            yield closed
