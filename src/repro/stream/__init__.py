"""repro.stream: continuous ingestion, windowed DP releases, live serving.

The streaming vertical over the PriView pipeline: events flow into
tumbling windows (:mod:`~repro.stream.windows`), each closed window is
fitted under a per-window epsilon from a :class:`BudgetSchedule` and
auto-published to the synopsis store (:mod:`~repro.stream.scheduler`),
and released windows are queryable per-slice or as last-``k`` unions
through the ordinary serving stack (:mod:`~repro.stream.query`).
Disjoint windows compose in parallel, so the whole stream costs one
window's epsilon — and the budget ledger proves it exactly.
"""

from repro.stream.events import (
    Event,
    StreamError,
    as_event,
    iter_events,
    read_jsonl_events,
)
from repro.stream.query import (
    WindowsAnswer,
    WindowSlice,
    answer_windows,
    list_windows,
)
from repro.stream.schedule import BudgetSchedule
from repro.stream.scheduler import WindowRecord, WindowScheduler
from repro.stream.windows import (
    ClosedWindow,
    CountWindowPolicy,
    TimeWindowPolicy,
    WindowShard,
    iter_windows,
)

__all__ = [
    "BudgetSchedule",
    "ClosedWindow",
    "CountWindowPolicy",
    "Event",
    "StreamError",
    "TimeWindowPolicy",
    "WindowRecord",
    "WindowScheduler",
    "WindowShard",
    "WindowsAnswer",
    "WindowSlice",
    "answer_windows",
    "as_event",
    "iter_events",
    "iter_windows",
    "list_windows",
    "read_jsonl_events",
]
