"""Figure 1: all approaches on MSNBC (d=9), L2 error in log scale.

Methods compared (Section 5.1): PriView with the C_2(6,3) design,
Flat, Direct, Fourier, FourierLP, DataCube, MWEM (T = ceil(4 log d)+2),
the matrix mechanism (expected error from the strategy matrix, as in
the paper), the learning-based approach with gamma in {1/2, 1/4, 1/8}
(Learning1..3) plus its noise-free variant (the paper's green stars),
and the Uniform floor.

Expected shape: PriView ~ Flat ~ DataCube at the bottom; matrix
mechanism between Flat and Direct; Fourier/FourierLP ~ Direct;
Learning far worse than everything (even without noise); MWEM worse
than Flat and Direct, wider at k=2 than k=4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.datacube import DataCubeMethod
from repro.baselines.direct import DirectMethod
from repro.baselines.flat import FlatMethod
from repro.baselines.fourier import FourierLPMethod, FourierMethod
from repro.baselines.learning import LearningMethod
from repro.baselines.matrix_mechanism import expected_per_marginal_ese
from repro.baselines.mwem import MWEMMethod
from repro.baselines.uniform import UniformMethod
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)
from repro.marginals.queries import random_attribute_sets

EPSILONS = (1.0, 0.1)
KS = (2, 3, 4)
GAMMAS = {"Learning1": 0.5, "Learning2": 0.25, "Learning3": 0.125}


def run(
    scale=None,
    seed: int = 0,
    epsilons=EPSILONS,
    ks=KS,
    include_mwem: bool = True,
) -> ExperimentResult:
    """Reproduce Figure 1.  Returns one MethodResult per plotted cell."""
    scale = get_scale(scale)
    dataset = experiment_dataset("msnbc", scale)
    d = dataset.num_attributes
    design = best_design(d, 6, 2)  # the paper's C_2(6,3)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        "figure1",
        "All approaches on MSNBC (d=9), normalized L2 error",
        context={
            "dataset": dataset.name,
            "N": dataset.num_records,
            "design": design.notation,
            "scale": scale.name,
        },
    )

    for epsilon in epsilons:
        for k in ks:
            queries = random_attribute_sets(d, k, scale.num_queries, rng)

            def add(name: str, factory) -> None:
                candle = evaluate_mechanism(
                    factory, dataset, queries, scale.num_runs
                )
                result.add(
                    MethodResult(name, k, epsilon, "normalized_l2", candle)
                )

            add(
                "PriView",
                lambda run_idx: PriView(
                    epsilon, design=design, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "Flat",
                lambda run_idx: FlatMethod(
                    epsilon, nonnegativity="global", seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "Direct",
                lambda run_idx: DirectMethod(
                    epsilon, k, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "Fourier",
                lambda run_idx: FourierMethod(
                    epsilon, k, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "FourierLP",
                lambda run_idx: FourierLPMethod(
                    epsilon, k, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "DataCube",
                lambda run_idx: DataCubeMethod(
                    epsilon, k, seed=seed + run_idx
                ).fit(dataset),
            )
            if include_mwem:
                replays = 100 if scale.name == "paper" else 10
                add(
                    "MWEM",
                    lambda run_idx: MWEMMethod(
                        epsilon, k, replays=replays, seed=seed + run_idx
                    ).fit(dataset),
                )
            for name, gamma in GAMMAS.items():
                add(
                    name,
                    lambda run_idx, g=gamma: LearningMethod(
                        epsilon, k, gamma=g, seed=seed + run_idx
                    ).fit(dataset),
                )
            add(
                "Learning-noisefree",
                lambda run_idx: LearningMethod(
                    float("inf"), k, gamma=0.5, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "Uniform",
                lambda run_idx: UniformMethod(
                    epsilon, seed=seed + run_idx
                ).fit(dataset),
            )
            # Matrix mechanism: the paper plots the expected error from
            # the strategy matrix rather than sampled runs.
            ese = expected_per_marginal_ese(d, k, epsilon, strategy="eigen")
            result.add(
                MethodResult(
                    "MatrixMechanism",
                    k,
                    epsilon,
                    "normalized_l2",
                    candle=None,
                    expected=min(1.0, math.sqrt(ese) / dataset.num_records),
                    note="expected, eigen-design strategy",
                )
            )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
