"""Experiment scales: quick CI runs vs the paper's full protocol."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ReproError


@dataclass(frozen=True)
class ExperimentScale:
    """Protocol size knobs shared by all experiment drivers.

    Attributes
    ----------
    name:
        Scale label.
    num_queries:
        Random k-attribute sets sampled per (k, epsilon) cell (the
        paper uses 200).
    num_runs:
        Noise re-draws averaged per query (the paper uses 5).
    max_records:
        Cap on dataset size; ``None`` keeps the full published N.
    """

    name: str
    num_queries: int
    num_runs: int
    max_records: int | None


SCALES = {
    "quick": ExperimentScale("quick", num_queries=8, num_runs=1, max_records=60_000),
    "medium": ExperimentScale(
        "medium", num_queries=40, num_runs=2, max_records=300_000
    ),
    "paper": ExperimentScale("paper", num_queries=200, num_runs=5, max_records=None),
}

#: Environment variable overriding the default scale everywhere.
SCALE_ENV_VAR = "REPRO_SCALE"


def get_scale(scale: str | ExperimentScale | None = None) -> ExperimentScale:
    """Resolve a scale argument (None -> $REPRO_SCALE -> quick)."""
    if isinstance(scale, ExperimentScale):
        return scale
    name = scale or os.environ.get(SCALE_ENV_VAR, "quick")
    if name not in SCALES:
        raise ReproError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        )
    return SCALES[name]
