"""Experiment registry: id -> driver, with a uniform run interface."""

from __future__ import annotations

from typing import Callable

from repro import obs
from repro.exceptions import ReproError
from repro.experiments import (
    categorical_ext,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    tables,
    timing,
)


def _run_timing(scale=None, seed: int = 0) -> str:
    return timing.render(timing.run(scale=scale, seed=seed))


def _render_any(outcome, chart: bool = False) -> str:
    from repro.experiments.chart import render_chart
    from repro.experiments.runner import ExperimentResult

    if isinstance(outcome, str):
        return outcome
    results = outcome if isinstance(outcome, list) else [outcome]
    blocks = []
    for result in results:
        blocks.append(result.render())
        if chart and isinstance(result, ExperimentResult):
            blocks.append(render_chart(result))
    return "\n\n".join(blocks)


EXPERIMENTS: dict[str, Callable] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "tables": tables.run,
    "timing": _run_timing,
    "categorical": categorical_ext.run,
}


def run_experiment(
    experiment_id: str, scale=None, seed: int = 0, chart: bool = False
) -> str:
    """Run one experiment and return its rendered report.

    ``chart=True`` appends a log-scale ASCII chart per figure, the
    terminal analogue of the paper's candlestick plots.
    """
    if experiment_id not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        )
    with obs.span(f"experiment.{experiment_id}"):
        outcome = EXPERIMENTS[experiment_id](scale=scale, seed=seed)
    return _render_any(outcome, chart=chart)
