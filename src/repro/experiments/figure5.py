"""Figure 5: MCHAIN — Markov-chain datasets of order 1..7 (d=64).

PriView with the exact C_2(8,72) design (the affine plane AG(2,8)),
eps=1, queried on *consecutive* attribute windows so the queries
exercise the chain dependencies (Section 5.5).

Expected shape: accurate everywhere despite covering only pairs, with
the order-3 chain the worst (4 highly correlated attributes but only
pairs covered) and higher orders improving again as the per-attribute
dependence weakens.
"""

from __future__ import annotations

import numpy as np

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)
from repro.marginals.queries import consecutive_attribute_sets

EPSILON = 1.0
KS = (4, 6, 8)
ORDERS = (1, 2, 3, 4, 5, 6, 7)


def run(
    scale=None,
    seed: int = 0,
    orders=ORDERS,
    ks=KS,
    epsilon: float = EPSILON,
) -> ExperimentResult:
    """Reproduce Figure 5.  Method label = mc_<order>.

    ``epsilon=float('inf')`` isolates the coverage error, which is what
    distinguishes the Markov orders (the order-3 bump); at reduced
    quick-scale N the Laplace noise otherwise dominates it.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    design = best_design(64, 8, 2)  # C_2(8,72): the affine plane AG(2,8)
    result = ExperimentResult(
        "figure5",
        "PriView on Markov-chain datasets (d=64, consecutive queries)",
        context={
            "design": design.notation,
            "epsilon": epsilon,
            "scale": scale.name,
        },
    )
    for order in orders:
        dataset = experiment_dataset(f"mchain_{order}", scale)
        for k in ks:
            windows = consecutive_attribute_sets(64, k)
            if len(windows) > scale.num_queries:
                picks = rng.choice(
                    len(windows), size=scale.num_queries, replace=False
                )
                queries = [windows[i] for i in sorted(picks)]
            else:
                queries = windows
            candle = evaluate_mechanism(
                lambda run_idx: PriView(
                    epsilon, design=design, seed=seed + run_idx
                ).fit(dataset),
                dataset,
                queries,
                scale.num_runs,
            )
            result.add(
                MethodResult(f"mc_{order}", k, epsilon, "normalized_l2", candle)
            )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
