"""Figure 2: PriView vs Flat/Direct/Fourier on Kosarak and AOL.

The paper's headline figure: on d=32 and d=45 only Direct and Fourier
still run, Flat is plotted analytically (expected error, capped at 1),
and PriView — with designs C_2(8,20)/C_3(8,106) on Kosarak and
C_2(8,42)/C_3(8,326) on AOL — beats everything by 2-3 orders of
magnitude.  Both the normalized L2 error and the Jensen-Shannon
divergence are reported, plus the noise-free PriView variants C_t^*.

Expected shape: PriView at ~1e-3; Direct/Fourier at or above the
Uniform floor except Direct at (Kosarak, eps=1, k=4); Flat capped at 1
except an order-of-magnitude dip at (d=32, eps=1).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.direct import DirectMethod
from repro.baselines.flat import flat_expected_normalized_l2
from repro.baselines.fourier import FourierMethod
from repro.baselines.uniform import UniformMethod
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism_metrics,
)
from repro.marginals.queries import random_attribute_sets

EPSILONS = (1.0, 0.1)
KS = (4, 6, 8)
DATASETS = ("kosarak", "aol")
#: the strengths whose designs each dataset is evaluated with
STRENGTHS = (2, 3)


def run(
    scale=None,
    seed: int = 0,
    datasets=DATASETS,
    epsilons=EPSILONS,
    ks=KS,
    metrics=("normalized_l2", "jensen_shannon"),
) -> list[ExperimentResult]:
    """Reproduce Figure 2; one ExperimentResult per dataset."""
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    results = []
    for name in datasets:
        dataset = experiment_dataset(name, scale)
        d = dataset.num_attributes
        designs = [best_design(d, 8, t) for t in STRENGTHS]
        result = ExperimentResult(
            "figure2",
            f"PriView vs Flat/Direct/Fourier on {dataset.name} (d={d})",
            context={
                "dataset": dataset.name,
                "N": dataset.num_records,
                "designs": ", ".join(dd.notation for dd in designs),
                "scale": scale.name,
            },
        )
        for epsilon in epsilons:
            for k in ks:
                queries = random_attribute_sets(d, k, scale.num_queries, rng)

                def add(method_name: str, factory, runs=None) -> None:
                    candles = evaluate_mechanism_metrics(
                        factory,
                        dataset,
                        queries,
                        runs or scale.num_runs,
                        metrics=tuple(metrics),
                    )
                    for metric, candle in candles.items():
                        result.add(
                            MethodResult(method_name, k, epsilon, metric, candle)
                        )

                for design in designs:
                    add(
                        f"PriView-{design.notation}",
                        lambda run_idx, dd=design: PriView(
                            epsilon, design=dd, seed=seed + run_idx
                        ).fit(dataset),
                    )
                # noise-free coverage error: the paper's C_t^* series
                for design in designs:
                    add(
                        f"PriView*-{design.notation}",
                        lambda run_idx, dd=design: PriView(
                            float("inf"), design=dd, seed=seed + run_idx
                        ).fit(dataset),
                        runs=1,
                    )
                add(
                    "Direct",
                    lambda run_idx: DirectMethod(
                        epsilon, k, seed=seed + run_idx
                    ).fit(dataset),
                )
                add(
                    "Fourier",
                    lambda run_idx: FourierMethod(
                        epsilon, k, seed=seed + run_idx
                    ).fit(dataset),
                )
                add(
                    "Uniform",
                    lambda run_idx: UniformMethod(
                        epsilon, seed=seed + run_idx
                    ).fit(dataset),
                )
                result.add(
                    MethodResult(
                        "Flat",
                        k,
                        epsilon,
                        "normalized_l2",
                        candle=None,
                        expected=flat_expected_normalized_l2(
                            d, epsilon, dataset.num_records
                        ),
                        note="expected, capped at 1",
                    )
                )
        results.append(result)
    return results


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
