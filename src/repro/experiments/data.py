"""Shared dataset acquisition for the experiment drivers.

Caches per (name, scale) so a figure sweeping k and epsilon pays the
generation cost once.  Real files are used when ``REPRO_DATA_DIR`` is
set (see :mod:`repro.datasets.loaders`); otherwise the synthetic
stand-ins are generated with a fixed seed so figures are reproducible.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.datasets.loaders import load_or_synthesize
from repro.datasets.mchain import markov_chain_dataset
from repro.experiments.config import ExperimentScale
from repro.marginals.dataset import BinaryDataset

#: Fixed generation seed: experiments vary mechanism noise, not data.
DATA_SEED = 20140622


@functools.lru_cache(maxsize=16)
def _cached_clickstream(name: str, max_records: int | None) -> BinaryDataset:
    rng = np.random.default_rng(DATA_SEED)
    return load_or_synthesize(name, num_records=max_records, rng=rng)


@functools.lru_cache(maxsize=16)
def _cached_mchain(order: int, max_records: int | None) -> BinaryDataset:
    rng = np.random.default_rng(DATA_SEED + order)
    num_records = max_records or 1_000_000
    return markov_chain_dataset(order, num_records, rng=rng)


def experiment_dataset(name: str, scale: ExperimentScale) -> BinaryDataset:
    """``"kosarak"`` / ``"aol"`` / ``"msnbc"`` / ``"mchain_<order>"``."""
    if name.startswith("mchain_"):
        order = int(name.split("_", 1)[1])
        return _cached_mchain(order, scale.max_records)
    return _cached_clickstream(name, scale.max_records)
