"""Generic evaluation loop and result containers.

The paper's protocol (Section 5, Evaluation Methodology): for each
``k``, sample query attribute sets; for each query, average the error
over several independent runs of the mechanism; plot the distribution
of per-query average errors as a candlestick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.baselines.base import MarginalSource
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable
from repro.metrics.candlestick import Candlestick, candlestick
from repro.metrics.divergence import jensen_shannon
from repro.metrics.l2 import normalized_l2_error

#: metric name -> fn(estimate, truth, num_records) -> float
METRICS: dict[str, Callable[[MarginalTable, MarginalTable, float], float]] = {
    "normalized_l2": normalized_l2_error,
    "jensen_shannon": lambda est, tru, n: jensen_shannon(est, tru),
}


@dataclass
class MethodResult:
    """One candlestick: a (method, k, epsilon, metric) cell of a figure."""

    method: str
    k: int
    epsilon: float
    metric: str
    candle: Candlestick | None
    expected: float | None = None  # analytic value, when that is what
    # the paper plots (Flat at d>=32, the matrix mechanism)
    note: str = ""

    def headline(self) -> float:
        """The single number to compare against the paper's plots."""
        if self.candle is not None:
            return self.candle.mean
        return float(self.expected)


@dataclass
class ExperimentResult:
    """All rows of one reproduced figure/table."""

    experiment_id: str
    title: str
    rows: list[MethodResult] = field(default_factory=list)
    context: dict = field(default_factory=dict)

    def add(self, row: MethodResult) -> None:
        self.rows.append(row)

    def row(self, method: str, k: int, epsilon: float, metric: str | None = None):
        """Look up one cell (first match)."""
        for r in self.rows:
            if (
                r.method == method
                and r.k == k
                and r.epsilon == epsilon
                and (metric is None or r.metric == metric)
            ):
                return r
        raise KeyError((method, k, epsilon, metric))

    def render(self) -> str:
        """Plain-text table in the paper's orientation."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.context:
            lines.append(
                "   " + ", ".join(f"{k}={v}" for k, v in self.context.items())
            )
        header = (
            f"{'method':<22} {'k':>2} {'eps':>5} {'metric':<14} "
            f"{'mean':>10} {'median':>10} {'p95':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rows:
            if r.candle is not None:
                mean, median, p95 = r.candle.mean, r.candle.median, r.candle.p95
            else:
                mean = median = p95 = float(r.expected)
            note = f"  ({r.note})" if r.note else ""
            lines.append(
                f"{r.method:<22} {r.k:>2} {r.epsilon:>5g} {r.metric:<14} "
                f"{mean:>10.3e} {median:>10.3e} {p95:>10.3e}{note}"
            )
        return "\n".join(lines)


def evaluate_mechanism(
    make_mechanism: Callable[[int], MarginalSource],
    dataset: BinaryDataset,
    queries: list[tuple[int, ...]],
    num_runs: int,
    metric: str = "normalized_l2",
) -> Candlestick:
    """Run the paper's protocol for one mechanism.

    Parameters
    ----------
    make_mechanism:
        Called once per run with the run index; must return a fitted
        :class:`~repro.baselines.base.MarginalSource` — any object
        exposing ``marginal(attrs) -> MarginalTable`` (a
        :class:`~repro.baselines.base.MarginalReleaseMechanism` after
        ``fit``, a :class:`~repro.core.synopsis.PriViewSynopsis`, or
        any third-party :class:`~repro.baselines.base.Mechanism`'s
        fit result); no isinstance checks are performed.
    dataset:
        Ground truth source.
    queries:
        Attribute sets to evaluate.
    num_runs:
        Independent noise draws; per-query errors are averaged across
        runs before the candlestick is formed.
    metric:
        Key into :data:`METRICS`.
    """
    return evaluate_mechanism_metrics(
        make_mechanism, dataset, queries, num_runs, metrics=(metric,)
    )[metric]


def evaluate_mechanism_metrics(
    make_mechanism: Callable[[int], MarginalSource],
    dataset: BinaryDataset,
    queries: list[tuple[int, ...]],
    num_runs: int,
    metrics: tuple[str, ...] = ("normalized_l2",),
) -> dict[str, Candlestick]:
    """Like :func:`evaluate_mechanism` but scoring several metrics per
    reconstructed marginal, fitting each mechanism only once per run."""
    n = float(dataset.num_records)
    truths = [dataset.marginal(q) for q in queries]
    per_query = {m: np.zeros(len(queries)) for m in metrics}
    for run in range(num_runs):
        with obs.span("evaluate.fit"):
            mechanism = make_mechanism(run)
        with obs.span("evaluate.queries"):
            for qi, (attrs, truth) in enumerate(zip(queries, truths)):
                estimate = mechanism.marginal(attrs)
                for m in metrics:
                    per_query[m][qi] += METRICS[m](estimate, truth, n)
            obs.incr("evaluate.queries_scored", len(queries))
    return {
        m: candlestick(values / num_runs) for m, values in per_query.items()
    }
