"""Experiment drivers reproducing every table and figure of the paper.

Each ``figureN``/``tables``/``timing`` module exposes a ``run()``
returning :class:`~repro.experiments.runner.ExperimentResult` objects
whose ``render()`` prints the same rows/series the paper reports.  The
``scale`` argument selects the protocol size:

* ``"quick"`` — small datasets, few queries; seconds per figure (used
  by the benchmark suite and CI);
* ``"medium"`` — intermediate;
* ``"paper"`` — the full Section 5 protocol (200 query sets x 5 runs,
  full-size datasets).

The registry in :mod:`repro.experiments.registry` maps experiment ids
(``figure1`` .. ``figure6``, ``tables``, ``timing``) to their drivers;
``python -m repro`` runs them from the command line.
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)

__all__ = [
    "SCALES",
    "ExperimentScale",
    "get_scale",
    "ExperimentResult",
    "MethodResult",
    "evaluate_mechanism",
]
