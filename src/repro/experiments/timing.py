"""The Section 4.6 running-time table.

Measures, for Kosarak (d=32) and AOL (d=45) with their t=2 and t=3
designs:

* ``P``  — constructing the synopsis (noisy views + ripple +
  consistency);
* ``Q6`` — reconstructing a single 6-way marginal (not covered by any
  view);
* ``Q8`` — reconstructing a single 8-way marginal.

The paper's absolute numbers come from a 2.3 GHz machine and a 2013
Python stack; the reproduced *shape* is what matters: t=2 designs are
far cheaper than t=3, and Q8 costs an order of magnitude more than Q6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.marginals.queries import random_attribute_sets

CASES = (("kosarak", 2), ("kosarak", 3), ("aol", 2), ("aol", 3))


@dataclass
class TimingRow:
    """One column of the Section 4.6 table."""

    dataset: str
    design: str
    synopsis_seconds: float
    q6_seconds: float
    q8_seconds: float


def _uncovered_query(design, d: int, k: int, rng) -> tuple[int, ...]:
    for attrs in random_attribute_sets(d, k, 200, rng):
        if not design.covers(attrs):
            return attrs
    return tuple(range(k))  # fully covered design: projection timing


def run(scale=None, seed: int = 0, cases=CASES) -> list[TimingRow]:
    """Measure the timing table at the given scale."""
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    rows = []
    for name, strength in cases:
        dataset = experiment_dataset(name, scale)
        d = dataset.num_attributes
        design = best_design(d, 8, strength)

        start = time.perf_counter()
        synopsis = PriView(1.0, design=design, seed=seed).fit(dataset)
        p_seconds = time.perf_counter() - start

        # Warm the projection-map caches so Q6/Q8 measure the solver,
        # not first-call cache population.
        synopsis.marginal(_uncovered_query(design, d, 4, rng))

        timings = {}
        for k in (6, 8):
            attrs = _uncovered_query(design, d, k, rng)
            start = time.perf_counter()
            synopsis.marginal(attrs)
            timings[k] = time.perf_counter() - start
        rows.append(
            TimingRow(dataset.name, design.notation, p_seconds, timings[6], timings[8])
        )
    return rows


def render(rows: list[TimingRow]) -> str:
    """Text table in the paper's orientation."""
    lines = ["== timing: synopsis & reconstruction times (Section 4.6) =="]
    header = f"{'dataset':<14} {'design':<12} {'P':>9} {'Q6':>9} {'Q8':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.dataset:<14} {row.design:<12} "
            f"{row.synopsis_seconds:>8.2f}s {row.q6_seconds:>8.3f}s "
            f"{row.q8_seconds:>8.3f}s"
        )
    return "\n".join(lines)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
