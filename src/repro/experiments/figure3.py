"""Figure 3: comparing the reconstruction methods of Section 4.3.

On Kosarak with C_3(8,106) and AOL with C_2(8,42), all at eps=1:

* ``CME``  — consistency + maximum entropy (PriView's choice);
* ``LP``   — linear programming on raw noisy views (no consistency);
* ``CLP``  — the same LP after the consistency step;
* ``CLN``  — consistency + least-squares;
* ``CME*`` — maximum entropy without noise (coverage error only).

Expected shape: CME best; LP worst; CLP dramatically better than LP;
CLN between CLP and CME.
"""

from __future__ import annotations

import numpy as np

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)
from repro.marginals.queries import random_attribute_sets

EPSILON = 1.0
KS = (4, 6, 8)
#: dataset -> covering strength of the design used in the figure
FIGURE_DESIGNS = {"kosarak": 3, "aol": 2}


class _SynopsisWithMethod:
    """Adapter fixing the reconstruction method of a synopsis."""

    def __init__(self, synopsis, method: str):
        self._synopsis = synopsis
        self._method = method

    def marginal(self, attrs):
        return self._synopsis.marginal(attrs, method=self._method)


def _variant(dataset, epsilon, design, variant, seed):
    """Build the fitted query object for one figure-3 series."""
    if variant == "LP":
        # Raw views: no consistency, no non-negativity; the LP enforces
        # non-negativity itself.
        mechanism = PriView(
            epsilon,
            design=design,
            consistency=False,
            nonnegativity="none",
            seed=seed,
        )
        return _SynopsisWithMethod(mechanism.fit(dataset), "lp")
    mechanism = PriView(
        float("inf") if variant == "CME*" else epsilon, design=design, seed=seed
    )
    method = {"CME": "maxent", "CME*": "maxent", "CLP": "lp", "CLN": "lsq"}[variant]
    return _SynopsisWithMethod(mechanism.fit(dataset), method)


def run(
    scale=None,
    seed: int = 0,
    datasets=tuple(FIGURE_DESIGNS),
    ks=KS,
    variants=("CME", "LP", "CLP", "CLN", "CME*"),
) -> list[ExperimentResult]:
    """Reproduce Figure 3; one ExperimentResult per dataset."""
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    results = []
    for name in datasets:
        dataset = experiment_dataset(name, scale)
        d = dataset.num_attributes
        design = best_design(d, 8, FIGURE_DESIGNS[name])
        result = ExperimentResult(
            "figure3",
            f"Reconstruction methods on {dataset.name} ({design.notation})",
            context={
                "dataset": dataset.name,
                "N": dataset.num_records,
                "design": design.notation,
                "epsilon": EPSILON,
                "scale": scale.name,
            },
        )
        for k in ks:
            # Only queries NOT covered by a view exercise the solvers.
            queries = [
                q
                for q in random_attribute_sets(d, k, 4 * scale.num_queries, rng)
                if not design.covers(q)
            ][: scale.num_queries]
            for variant in variants:
                runs = 1 if variant == "CME*" else scale.num_runs
                candle = evaluate_mechanism(
                    lambda run_idx, v=variant: _variant(
                        dataset, EPSILON, design, v, seed + run_idx
                    ),
                    dataset,
                    queries,
                    runs,
                )
                result.add(
                    MethodResult(variant, k, EPSILON, "normalized_l2", candle)
                )
        results.append(result)
    return results


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
