"""ASCII rendering of figure results.

The paper's figures are log-scale candlestick plots; this module draws
a terminal approximation so ``python -m repro run figureN`` output can
be eyeballed against the paper directly: one bar per (method, k) cell,
bar length proportional to log10(error), with the interquartile span
marked.
"""

from __future__ import annotations

import math

from repro.experiments.runner import ExperimentResult

#: glyphs: bar body, interquartile band, mean marker
_BAR, _BAND, _MEAN = "-", "=", "O"
_WIDTH = 46


def _log_position(value: float, low: float, high: float) -> int:
    if value <= 0:
        return 0
    span = math.log10(high) - math.log10(low)
    if span <= 0:
        return _WIDTH // 2
    frac = (math.log10(value) - math.log10(low)) / span
    return max(0, min(_WIDTH - 1, int(round(frac * (_WIDTH - 1)))))


def render_chart(
    result: ExperimentResult,
    metric: str = "normalized_l2",
    epsilon: float | None = None,
) -> str:
    """A log-scale ASCII chart of one figure's rows.

    Rows with an analytic expectation only (no candle) are drawn as a
    lone mean marker.
    """
    rows = [
        r
        for r in result.rows
        if r.metric == metric and (epsilon is None or r.epsilon == epsilon)
    ]
    if not rows:
        return f"(no rows for metric {metric!r})"

    values: list[float] = []
    for r in rows:
        values.append(r.headline())
        if r.candle is not None:
            values.extend([r.candle.p25, r.candle.p95])
    positive = [v for v in values if v > 0]
    if not positive:
        return "(all values zero)"
    low, high = min(positive), max(positive)

    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        f"   log10 scale: {low:.1e} .. {high:.1e}  ({metric})",
    ]
    for r in rows:
        bar = [" "] * _WIDTH
        if r.candle is not None:
            p25 = _log_position(r.candle.p25, low, high)
            p95 = _log_position(r.candle.p95, low, high)
            for i in range(0, p25):
                bar[i] = _BAR
            for i in range(p25, p95 + 1):
                bar[i] = _BAND
        mean_pos = _log_position(r.headline(), low, high)
        bar[mean_pos] = _MEAN
        label = f"{r.method} (k={r.k}, eps={r.epsilon:g})"
        lines.append(f"{label:<32} |{''.join(bar)}| {r.headline():.2e}")
    return "\n".join(lines)
