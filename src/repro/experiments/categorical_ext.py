"""Extension experiment: PriView vs Direct on categorical data.

Not a paper figure — Section 4.7 says evaluating the categorical
extension "is beyond the scope of this paper".  This driver does that
evaluation: on a correlated mixed-arity dataset it compares
CategoricalPriView (cell-budget views per the s guideline) against the
categorical Direct method and the Uniform floor, at k in {2, 3, 4}.

Expected shape: the same story as Figure 2 — PriView's mid-size views
beat Direct by orders of magnitude once C(d, k) is large, and remain
below the Uniform floor throughout.
"""

from __future__ import annotations

import numpy as np

from repro.categorical.baselines import CategoricalDirect, CategoricalUniform
from repro.categorical.dataset import CategoricalDataset
from repro.categorical.priview import CategoricalPriView
from repro.experiments.config import get_scale
from repro.experiments.runner import ExperimentResult, MethodResult
from repro.marginals.queries import random_attribute_sets
from repro.metrics.candlestick import candlestick

EPSILONS = (1.0, 0.1)
KS = (2, 3, 4)
ARITIES = (3, 4, 2, 5, 3, 2, 4, 3, 5, 2, 3, 4, 2, 3, 4, 5)


def make_dataset(
    num_records: int, rng: np.random.Generator
) -> CategoricalDataset:
    """Correlated mixed-arity data from a latent-class model."""
    latent = rng.integers(0, 5, num_records)
    columns = []
    for arity in ARITIES:
        prefs = rng.dirichlet(np.ones(arity) * 0.7, size=5)
        cdf = prefs[latent].cumsum(axis=1)
        columns.append((rng.random((num_records, 1)) > cdf[:, :-1]).sum(axis=1))
    return CategoricalDataset(
        np.stack(columns, axis=1), ARITIES, name="categorical-ext"
    )


def run(scale=None, seed: int = 0, epsilons=EPSILONS, ks=KS) -> ExperimentResult:
    """Run the categorical extension comparison."""
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    dataset = make_dataset(scale.max_records or 200_000, rng)
    d = dataset.num_attributes
    n = dataset.num_records
    result = ExperimentResult(
        "categorical-ext",
        "Categorical PriView vs Direct (Section 4.7 extension)",
        context={"arities": ARITIES, "N": n, "scale": scale.name},
    )
    for epsilon in epsilons:
        for k in ks:
            queries = random_attribute_sets(d, k, scale.num_queries, rng)

            def add(name: str, factory) -> None:
                errors = []
                for run_idx in range(scale.num_runs):
                    mechanism = factory(run_idx)
                    run_errors = [
                        np.linalg.norm(
                            mechanism.marginal(q).counts
                            - dataset.marginal(q).counts
                        )
                        / n
                        for q in queries
                    ]
                    errors.append(run_errors)
                per_query = np.mean(np.array(errors), axis=0)
                result.add(
                    MethodResult(
                        name, k, epsilon, "normalized_l2",
                        candlestick(per_query),
                    )
                )

            add(
                "CategoricalPriView",
                lambda run_idx: CategoricalPriView(
                    epsilon, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "CategoricalDirect",
                lambda run_idx: CategoricalDirect(
                    epsilon, k, seed=seed + run_idx
                ).fit(dataset),
            )
            add(
                "CategoricalUniform",
                lambda run_idx: CategoricalUniform(
                    epsilon, seed=seed + run_idx
                ).fit(dataset),
            )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
