"""Figure 6: comparing different covering designs on Kosarak.

Sweeps view widths l around the recommended 8 for pair coverage (t=2)
and includes triple coverage (t=3), plotting alongside each design the
Equation-5 noise-error prediction (the paper's purple stars).

Expected shape: designs with l near 8 perform similarly (l=8 good but
not always optimal); t=3 designs show tighter error bands than t=2;
noise error around 0.002 works well.
"""

from __future__ import annotations

import numpy as np

from repro.core.priview import PriView
from repro.core.view_selection import priview_noise_error
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)
from repro.marginals.queries import random_attribute_sets

EPSILONS = (1.0, 0.1)
KS = (4, 6, 8)
#: (block size l, strength t) pairs swept in the figure
DESIGN_PARAMS = ((6, 2), (7, 2), (8, 2), (9, 2), (10, 2), (11, 2), (8, 3), (10, 3))


def run(
    scale=None,
    seed: int = 0,
    epsilons=EPSILONS,
    ks=KS,
    design_params=DESIGN_PARAMS,
) -> ExperimentResult:
    """Reproduce Figure 6 (Kosarak; the AOL version looks the same)."""
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    dataset = experiment_dataset("kosarak", scale)
    d = dataset.num_attributes
    designs = [best_design(d, l, t) for l, t in design_params]
    result = ExperimentResult(
        "figure6",
        f"Different covering designs on {dataset.name}",
        context={
            "dataset": dataset.name,
            "N": dataset.num_records,
            "scale": scale.name,
        },
    )
    for epsilon in epsilons:
        for k in ks:
            queries = random_attribute_sets(d, k, scale.num_queries, rng)
            for design in designs:
                candle = evaluate_mechanism(
                    lambda run_idx, dd=design: PriView(
                        epsilon, design=dd, seed=seed + run_idx
                    ).fit(dataset),
                    dataset,
                    queries,
                    scale.num_runs,
                )
                predicted = priview_noise_error(
                    dataset.num_records,
                    d,
                    epsilon,
                    design.block_size,
                    design.num_blocks,
                )
                result.add(
                    MethodResult(
                        design.notation,
                        k,
                        epsilon,
                        "normalized_l2",
                        candle,
                        expected=predicted,
                        note=f"eq5 prediction {predicted:.2e}",
                    )
                )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
