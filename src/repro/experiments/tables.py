"""The paper's in-text tables (Sections 3.2, 4.5 and 4.7).

All closed-form — these reproduce exactly, independent of data:

* the Direct-vs-Flat crossover dimensions (Section 3.2);
* the view-width objective table justifying l=8 (Section 4.5);
* the Kosarak t-choice table of Equation-5 noise errors (Section 4.5);
* the cells-per-view guideline for categorical data (Section 4.7).
"""

from __future__ import annotations

from repro.analysis.crossover import crossover_table
from repro.analysis.ell_selection import cells_per_view_table, ell_table
from repro.core.view_selection import priview_noise_error
from repro.covering.repository import best_design
from repro.experiments.runner import ExperimentResult, MethodResult

#: The paper's Section 4.5 example parameters (Kosarak).
KOSARAK_PARAMS = {"num_records": 900_000, "num_attributes": 32, "epsilon": 1.0}
#: Block counts the paper reads off the La Jolla repository.
PAPER_BLOCK_COUNTS = {2: 20, 3: 106, 4: 620}


def run_crossover() -> ExperimentResult:
    """Section 3.2: smallest d where Direct's ESE beats Flat's."""
    result = ExperimentResult(
        "table-crossover", "Direct beats Flat when d >= (Section 3.2)"
    )
    for k, d in crossover_table().items():
        result.add(
            MethodResult("Direct>=Flat", k, 0.0, "min_d", None, expected=d)
        )
    return result


def run_ell_table() -> ExperimentResult:
    """Section 4.5: the 2**(l/2)/(l(l-1)) objective for l = 5..12."""
    result = ExperimentResult(
        "table-ell", "View-width objectives (Section 4.5); minimum near l=8"
    )
    for l, (pairs, triples) in ell_table().items():
        result.add(
            MethodResult("pairs-objective", l, 0.0, "objective", None, expected=pairs)
        )
        result.add(
            MethodResult(
                "triples-objective", l, 0.0, "objective", None, expected=triples
            )
        )
    return result


def run_t_choice(
    use_paper_block_counts: bool = True,
) -> ExperimentResult:
    """Section 4.5: Kosarak noise error for t in {2, 3, 4}.

    With the paper's block counts this reproduces 0.00047 / 0.0011 /
    0.0026 exactly; with ``use_paper_block_counts=False`` the w values
    come from our own constructed designs instead.
    """
    result = ExperimentResult(
        "table-t-choice",
        "Equation-5 noise error for Kosarak, t in {2,3,4} (Section 4.5)",
        context=dict(KOSARAK_PARAMS),
    )
    for t, paper_w in PAPER_BLOCK_COUNTS.items():
        w = (
            paper_w
            if use_paper_block_counts
            else best_design(KOSARAK_PARAMS["num_attributes"], 8, t).num_blocks
        )
        err = priview_noise_error(
            KOSARAK_PARAMS["num_records"],
            KOSARAK_PARAMS["num_attributes"],
            KOSARAK_PARAMS["epsilon"],
            8,
            w,
        )
        result.add(
            MethodResult(
                f"C_{t}(8,{w})",
                t,
                KOSARAK_PARAMS["epsilon"],
                "noise_error",
                None,
                expected=err,
            )
        )
    return result


def run_cells_table() -> ExperimentResult:
    """Section 4.7: recommended cells-per-view for b-valued attributes."""
    result = ExperimentResult(
        "table-cells", "Cells-per-view guideline for categorical data (Section 4.7)"
    )
    for b, (low, high) in cells_per_view_table().items():
        result.add(
            MethodResult(f"b={b}", b, 0.0, "s_low", None, expected=low)
        )
        result.add(
            MethodResult(f"b={b}", b, 0.0, "s_high", None, expected=high)
        )
    return result


def run(scale=None, seed: int = 0) -> list[ExperimentResult]:
    """All in-text tables (scale/seed accepted for driver uniformity)."""
    return [run_crossover(), run_ell_table(), run_t_choice(), run_cells_table()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
