"""Figure 4: impact of the non-negativity step (Section 4.4).

On Kosarak with C_3(8,106) and AOL with C_2(8,42) at eps=1, compare

* ``None``    — consistency only, negatives kept;
* ``Simple``  — clamp negatives to zero (introduces systematic bias);
* ``Global``  — clamp, subtracting the excess from positive cells;
* ``Ripple1`` — Consistency + Ripple + Consistency (PriView);
* ``Ripple3`` — three (Ripple + Consistency) rounds.

Expected shape: Ripple best; Global some improvement over None; None
2-4x worse than Ripple; Simple worst; Ripple3 ~ Ripple1.
"""

from __future__ import annotations

import numpy as np

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset
from repro.experiments.figure3 import FIGURE_DESIGNS
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)
from repro.marginals.queries import random_attribute_sets

EPSILON = 1.0
KS = (4, 6, 8)

#: figure label -> (nonnegativity method, rounds)
VARIANTS = {
    "None": ("none", 0),
    "Simple": ("simple", 1),
    "Global": ("global", 1),
    "Ripple1": ("ripple", 1),
    "Ripple3": ("ripple", 3),
}


def run(
    scale=None,
    seed: int = 0,
    datasets=tuple(FIGURE_DESIGNS),
    ks=KS,
    variants=tuple(VARIANTS),
) -> list[ExperimentResult]:
    """Reproduce Figure 4; one ExperimentResult per dataset."""
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    results = []
    for name in datasets:
        dataset = experiment_dataset(name, scale)
        d = dataset.num_attributes
        design = best_design(d, 8, FIGURE_DESIGNS[name])
        result = ExperimentResult(
            "figure4",
            f"Non-negativity methods on {dataset.name} ({design.notation})",
            context={
                "dataset": dataset.name,
                "N": dataset.num_records,
                "design": design.notation,
                "epsilon": EPSILON,
                "scale": scale.name,
            },
        )
        for k in ks:
            queries = random_attribute_sets(d, k, scale.num_queries, rng)
            for label in variants:
                method, rounds = VARIANTS[label]
                candle = evaluate_mechanism(
                    lambda run_idx, m=method, r=rounds: PriView(
                        EPSILON,
                        design=design,
                        nonnegativity=m,
                        nonneg_rounds=r,
                        seed=seed + run_idx,
                    ).fit(dataset),
                    dataset,
                    queries,
                    scale.num_runs,
                )
                result.add(
                    MethodResult(label, k, EPSILON, "normalized_l2", candle)
                )
        results.append(result)
    return results


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
