"""Analyst-style queries over marginal tables.

Marginal tables answer "how many records have this exact assignment",
but analysts usually ask partial-assignment and conditional questions
("how many users visited pages 3 and 7?", "what fraction of smokers
are in age band 2?").  These helpers evaluate such queries against any
:class:`~repro.marginals.table.MarginalTable` — in particular against
tables reconstructed from a PriView synopsis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable


def _assignment_cell(attrs: tuple[int, ...], assignment: dict[int, int]) -> int:
    cell = 0
    for j, attr in enumerate(attrs):
        value = assignment[attr]
        if value not in (0, 1):
            raise DimensionError(
                f"attribute {attr} assigned non-binary value {value}"
            )
        cell |= value << j
    return cell


def count_where(table: MarginalTable, assignment: dict[int, int]) -> float:
    """Number of records matching a partial assignment.

    ``assignment`` maps attribute index -> 0/1; attributes of the table
    not mentioned are summed over.  Attributes outside the table raise.
    """
    fixed = AttrSet(assignment.keys())
    projected = table.project(fixed)
    return float(projected.counts[_assignment_cell(projected.attrs, assignment)])


def fraction_where(table: MarginalTable, assignment: dict[int, int]) -> float:
    """``count_where`` normalised by the table total (0 if empty)."""
    total = table.total()
    if total <= 0:
        return 0.0
    return count_where(table, assignment) / total


def conditional_probability(
    table: MarginalTable,
    event: dict[int, int],
    given: dict[int, int],
) -> float:
    """``P(event | given)`` estimated from the table.

    Returns ``nan`` when the conditioning event has no mass.  ``event``
    and ``given`` must not assign the same attribute differently.
    """
    overlap = set(event) & set(given)
    for attr in overlap:
        if event[attr] != given[attr]:
            raise DimensionError(
                f"attribute {attr} assigned inconsistently in event/given"
            )
    joint = count_where(table, {**given, **event})
    base = count_where(table, given)
    if base <= 0:
        return float("nan")
    return joint / base


def most_common_cells(
    table: MarginalTable, top: int = 5
) -> list[tuple[dict[int, int], float]]:
    """The ``top`` heaviest cells as (assignment dict, count) pairs."""
    if top <= 0:
        raise DimensionError(f"top must be positive, got {top}")
    order = np.argsort(table.counts)[::-1][:top]
    out = []
    for cell in order:
        assignment = {
            attr: (int(cell) >> j) & 1 for j, attr in enumerate(table.attrs)
        }
        out.append((assignment, float(table.counts[cell])))
    return out
