"""Query-workload helpers: which k-way marginals to ask for.

The paper's evaluation samples 200 random k-subsets of the attributes
(Section 5, Evaluation Methodology), except for MCHAIN where it uses
*consecutive* attribute windows so that the queries exercise the Markov
dependencies (Section 5.5).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import DimensionError


def all_attribute_subsets(num_attributes: int, k: int) -> list[tuple[int, ...]]:
    """Every k-subset of ``range(num_attributes)``, sorted tuples."""
    if not 0 <= k <= num_attributes:
        raise DimensionError(f"k={k} out of range for d={num_attributes}")
    return list(itertools.combinations(range(num_attributes), k))


def random_attribute_sets(
    num_attributes: int,
    k: int,
    count: int,
    rng: np.random.Generator | None = None,
) -> list[tuple[int, ...]]:
    """``count`` distinct random k-subsets (all of them if fewer exist).

    Mirrors the evaluation protocol: when the number of k-subsets is at
    most ``count`` the full set is returned, otherwise ``count``
    distinct subsets are sampled without replacement.
    """
    if not 0 < k <= num_attributes:
        raise DimensionError(f"k={k} out of range for d={num_attributes}")
    rng = rng or np.random.default_rng()
    import math

    total = math.comb(num_attributes, k)
    if total <= count:
        return all_attribute_subsets(num_attributes, k)
    chosen: set[tuple[int, ...]] = set()
    while len(chosen) < count:
        pick = tuple(sorted(rng.choice(num_attributes, size=k, replace=False)))
        chosen.add(tuple(int(a) for a in pick))
    return sorted(chosen)


def consecutive_attribute_sets(num_attributes: int, k: int) -> list[tuple[int, ...]]:
    """All windows ``(i, i+1, ..., i+k-1)`` — the MCHAIN workload."""
    if not 0 < k <= num_attributes:
        raise DimensionError(f"k={k} out of range for d={num_attributes}")
    return [tuple(range(i, i + k)) for i in range(num_attributes - k + 1)]
