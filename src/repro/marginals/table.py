"""The :class:`MarginalTable` — the paper's ``T_A`` object.

A marginal table over an attribute set ``A`` holds one (possibly noisy,
possibly negative) real count per assignment of the attributes in
``A``.  It supports the operations PriView needs:

* ``project`` — the paper's ``T_A[A']`` (Section 4.1, Notation);
* ``consistency_update`` — the mutual-consistency cell update of
  Section 4.4;
* ``normalized`` — the paper's ``norm(T_A)`` used by the JS divergence.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet
from repro.marginals.projection import projection_index


def __getattr__(name: str):
    # Deprecated pre-1.1 entry point; AttrSet is the public canonicalizer.
    if name == "_as_sorted_attrs":
        warnings.warn(
            "repro.marginals.table._as_sorted_attrs is deprecated; "
            "use repro.marginals.attrs.AttrSet instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return AttrSet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class MarginalTable:
    """A contingency table over a sorted tuple of attribute indices.

    Attributes
    ----------
    attrs:
        The sorted attribute indices the table is over.
    counts:
        Float array of length ``2**len(attrs)``; cell ``i`` counts the
        records where attribute ``attrs[j]`` equals ``(i >> j) & 1``.
    meta:
        Free-form provenance/telemetry attached by producers — e.g.
        the max-entropy reconstructor stores its convergence record
        under ``meta["maxent"]``.  Never affects table semantics.
    """

    attrs: tuple[int, ...]
    counts: np.ndarray = field(repr=False)
    meta: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.attrs = AttrSet(self.attrs)
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.shape != (1 << len(self.attrs),):
            raise DimensionError(
                f"counts has shape {counts.shape}, expected "
                f"({1 << len(self.attrs)},) for attrs {self.attrs}"
            )
        self.counts = counts

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, attrs) -> "MarginalTable":
        """An all-zero table over ``attrs``."""
        attrs = AttrSet(attrs)
        return cls(attrs, np.zeros(1 << len(attrs)))

    @classmethod
    def uniform(cls, attrs, total: float) -> "MarginalTable":
        """A uniform table over ``attrs`` whose cells sum to ``total``."""
        attrs = AttrSet(attrs)
        size = 1 << len(attrs)
        return cls(attrs, np.full(size, total / size))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes (the ``k`` of a k-way marginal)."""
        return len(self.attrs)

    @property
    def size(self) -> int:
        """Number of cells, ``2**arity``."""
        return self.counts.size

    def total(self) -> float:
        """Sum of all cells — the paper's ``T_A[emptyset]``."""
        return float(self.counts.sum())

    def copy(self) -> "MarginalTable":
        """A deep copy (the counts array is copied, meta shallow-copied)."""
        return MarginalTable(self.attrs, self.counts.copy(), dict(self.meta))

    def with_counts(self, counts) -> "MarginalTable":
        """A same-shape table over the same attrs with new counts.

        The type-generic rebuild hook the noisy-view fan-out uses, so
        binary and categorical tables flow through the same kernel.
        """
        return MarginalTable(self.attrs, counts)

    # ------------------------------------------------------------------
    # Projection and consistency
    # ------------------------------------------------------------------
    def project(self, sub_attrs) -> "MarginalTable":
        """The marginal over ``sub_attrs`` obtained by summing cells.

        ``sub_attrs`` must be a subset of :attr:`attrs`.  Projecting
        onto the empty tuple yields a 1-cell table holding the total.
        """
        sub = AttrSet(sub_attrs)
        _, pmap = projection_index(self.attrs, sub)
        counts = np.bincount(pmap, weights=self.counts, minlength=1 << len(sub))
        return MarginalTable(sub, counts)

    def consistency_update(self, target: "MarginalTable") -> None:
        """Shift cells so that ``self.project(target.attrs) == target``.

        Implements the Section 4.4 update: every cell ``c`` receives
        ``(T_A(a) - T_self[A](a)) / 2**(arity - |A|)`` where ``a`` is
        ``c`` restricted to ``A = target.attrs``.  The projection of
        ``self`` onto any attribute set disjoint from ``A`` is
        unchanged (Lemma 1).
        """
        _, pmap = projection_index(self.attrs, target.attrs)
        current = np.bincount(pmap, weights=self.counts, minlength=target.size)
        delta = (target.counts - current) / float(1 << (self.arity - target.arity))
        self.counts += delta[pmap]

    # ------------------------------------------------------------------
    # Normalisation and comparison helpers
    # ------------------------------------------------------------------
    def normalized(self) -> np.ndarray:
        """Cells divided by the total (the paper's ``norm``).

        A table whose total is not positive normalizes to the uniform
        distribution, matching how the evaluation treats degenerate
        noisy tables.
        """
        total = self.counts.sum()
        if total <= 0:
            return np.full(self.size, 1.0 / self.size)
        return self.counts / total

    def clamped(self, lower: float = 0.0) -> "MarginalTable":
        """A copy with every cell raised to at least ``lower``."""
        return MarginalTable(self.attrs, np.maximum(self.counts, lower))

    def allclose(self, other: "MarginalTable", atol: float = 1e-8) -> bool:
        """True when both tables cover the same attrs with equal cells."""
        return self.attrs == other.attrs and bool(
            np.allclose(self.counts, other.counts, atol=atol)
        )

    def __len__(self) -> int:
        return self.size
