"""The full contingency table — feasible only for small ``d``.

Several baselines (Flat, MWEM, FourierLP, DataCube, the matrix
mechanism) operate on the full ``2**d`` table.  This module provides it
with the same cell-index convention as :class:`MarginalTable`, plus the
marginal-extraction primitive those methods rely on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.dataset import BinaryDataset
from repro.marginals.projection import projection_map
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

#: Refuse to materialise tables beyond this many dimensions.  2**24
#: doubles is 128 MiB; anything larger defeats the point of PriView.
MAX_FULL_DIMENSIONS = 24


class FullContingencyTable:
    """A dense table with one cell per point of ``{0,1}**d``."""

    def __init__(self, num_attributes: int, counts):
        if num_attributes > MAX_FULL_DIMENSIONS:
            raise DimensionError(
                f"refusing a full contingency table for d={num_attributes} "
                f"(limit {MAX_FULL_DIMENSIONS}); use PriView instead"
            )
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (1 << num_attributes,):
            raise DimensionError(
                f"counts has shape {counts.shape}, expected "
                f"({1 << num_attributes},)"
            )
        self.num_attributes = num_attributes
        self.counts = counts

    @classmethod
    def from_dataset(cls, dataset: BinaryDataset) -> "FullContingencyTable":
        """Count every record of ``dataset`` into its cell."""
        d = dataset.num_attributes
        if d > MAX_FULL_DIMENSIONS:
            raise DimensionError(
                f"refusing a full contingency table for d={d} "
                f"(limit {MAX_FULL_DIMENSIONS}); use PriView instead"
            )
        idx = dataset.cell_index(range(d))
        counts = np.bincount(idx, minlength=1 << d).astype(np.float64)
        return cls(d, counts)

    @property
    def size(self) -> int:
        """Number of cells, ``2**d``."""
        return self.counts.size

    def total(self) -> float:
        """Sum of all cells (``N`` for an exact table)."""
        return float(self.counts.sum())

    def marginal(self, attrs) -> MarginalTable:
        """The marginal over ``attrs`` obtained by summing cells."""
        attrs = AttrSet(attrs)
        if attrs and attrs[-1] >= self.num_attributes:
            raise DimensionError(
                f"attribute {attrs[-1]} out of range (d={self.num_attributes})"
            )
        pmap = projection_map(self.num_attributes, attrs)
        counts = np.bincount(pmap, weights=self.counts, minlength=1 << len(attrs))
        return MarginalTable(attrs, counts)

    def copy(self) -> "FullContingencyTable":
        """A deep copy."""
        return FullContingencyTable(self.num_attributes, self.counts.copy())
