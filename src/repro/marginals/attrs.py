"""The :class:`AttrSet` canonical attribute-set type.

Every public API in this library identifies a marginal by its
*attribute set* — which attributes of the dataset the table ranges
over.  Callers hand those in as tuples, lists, sets, frozensets,
ranges, generators or numpy arrays, in any order.  :class:`AttrSet`
is the single canonicalizer: it sorts, de-duplicates (rejecting
duplicates loudly), coerces to plain ints and optionally validates the
index range **once**, at the module boundary, so downstream code can
treat the value as a plain sorted tuple and never re-normalise.

``AttrSet`` subclasses :class:`tuple`, so existing code that compares,
hashes, slices or iterates attribute tuples keeps working unchanged —
an ``AttrSet`` equals (and hashes like) the equivalent bare tuple.

>>> AttrSet([3, 0, 5])
AttrSet(0, 3, 5)
>>> AttrSet({7, 2}) == (2, 7)
True
>>> AttrSet(np.array([4, 1]), num_attributes=4)
Traceback (most recent call last):
    ...
repro.exceptions.DimensionError: attribute 4 out of range (d=4)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError


class AttrSet(tuple):
    """A sorted, validated, immutable attribute set.

    Parameters
    ----------
    attrs:
        Any iterable of integer attribute indices: tuple, list, set,
        frozenset, range, generator or integer ndarray.  An existing
        :class:`AttrSet` passes through without copying (unless a new
        ``num_attributes`` bound must be checked).
    num_attributes:
        When given, every index must lie in ``range(num_attributes)``;
        out-of-range indices raise :class:`DimensionError`.  Without
        it only non-negativity of the smallest index is *not* enforced
        — sortedness and uniqueness always are.
    arities:
        Optional per-attribute arities (number of values), aligned
        with the *input* ``attrs`` order and re-sorted alongside them.
        Arities are metadata: they never affect equality or hashing,
        so an ``AttrSet`` with arities still equals (and keys the same
        caches as) the bare tuple.  Binary-only callers that never
        pass ``arities`` see exactly the legacy behaviour.
    """

    # No __slots__: tuple subclasses cannot carry nonempty slots, and
    # the optional arity metadata needs an instance attribute.  The
    # class-level default keeps arity-less instances dict-free-ish and
    # makes `_arities` always readable.
    _arities: tuple[int, ...] | None = None

    def __new__(
        cls,
        attrs=(),
        num_attributes: int | None = None,
        arities=None,
    ) -> "AttrSet":
        if isinstance(attrs, AttrSet) and arities is None:
            out = attrs
        else:
            if isinstance(attrs, np.ndarray):
                if attrs.ndim != 1:
                    raise DimensionError(
                        f"attribute array must be 1-D, got shape {attrs.shape}"
                    )
                if attrs.size and not np.issubdtype(attrs.dtype, np.integer):
                    raise DimensionError(
                        f"attribute array must be integral, got dtype {attrs.dtype}"
                    )
            try:
                raw = [int(a) for a in attrs]
            except (TypeError, ValueError) as exc:
                raise DimensionError(
                    f"attribute set {attrs!r} is not an iterable of integers"
                ) from exc
            if arities is None and isinstance(attrs, AttrSet):
                arities = attrs.arities
            if arities is not None:
                arity_list = [int(b) for b in arities]
                if len(arity_list) != len(raw):
                    raise DimensionError(
                        f"{len(arity_list)} arities for {len(raw)} attributes"
                    )
                if any(b < 2 for b in arity_list):
                    raise DimensionError(
                        f"arities must be >= 2, got {tuple(arity_list)}"
                    )
                pairs = sorted(zip(raw, arity_list))
                items = [a for a, _ in pairs]
                sorted_arities = tuple(b for _, b in pairs)
            else:
                items = sorted(raw)
                sorted_arities = None
            if any(a == b for a, b in zip(items, items[1:])):
                raise DimensionError(
                    f"attribute set {attrs!r} contains duplicates"
                )
            out = super().__new__(cls, items)
            if sorted_arities is not None:
                out._arities = sorted_arities
        if num_attributes is not None and out:
            if out[0] < 0 or out[-1] >= num_attributes:
                bad = out[0] if out[0] < 0 else out[-1]
                raise DimensionError(
                    f"attribute {bad} out of range (d={num_attributes})"
                )
        return out

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes — the ``k`` of a k-way marginal."""
        return len(self)

    @property
    def size(self) -> int:
        """Number of cells of a table over this set.

        ``prod(arities)`` when per-attribute arities are attached,
        the binary ``2**arity`` otherwise.
        """
        if self._arities is not None:
            out = 1
            for b in self._arities:
                out *= b
            return out
        return 1 << len(self)

    @property
    def arities(self) -> tuple[int, ...] | None:
        """Per-attribute arities aligned with the sorted attrs, if known."""
        return self._arities

    @property
    def is_binary(self) -> bool:
        """True when no arity metadata says otherwise."""
        return self._arities is None or all(b == 2 for b in self._arities)

    def with_arities(self, arities) -> "AttrSet":
        """A copy of this set carrying the given per-attribute arities."""
        return AttrSet(tuple(self), arities=tuple(arities))

    def issubset(self, other) -> bool:
        """True when every attribute also appears in ``other``.

        Both sides being sorted tuples, this is a linear merge rather
        than a set build.
        """
        it = iter(AttrSet(other))
        return all(any(a == b for b in it) for a in self)

    def union(self, other) -> "AttrSet":
        """The canonicalized union with another attribute collection."""
        return AttrSet(set(self) | set(AttrSet(other)))

    def intersection(self, other) -> "AttrSet":
        """The canonicalized intersection with another collection."""
        other_set = frozenset(AttrSet(other))
        return AttrSet(tuple(a for a in self if a in other_set))

    def __repr__(self) -> str:
        if self._arities is not None:
            spec = ", ".join(
                f"{a}:{b}" for a, b in zip(self, self._arities)
            )
            return f"AttrSet({spec})"
        return f"AttrSet({', '.join(map(str, self))})"


def as_attrs(attrs, num_attributes: int | None = None, arities=None) -> AttrSet:
    """Functional alias for :class:`AttrSet` construction."""
    return AttrSet(attrs, num_attributes, arities=arities)
