"""Marginal-table substrate: datasets, marginal tables and projections.

This subpackage implements the data structures the paper's Section 2
defines: binary datasets over ``d`` attributes, k-way marginal
contingency tables, and the full contingency table (for small ``d``).

Cell indexing convention
------------------------
A marginal table over the sorted attribute tuple ``attrs = (a_0 < a_1 <
... < a_{m-1})`` stores ``2**m`` cells.  Cell ``i`` corresponds to the
assignment where attribute ``a_j`` takes the value ``(i >> j) & 1``.
Every module in this package uses this convention; helpers in
:mod:`repro.marginals.projection` translate between tables over nested
attribute sets.
"""

from repro.marginals.attrs import AttrSet, as_attrs
from repro.marginals.dataset import BinaryDataset
from repro.marginals.domain import (
    ATTRIBUTE_KINDS,
    Attribute,
    Domain,
    as_domain,
)
from repro.marginals.table import MarginalTable
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.projection import (
    constraint_matrix,
    projection_index,
    projection_map,
)
from repro.marginals.queries import (
    all_attribute_subsets,
    consecutive_attribute_sets,
    random_attribute_sets,
)
from repro.marginals.analysis_queries import (
    conditional_probability,
    count_where,
    fraction_where,
    most_common_cells,
)

__all__ = [
    "ATTRIBUTE_KINDS",
    "AttrSet",
    "Attribute",
    "Domain",
    "as_attrs",
    "as_domain",
    "BinaryDataset",
    "MarginalTable",
    "FullContingencyTable",
    "projection_map",
    "projection_index",
    "constraint_matrix",
    "all_attribute_subsets",
    "consecutive_attribute_sets",
    "random_attribute_sets",
    "conditional_probability",
    "count_where",
    "fraction_where",
    "most_common_cells",
]
