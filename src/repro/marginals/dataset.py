"""Binary datasets: the ``D`` of the problem definition.

A :class:`BinaryDataset` wraps an ``(N, d)`` matrix of 0/1 values and
computes exact marginal tables.  Marginal extraction is the only
primitive that touches raw records; every mechanism in this library
goes through it (or through :class:`~repro.marginals.contingency.
FullContingencyTable` for small ``d``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable


class BinaryDataset:
    """An ``N x d`` dataset of binary attributes.

    Parameters
    ----------
    data:
        Array-like of shape ``(N, d)`` with values in ``{0, 1}``.
    name:
        Optional human-readable name used in experiment reports.
    """

    def __init__(self, data, name: str = "dataset"):
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim != 2:
            raise DimensionError(f"data must be 2-D, got shape {arr.shape}")
        if arr.size and arr.max() > 1:
            raise DimensionError("data must contain only 0/1 values")
        self._data = arr
        self.name = name
        self._packed = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_transactions(
        cls, transactions, num_attributes: int, name: str = "dataset"
    ) -> "BinaryDataset":
        """Build from an iterable of item-id collections.

        Item ids outside ``range(num_attributes)`` are ignored, which is
        how the paper's preprocessing keeps only the top pages /
        categories.
        """
        lengths = []
        flat: list[int] = []
        for txn in transactions:
            items = list(txn)
            lengths.append(len(items))
            flat.extend(items)
        data = np.zeros((len(lengths), num_attributes), dtype=np.int64)
        if flat:
            items_arr = np.asarray(flat, dtype=np.int64)
            rows = np.repeat(np.arange(len(lengths)), lengths)
            keep = (items_arr >= 0) & (items_arr < num_attributes)
            # Scatter-add, then clamp: an item repeated inside one
            # transaction still yields a single 1 in that row.
            np.add.at(data, (rows[keep], items_arr[keep]), 1)
            np.minimum(data, 1, out=data)
        return cls(data.astype(np.uint8), name=name)

    @classmethod
    def random(
        cls,
        num_records: int,
        num_attributes: int,
        density: float = 0.5,
        rng: np.random.Generator | None = None,
        name: str = "random",
    ) -> "BinaryDataset":
        """IID Bernoulli(``density``) dataset, mainly for tests."""
        rng = rng or np.random.default_rng()
        data = (rng.random((num_records, num_attributes)) < density).astype(np.uint8)
        return cls(data, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying ``(N, d)`` uint8 matrix (read-only view)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    @property
    def num_records(self) -> int:
        """``N``, the number of tuples."""
        return self._data.shape[0]

    @property
    def num_attributes(self) -> int:
        """``d``, the number of binary attributes."""
        return self._data.shape[1]

    def __len__(self) -> int:
        return self.num_records

    def __repr__(self) -> str:
        return (
            f"BinaryDataset(name={self.name!r}, N={self.num_records}, "
            f"d={self.num_attributes})"
        )

    # ------------------------------------------------------------------
    # Marginals
    # ------------------------------------------------------------------
    def cell_index(self, attrs) -> np.ndarray:
        """Per-record cell index within the marginal over ``attrs``."""
        attrs = AttrSet(attrs)
        if attrs and attrs[-1] >= self.num_attributes:
            raise DimensionError(
                f"attribute {attrs[-1]} out of range (d={self.num_attributes})"
            )
        weights = (np.int64(1) << np.arange(len(attrs), dtype=np.int64))
        return self._data[:, list(attrs)].astype(np.int64) @ weights

    def marginal(self, attrs) -> MarginalTable:
        """The exact (non-private) marginal table over ``attrs``."""
        attrs = AttrSet(attrs)
        idx = self.cell_index(attrs)
        counts = np.bincount(idx, minlength=1 << len(attrs)).astype(np.float64)
        return MarginalTable(attrs, counts)

    def marginals(self, attr_sets) -> list[MarginalTable]:
        """Exact marginals for every attribute set in ``attr_sets``."""
        return [self.marginal(attrs) for attrs in attr_sets]

    def attribute_means(self) -> np.ndarray:
        """Per-attribute fraction of ones; handy for sanity checks."""
        if self.num_records == 0:
            return np.zeros(self.num_attributes)
        return self._data.mean(axis=0)

    # ------------------------------------------------------------------
    # Bit-sliced acceleration
    # ------------------------------------------------------------------
    def packed(self, chunk_words: int | None = None):
        """This dataset as a :class:`repro.kernels.PackedDataset`.

        The packed form is built once and cached (the raw matrix is
        immutable from the outside), so repeated packed fits and
        benchmarks don't re-pack.  Its ``marginal`` is bitwise
        identical to :meth:`marginal`, typically ~10x faster.
        """
        from repro.kernels.packed import PackedDataset

        if self._packed is None:
            self._packed = PackedDataset.from_dataset(self)
        if chunk_words is not None and chunk_words != self._packed.chunk_words:
            self._packed = PackedDataset(
                self._packed.words,
                self.num_records,
                name=self.name,
                chunk_words=chunk_words,
            )
        return self._packed
