"""Index arithmetic shared by marginal-table operations.

The central object is the *projection map*: for a table over ``m``
attributes and a sub-table over a subset of those attributes, the map
sends each of the ``2**m`` parent cells to the sub-table cell it
contributes to.  Projection is then a weighted bincount over this map,
and the consistency update of Section 4.4 is a gather through it.

Every helper here is memoised: the same subset→index maps recur
constantly across consistency passes, Ripple, the reconstruction
constraint builders and the serving engine, so each distinct map is
built once per process and shared (returned arrays are read-only).
:mod:`repro.kernels.indexcache` exposes aggregate hit/miss statistics
over these caches.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.exceptions import DimensionError


@functools.lru_cache(maxsize=4096)
def projection_map(m: int, positions: tuple[int, ...]) -> np.ndarray:
    """Map each cell of an ``m``-attribute table to its projected cell.

    Parameters
    ----------
    m:
        Number of attributes of the parent table.
    positions:
        Positions (bit indices, each in ``range(m)``) of the attributes
        retained by the projection, in the order they appear in the
        sub-table.

    Returns
    -------
    numpy.ndarray
        An int64 array ``p`` of length ``2**m`` where ``p[i]`` is the
        index of the sub-table cell that parent cell ``i`` maps to.
    """
    if any(pos < 0 or pos >= m for pos in positions):
        raise DimensionError(
            f"positions {positions} out of range for an {m}-attribute table"
        )
    if len(set(positions)) != len(positions):
        raise DimensionError(f"positions {positions} contain duplicates")
    cells = np.arange(1 << m, dtype=np.int64)
    out = np.zeros(1 << m, dtype=np.int64)
    for rank, pos in enumerate(positions):
        out |= ((cells >> pos) & 1) << rank
    out.setflags(write=False)
    return out


@functools.lru_cache(maxsize=8192)
def subset_positions(attrs: tuple[int, ...], sub: tuple[int, ...]) -> tuple[int, ...]:
    """Positions of ``sub``'s attributes inside the sorted tuple ``attrs``.

    Raises :class:`~repro.exceptions.DimensionError` if ``sub`` is not a
    subset of ``attrs``.
    """
    index = {attr: j for j, attr in enumerate(attrs)}
    try:
        return tuple(index[a] for a in sub)
    except KeyError as exc:
        raise DimensionError(f"{sub} is not a subset of {attrs}") from exc


@functools.lru_cache(maxsize=8192)
def projection_index(
    attrs: tuple[int, ...], sub: tuple[int, ...]
) -> tuple[tuple[int, ...], np.ndarray]:
    """One-stop cached ``(positions, projection map)`` for a subset pair.

    The common lookup on the table/consistency/serving hot paths:
    resolving ``sub`` inside ``attrs`` and building the cell map used by
    projections and consistency updates, in a single cache probe keyed
    on the *attribute* tuples (not bit positions).
    """
    positions = subset_positions(tuple(attrs), tuple(sub))
    return positions, projection_map(len(attrs), positions)


@functools.lru_cache(maxsize=4096)
def embedding_masks(k: int, positions: tuple[int, ...]) -> np.ndarray:
    """Cell masks of a ``k``-attribute table spanned by ``positions``.

    Entry ``s`` of the returned length-``2**len(positions)`` int64
    array is the ``k``-bit mask obtained by scattering the bits of
    ``s`` onto ``positions`` (bit ``r`` of ``s`` lands on bit
    ``positions[r]``).  In the Walsh–Hadamard (residual) basis these
    are exactly the coefficient indices of ``T_A`` that the marginal
    over the sub-attributes at ``positions`` determines — the inverse
    direction of :func:`projection_map`, used by the residual
    reconstruction solver.
    """
    if any(pos < 0 or pos >= k for pos in positions):
        raise DimensionError(
            f"positions {positions} out of range for a {k}-attribute table"
        )
    if len(set(positions)) != len(positions):
        raise DimensionError(f"positions {positions} contain duplicates")
    sub = np.arange(1 << len(positions), dtype=np.int64)
    out = np.zeros(1 << len(positions), dtype=np.int64)
    for rank, pos in enumerate(positions):
        out |= ((sub >> rank) & 1) << pos
    out.setflags(write=False)
    return out


@functools.lru_cache(maxsize=1024)
def constraint_matrix(k: int, positions: tuple[int, ...]) -> np.ndarray:
    """Dense 0/1 matrix expressing a sub-marginal as sums of parent cells.

    Row ``r`` of the returned ``(2**len(positions), 2**k)`` matrix has a
    1 in column ``i`` exactly when parent cell ``i`` projects to
    sub-table cell ``r``.  Used by the LP and least-squares
    reconstruction solvers, which need explicit linear constraints.
    The returned matrix is cached and read-only; callers that need to
    mutate must copy.
    """
    pmap = projection_map(k, positions)
    rows = 1 << len(positions)
    mat = np.zeros((rows, 1 << k), dtype=np.float64)
    mat[pmap, np.arange(1 << k)] = 1.0
    mat.setflags(write=False)
    return mat


@functools.lru_cache(maxsize=128)
def cell_neighbours(m: int) -> np.ndarray:
    """Hamming-distance-1 neighbours of every cell of an ``m``-way table.

    Returns a read-only ``(2**m, m)`` int64 array whose row ``i`` lists
    the cells obtained from ``i`` by flipping each of the ``m`` bits.
    Used by the Ripple non-negativity procedure (Section 4.4).
    """
    cells = np.arange(1 << m, dtype=np.int64)[:, None]
    flips = np.int64(1) << np.arange(m, dtype=np.int64)[None, :]
    out = cells ^ flips
    out.setflags(write=False)
    return out
