"""First-class mixed-type attribute domains.

PriView's production path was binary-only; real datasets mix binary
flags, categorical codes, ordinals and binned numeric columns.  A
:class:`Domain` describes one such schema: an ordered tuple of
:class:`Attribute` specs, each carrying its arity (number of discrete
values), a dtype *kind* and — for numeric attributes — the bin edges
used to discretise raw values.

The domain rides the whole pipeline: datasets encode raw columns into
mixed-radix codes against it, mechanisms record it on the synopsis,
:func:`~repro.core.serialization.save_synopsis` persists it inside the
``.npz`` payload (covered by the integrity digest), the store exposes
it in :class:`~repro.store.manifest.VersionInfo` metadata, and
:mod:`repro.synth` decodes sampled records back into labelled values.

Cell indexing stays the library-wide mixed-radix convention (see
:mod:`repro.categorical.indexing`): a table over attributes with
arities ``(b_0, ..., b_{m-1})`` assigns attribute ``j`` the value
``(i // stride_j) % b_j`` in cell ``i`` — which degenerates to the
binary bit-``j`` convention when every arity is 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet

#: dtype kinds an :class:`Attribute` may declare.
ATTRIBUTE_KINDS = ("categorical", "ordinal", "numeric")


@dataclass(frozen=True)
class Attribute:
    """One column of a :class:`Domain`.

    Attributes
    ----------
    name:
        Column name, unique within its domain.
    arity:
        Number of discrete values (``>= 2``).
    kind:
        ``"categorical"`` (unordered codes), ``"ordinal"`` (ordered
        codes) or ``"numeric"`` (binned continuous values).
    bins:
        For ``numeric`` attributes: ``arity + 1`` increasing bin
        edges; raw value ``x`` encodes to the bin containing it
        (values outside the edges clamp into the first/last bin).
    labels:
        Optional human-readable value names (``arity`` of them).
    """

    name: str
    arity: int
    kind: str = "categorical"
    bins: tuple[float, ...] | None = None
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DimensionError(f"attribute name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "arity", int(self.arity))
        if self.arity < 2:
            raise DimensionError(
                f"attribute {self.name!r} needs arity >= 2, got {self.arity}"
            )
        if self.kind not in ATTRIBUTE_KINDS:
            raise DimensionError(
                f"attribute {self.name!r} has unknown kind {self.kind!r} "
                f"(expected one of {ATTRIBUTE_KINDS})"
            )
        if self.bins is not None:
            bins = tuple(float(b) for b in self.bins)
            if len(bins) != self.arity + 1:
                raise DimensionError(
                    f"attribute {self.name!r} needs {self.arity + 1} bin "
                    f"edges for arity {self.arity}, got {len(bins)}"
                )
            if any(a >= b for a, b in zip(bins, bins[1:])):
                raise DimensionError(
                    f"attribute {self.name!r} bin edges must strictly "
                    f"increase, got {bins}"
                )
            object.__setattr__(self, "bins", bins)
        elif self.kind == "numeric":
            raise DimensionError(
                f"numeric attribute {self.name!r} needs bin edges"
            )
        if self.labels is not None:
            labels = tuple(str(v) for v in self.labels)
            if len(labels) != self.arity:
                raise DimensionError(
                    f"attribute {self.name!r} needs {self.arity} labels, "
                    f"got {len(labels)}"
                )
            object.__setattr__(self, "labels", labels)

    @property
    def is_binary(self) -> bool:
        return self.arity == 2

    # ------------------------------------------------------------------
    def encode(self, values) -> np.ndarray:
        """Raw column values → integer codes in ``range(arity)``.

        Numeric values are binned against ``bins`` (clamped into the
        outermost bins); labelled categorical/ordinal values map
        through ``labels``; bare integers are validated as codes.
        """
        values = np.asarray(values)
        if self.kind == "numeric":
            edges = np.asarray(self.bins, dtype=np.float64)
            codes = np.searchsorted(edges, values.astype(np.float64), side="right") - 1
            return np.clip(codes, 0, self.arity - 1).astype(np.int64)
        if self.labels is not None and values.dtype.kind in ("U", "S", "O"):
            lookup = {label: i for i, label in enumerate(self.labels)}
            try:
                return np.asarray(
                    [lookup[str(v)] for v in values.ravel()], dtype=np.int64
                ).reshape(values.shape)
            except KeyError as exc:
                raise DimensionError(
                    f"attribute {self.name!r} has no value {exc.args[0]!r} "
                    f"(labels: {self.labels})"
                ) from None
        codes = values.astype(np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self.arity):
            raise DimensionError(
                f"attribute {self.name!r} codes outside range({self.arity})"
            )
        return codes

    def decode(self, codes) -> np.ndarray:
        """Integer codes → representative values.

        Labels when present, bin midpoints for numeric attributes,
        the codes themselves otherwise.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self.arity):
            raise DimensionError(
                f"attribute {self.name!r} codes outside range({self.arity})"
            )
        if self.labels is not None:
            return np.asarray(self.labels, dtype=object)[codes]
        if self.kind == "numeric":
            edges = np.asarray(self.bins, dtype=np.float64)
            mids = (edges[:-1] + edges[1:]) / 2.0
            return mids[codes]
        return codes

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        blob = {"name": self.name, "arity": self.arity, "kind": self.kind}
        if self.bins is not None:
            blob["bins"] = list(self.bins)
        if self.labels is not None:
            blob["labels"] = list(self.labels)
        return blob

    @classmethod
    def from_json(cls, blob: dict) -> "Attribute":
        return cls(
            name=blob["name"],
            arity=int(blob["arity"]),
            kind=blob.get("kind", "categorical"),
            bins=tuple(blob["bins"]) if blob.get("bins") is not None else None,
            labels=(
                tuple(blob["labels"])
                if blob.get("labels") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class Domain:
    """An ordered schema of mixed-type attributes.

    Immutable and hashable; equality compares the full attribute
    specs.  Index with an integer (position) or a string (name).
    """

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        attributes = tuple(self.attributes)
        for attr in attributes:
            if not isinstance(attr, Attribute):
                raise DimensionError(
                    f"Domain entries must be Attribute, got {type(attr).__name__}"
                )
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise DimensionError(f"duplicate attribute names in {names}")
        object.__setattr__(self, "attributes", attributes)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def binary(cls, num_attributes: int, names=None) -> "Domain":
        """The all-binary domain the legacy pipeline assumes."""
        names = names or [f"a{j}" for j in range(num_attributes)]
        return cls(tuple(Attribute(str(n), 2) for n in names))

    @classmethod
    def from_arities(cls, arities, names=None, kinds=None) -> "Domain":
        """A plain categorical domain from per-attribute arities."""
        arities = tuple(int(b) for b in arities)
        names = names or [f"a{j}" for j in range(len(arities))]
        kinds = kinds or ["categorical"] * len(arities)
        if len(names) != len(arities) or len(kinds) != len(arities):
            raise DimensionError(
                f"{len(arities)} arities but {len(names)} names / "
                f"{len(kinds)} kinds"
            )
        return cls(
            tuple(
                Attribute(str(n), b, kind=k)
                for n, b, k in zip(names, arities, kinds)
            )
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __getitem__(self, key) -> Attribute:
        if isinstance(key, str):
            for attr in self.attributes:
                if attr.name == key:
                    return attr
            raise DimensionError(
                f"domain has no attribute {key!r} (names: {self.names})"
            )
        return self.attributes[key]

    def index(self, name: str) -> int:
        for j, attr in enumerate(self.attributes):
            if attr.name == name:
                return j
        raise DimensionError(
            f"domain has no attribute {name!r} (names: {self.names})"
        )

    # ------------------------------------------------------------------
    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arities(self) -> tuple[int, ...]:
        return tuple(a.arity for a in self.attributes)

    @property
    def is_binary(self) -> bool:
        """True when every attribute is binary — the legacy domain."""
        return all(a.arity == 2 for a in self.attributes)

    def size(self, attrs=None) -> int:
        """Cells of the (marginal) contingency table over ``attrs``."""
        if attrs is None:
            return math.prod(self.arities)
        return math.prod(self.attributes[a].arity for a in self.attr_set(attrs))

    def attr_set(self, attrs) -> AttrSet:
        """Canonicalize ``attrs`` (indices or names) with arities attached."""
        resolved = [
            self.index(a) if isinstance(a, str) else int(a) for a in attrs
        ]
        items = AttrSet(resolved, self.num_attributes)
        return items.with_arities(self.attributes[a].arity for a in items)

    # ------------------------------------------------------------------
    def encode_records(self, columns) -> np.ndarray:
        """Raw per-attribute columns → an ``(N, d)`` int64 code matrix.

        ``columns`` is a mapping (by attribute name) or a sequence (by
        position) of raw value arrays; each goes through its
        attribute's :meth:`Attribute.encode`.
        """
        if hasattr(columns, "keys"):
            columns = [columns[a.name] for a in self.attributes]
        columns = list(columns)
        if len(columns) != self.num_attributes:
            raise DimensionError(
                f"{len(columns)} columns for {self.num_attributes} attributes"
            )
        encoded = [
            attr.encode(col) for attr, col in zip(self.attributes, columns)
        ]
        return np.stack(encoded, axis=1)

    def decode_records(self, codes) -> dict[str, np.ndarray]:
        """An ``(N, d)`` code matrix → per-attribute decoded columns."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.num_attributes:
            raise DimensionError(
                f"codes must be (N, {self.num_attributes}), got {codes.shape}"
            )
        return {
            attr.name: attr.decode(codes[:, j])
            for j, attr in enumerate(self.attributes)
        }

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {"attributes": [a.to_json() for a in self.attributes]}

    @classmethod
    def from_json(cls, blob: dict) -> "Domain":
        attributes = blob["attributes"]
        if not isinstance(attributes, (list, tuple)):
            raise DimensionError(
                f"domain schema 'attributes' must be a list, "
                f"got {type(attributes).__name__}"
            )
        return cls(tuple(Attribute.from_json(a) for a in attributes))

    def __repr__(self) -> str:
        spec = ", ".join(f"{a.name}:{a.arity}" for a in self.attributes)
        return f"Domain({spec})"


def as_domain(domain, num_attributes: int | None = None) -> Domain:
    """Coerce ``domain`` into a :class:`Domain`.

    Accepts a :class:`Domain` (pass-through), a sequence of arities, a
    JSON blob as produced by :meth:`Domain.to_json`, or ``None`` (with
    ``num_attributes``: the binary domain of that width).
    """
    if isinstance(domain, Domain):
        return domain
    if domain is None:
        if num_attributes is None:
            raise DimensionError("as_domain(None) needs num_attributes")
        return Domain.binary(num_attributes)
    if isinstance(domain, dict):
        return Domain.from_json(domain)
    return Domain.from_arities(domain)
