"""Bit-plane packed datasets for mixed categorical domains.

The binary kernels (:mod:`repro.kernels.packed`) store one bit row
per attribute.  A :class:`PackedCategoricalDataset` generalises this
to arbitrary arities by *bit-slicing each attribute's code*: an
attribute with arity ``b`` is stored as ``ceil(log2(b))`` packed
binary bit-planes (LSB first), so the whole dataset is one
``(sum_j nbits_j, ceil(N/64))`` uint64 array — the same layout the
binary transpose-histogram kernel streams over.

Marginal extraction reuses that kernel end to end.  For a target
attribute set whose planes total ``B <= 8`` bits, one
:func:`~repro.kernels.packed.bit_histogram` pass yields counts over
the ``2**B`` binary-coded cells; a cached fold map then collapses each
binary code ``(digit_0 | digit_1 << nbits_0 | ...)`` onto its
mixed-radix cell ``sum_j digit_j * stride_j``, dropping the invalid
codes (``digit_j >= b_j``), which hold zero records by construction.
Wider targets fall back to a chunked unpack + ``bincount`` — still
streaming, still exact.

Results are **bitwise identical** to the naive
:meth:`repro.categorical.dataset.CategoricalDataset.marginal` path —
property-tested in ``tests/kernels/test_packed_cat.py``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro import obs
from repro.categorical.indexing import strides, table_size
from repro.categorical.table import CategoricalMarginalTable
from repro.exceptions import DimensionError
from repro.kernels.packed import DEFAULT_CHUNK_WORDS, bit_histogram, pack_columns
from repro.marginals.attrs import AttrSet
from repro.marginals.domain import Domain, as_domain


def plane_count(arity: int) -> int:
    """Bit-planes needed for codes in ``range(arity)``."""
    return max(1, (int(arity) - 1).bit_length())


@functools.lru_cache(maxsize=4096)
def _code_fold(sel_arities: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Map binary bit-plane codes onto mixed-radix cells.

    For selected arities ``(b_0, ..., b_{m-1})`` with plane widths
    ``nb_j``, returns ``(valid, cell)``: the binary codes whose every
    digit is in range, and the mixed-radix cell each folds onto.
    """
    nbits = [plane_count(b) for b in sel_arities]
    total_bits = sum(nbits)
    codes = np.arange(1 << total_bits, dtype=np.int64)
    cell = np.zeros(codes.size, dtype=np.int64)
    ok = np.ones(codes.size, dtype=bool)
    cell_strides = strides(sel_arities)
    offset = 0
    for b, nb, stride in zip(sel_arities, nbits, cell_strides):
        digit = (codes >> offset) & ((1 << nb) - 1)
        ok &= digit < b
        cell += digit * stride
        offset += nb
    valid = np.flatnonzero(ok)
    out_cell = cell[valid]
    valid.setflags(write=False)
    out_cell.setflags(write=False)
    return valid, out_cell


class PackedCategoricalDataset:
    """A bit-plane packed ``N x d`` mixed categorical dataset.

    Drop-in for :class:`~repro.categorical.dataset.CategoricalDataset`
    in every marginal-extraction role (``num_records``,
    ``num_attributes``, ``arities``, ``marginal``), with bitwise
    identical results.  For an all-binary domain the layout reduces
    exactly to :class:`~repro.kernels.packed.PackedDataset`'s.

    Parameters
    ----------
    words:
        ``(sum_j nbits_j, ceil(N/64))`` uint64 bit-plane rows, as
        built by :meth:`from_array`; padding bits past ``N`` are zero.
    num_records:
        ``N``.
    domain:
        The :class:`~repro.marginals.domain.Domain` (or arities /
        JSON blob accepted by :func:`~repro.marginals.domain.as_domain`).
    """

    def __init__(
        self,
        words: np.ndarray,
        num_records: int,
        domain,
        name: str = "packed-cat",
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ):
        self.domain = as_domain(domain)
        words = np.ascontiguousarray(words, dtype=np.uint64)
        nbits = [plane_count(b) for b in self.domain.arities]
        offsets = np.concatenate([[0], np.cumsum(nbits)])
        if words.ndim != 2 or words.shape[0] != offsets[-1]:
            raise DimensionError(
                f"words shape {words.shape} inconsistent with domain "
                f"{self.domain!r} ({offsets[-1]} bit-planes)"
            )
        if num_records < 0 or words.shape[1] != (num_records + 63) // 64:
            raise DimensionError(
                f"words shape {words.shape} inconsistent with N={num_records}"
            )
        if chunk_words < 1:
            raise DimensionError(f"chunk_words must be >= 1, got {chunk_words}")
        self._words = words
        self._num_records = int(num_records)
        self._nbits = tuple(nbits)
        self._offsets = tuple(int(o) for o in offsets[:-1])
        self.name = name
        self.chunk_words = int(chunk_words)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_array(
        cls,
        data,
        domain,
        name: str = "packed-cat",
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ) -> "PackedCategoricalDataset":
        """Pack an ``(N, d)`` integer code matrix against ``domain``."""
        domain = as_domain(domain)
        arr = np.asarray(data, dtype=np.int64)
        if arr.ndim != 2:
            raise DimensionError(f"data must be 2-D, got shape {arr.shape}")
        if arr.shape[1] != domain.num_attributes:
            raise DimensionError(
                f"data has {arr.shape[1]} columns, domain has "
                f"{domain.num_attributes} attributes"
            )
        planes = []
        for j, b in enumerate(domain.arities):
            column = arr[:, j]
            if column.size and (column.min() < 0 or column.max() >= b):
                raise DimensionError(
                    f"column {j} has values outside range({b})"
                )
            for k in range(plane_count(b)):
                planes.append((column >> k) & 1)
        with obs.span("kernel.pack"):
            words = pack_columns(
                np.stack(planes, axis=1).astype(np.uint8)
                if planes
                else np.zeros((arr.shape[0], 0), dtype=np.uint8)
            )
        return cls(words, arr.shape[0], domain, name=name, chunk_words=chunk_words)

    @classmethod
    def from_dataset(
        cls,
        dataset,
        domain=None,
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ) -> "PackedCategoricalDataset":
        """Pack a :class:`CategoricalDataset` (values already validated)."""
        domain = as_domain(
            domain
            if domain is not None
            else getattr(dataset, "domain", None) or dataset.arities
        )
        return cls.from_array(
            dataset.data,
            domain,
            name=getattr(dataset, "name", "packed-cat"),
            chunk_words=chunk_words,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        """The packed bit-plane rows (read-only view)."""
        view = self._words.view()
        view.setflags(write=False)
        return view

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_attributes(self) -> int:
        return self.domain.num_attributes

    @property
    def arities(self) -> tuple[int, ...]:
        return self.domain.arities

    def __len__(self) -> int:
        return self._num_records

    def __repr__(self) -> str:
        return (
            f"PackedCategoricalDataset(name={self.name!r}, "
            f"N={self.num_records}, arities={self.arities})"
        )

    def _plane_rows(self, attrs) -> tuple[list[int], tuple[int, ...]]:
        """Bit-plane row indices (LSB-first, attr-major) for ``attrs``."""
        rows: list[int] = []
        sel_arities = []
        for a in attrs:
            rows.extend(range(self._offsets[a], self._offsets[a] + self._nbits[a]))
            sel_arities.append(self.arities[a])
        return rows, tuple(sel_arities)

    def unpacked(self) -> np.ndarray:
        """The dataset back as an ``(N, d)`` int64 code matrix."""
        from repro.kernels.packed import unpack_columns

        bits = unpack_columns(self._words, self._num_records)
        out = np.zeros((self._num_records, self.num_attributes), dtype=np.int64)
        for j in range(self.num_attributes):
            for k in range(self._nbits[j]):
                out[:, j] |= bits[:, self._offsets[j] + k].astype(np.int64) << k
        return out

    # ------------------------------------------------------------------
    # Marginals
    # ------------------------------------------------------------------
    def cell_counts(self, attrs) -> np.ndarray:
        """Exact mixed-radix cell counts of the marginal over ``attrs``."""
        attrs = AttrSet(attrs, self.num_attributes)
        rows, sel_arities = self._plane_rows(attrs)
        size = table_size(sel_arities)
        with obs.span("kernel.marginal"):
            if not rows:
                counts = np.array([float(self._num_records)])
            elif len(rows) <= 8:
                codes = bit_histogram(
                    self._words[rows], self._num_records, self.chunk_words
                )
                valid, cell = _code_fold(sel_arities)
                counts = np.zeros(size)
                np.add.at(counts, cell, codes[valid])
            else:
                counts = self._wide_counts(rows, sel_arities)
        obs.incr("kernel.packed_cat_marginals")
        return counts

    def _wide_counts(self, rows, sel_arities) -> np.ndarray:
        """Chunked unpack + bincount for targets wider than 8 planes."""
        cell_strides = strides(sel_arities)
        counts = np.zeros(table_size(sel_arities), dtype=np.int64)
        nwords = self._words.shape[1]
        plane_rows = self._words[rows]
        nbits = [plane_count(b) for b in sel_arities]
        for start in range(0, nwords, self.chunk_words):
            stop = min(start + self.chunk_words, nwords)
            bits = np.unpackbits(
                np.ascontiguousarray(plane_rows[:, start:stop]).view(np.uint8),
                axis=1,
                bitorder="little",
            )
            lo = start * 64
            hi = min(stop * 64, self._num_records)
            if hi <= lo:
                break
            bits = bits[:, : hi - lo]
            idx = np.zeros(bits.shape[1], dtype=np.int64)
            row = 0
            for nb, stride in zip(nbits, cell_strides):
                digit = np.zeros(bits.shape[1], dtype=np.int64)
                for k in range(nb):
                    digit |= bits[row + k].astype(np.int64) << k
                idx += digit * stride
                row += nb
            counts += np.bincount(idx, minlength=counts.size)
        return counts.astype(np.float64)

    def marginal(self, attrs) -> CategoricalMarginalTable:
        """The exact (non-private) marginal table over ``attrs``.

        Bitwise identical to ``CategoricalDataset.marginal`` on the
        same records.
        """
        attrs = AttrSet(attrs, self.num_attributes)
        _, sel_arities = self._plane_rows(attrs)
        return CategoricalMarginalTable(
            tuple(attrs), sel_arities, self.cell_counts(attrs)
        )

    def marginals(self, attr_sets) -> list[CategoricalMarginalTable]:
        return [self.marginal(attrs) for attrs in attr_sets]


def as_packed_categorical(
    dataset, domain=None, chunk_words: int = DEFAULT_CHUNK_WORDS
):
    """``dataset`` as a :class:`PackedCategoricalDataset` (pass-through
    if already packed)."""
    if isinstance(dataset, PackedCategoricalDataset):
        return dataset
    return PackedCategoricalDataset.from_dataset(
        dataset, domain=domain, chunk_words=chunk_words
    )
