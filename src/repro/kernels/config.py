"""Process-wide defaults for the fit kernels.

``PriView`` resolves its ``workers`` / ``packed`` constructor defaults
here, so front-ends (the CLI's ``run --workers/--packed`` flags, test
harnesses) can switch every fit in the process onto the packed
kernels or a worker pool without threading parameters through each
experiment driver.
"""

from __future__ import annotations

from repro.exceptions import ReproError

_UNSET = object()

_DEFAULTS: dict = {"workers": None, "packed": False}


def set_fit_defaults(workers=_UNSET, packed=_UNSET) -> dict:
    """Update the process-wide fit defaults; returns the previous ones.

    ``workers=None`` (the initial default) selects the legacy
    sequential noise stream; any integer switches fits onto
    per-view spawned streams (see ``docs/PERFORMANCE.md``).
    """
    previous = dict(_DEFAULTS)
    if workers is not _UNSET:
        if workers is not None and not isinstance(workers, int):
            raise ReproError(f"workers must be an int or None, got {workers!r}")
        _DEFAULTS["workers"] = workers
    if packed is not _UNSET:
        _DEFAULTS["packed"] = bool(packed)
    return previous


def fit_defaults() -> dict:
    """A copy of the current process-wide fit defaults."""
    return dict(_DEFAULTS)
