"""Bit-sliced datasets and popcount marginal kernels.

A :class:`PackedDataset` stores each of the ``d`` binary attribute
columns as a row of ``ceil(N / 64)`` uint64 words — record ``r``'s
value for attribute ``j`` is bit ``r % 64`` of word ``r // 64`` of row
``j`` (little-endian bit order).  This is 8x smaller than the uint8
matrix and lets the marginal kernel touch 64 records per machine word.

The ℓ-way marginal over ``attrs`` has two kernels:

1. **Transpose histogram** (``ℓ <= 8``, the common case — covering
   designs use views of width at most 8).  The packed bytes of the ℓ
   attribute columns are interleaved so that every group of 8 bytes is
   an 8x8 bit matrix (attribute x record) inside one uint64; three
   vectorized mask/shift steps (the classic 8x8 bit-matrix transpose)
   flip every group at once, after which byte ``i`` of each word *is*
   record ``i``'s cell index.  One ``np.bincount`` over the byte view
   finishes the marginal.  Cost is ~25 ufunc passes over ``N`` bytes
   per view — independent of ``2**ℓ`` — which beats both the uint8
   gather+bincount path and any per-subset popcount scheme.
2. **Subset (zeta) counts + Möbius** (``ℓ > 8``, and the public
   :meth:`PackedDataset.subset_counts` API).  For every ``S ⊆ attrs``
   count the records whose attributes in ``S`` are all 1 via a
   level-synchronous walk of the subset lattice — all ``C(ℓ, k)``
   size-``k`` subsets AND-combined from their size-``k-1`` parents in
   one vectorized ``bitwise_and`` per level, one batched row popcount
   (``np.bitwise_count``) each — then recover the ``2**ℓ`` cells by
   the superset-Möbius transform.

Both kernels stream over chunks of words (:data:`DEFAULT_CHUNK_WORDS`)
so their working sets stay cache-resident at any ``N``.

The result is **bitwise identical** to
:meth:`repro.marginals.dataset.BinaryDataset.marginal` (both count
exactly, in int-exact arithmetic) — property-tested in
``tests/kernels/test_packed.py``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro import obs
from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

#: Words per streaming chunk.  1024 words keeps both kernels' working
#: sets inside L2: the transpose histogram touches ~3 buffers of
#: ``8 * chunk`` bytes (~24 KiB), the zeta walk one 8 KiB mask per
#: subset at the widest lattice level (C(8, 4) = 70 → ~560 KiB).
#: Measured best or tied-best from N=200k to N=1M; larger chunks spill
#: to L3/DRAM and cost 10-50%.
DEFAULT_CHUNK_WORDS = 1024

#: 8x8 bit-matrix transpose as three vectorized mask/shift steps
#: (Hacker's Delight §7-3): each ``(keep, move, shift)`` swaps the
#: off-diagonal blocks at one granularity, so bit ``8a + b`` of every
#: uint64 ends up at position ``8b + a``.
_TRANSPOSE_STEPS = (
    (np.uint64(0xAA55AA55AA55AA55), np.uint64(0x00AA00AA00AA00AA), np.uint64(7)),
    (np.uint64(0xCCCC3333CCCC3333), np.uint64(0x0000CCCC0000CCCC), np.uint64(14)),
    (np.uint64(0xF0F0F0F00F0F0F0F), np.uint64(0x00000000F0F0F0F0), np.uint64(28)),
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

if not _HAS_BITWISE_COUNT:  # pragma: no cover - exercised via monkeypatch
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint64
    )


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across a uint64 array.

    Uses ``np.bitwise_count`` (numpy >= 2.0) when available, falling
    back to an 8-bit lookup table over the byte view otherwise — same
    result, roughly 3x slower, no extra dependency.
    """
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum(dtype=np.uint64))
    return int(_POPCOUNT_LUT[words.view(np.uint8)].sum(dtype=np.uint64))


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a contiguous 2-D uint64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1, dtype=np.uint64)
    return (
        _POPCOUNT_LUT[words.view(np.uint8)]
        .reshape(words.shape[0], -1)
        .sum(axis=1, dtype=np.uint64)
    )


@functools.lru_cache(maxsize=128)
def _lattice_levels(arity: int):
    """Combination-lattice wiring for the level-synchronous walk.

    For each level ``k >= 2``: ``(parent_index, new_rank, subset_bits)``
    arrays over the ``C(arity, k)`` size-``k`` subsets, where each
    subset extends parent ``parent_index`` (a row of level ``k-1``) by
    the attribute rank ``new_rank`` (always above the parent's maximum
    rank, so every subset is built exactly once).
    """
    levels = []
    prev = [(1 << j, j) for j in range(arity)]
    for _k in range(2, arity + 1):
        parent_index, new_rank, subset_bits, current = [], [], [], []
        for pi, (pbits, pmax) in enumerate(prev):
            for j in range(pmax + 1, arity):
                parent_index.append(pi)
                new_rank.append(j)
                subset_bits.append(pbits | (1 << j))
                current.append((pbits | (1 << j), j))
        levels.append(
            (
                np.asarray(parent_index),
                np.asarray(new_rank),
                np.asarray(subset_bits),
            )
        )
        prev = current
    return tuple(levels)


def pack_columns(data: np.ndarray) -> np.ndarray:
    """Pack an ``(N, d)`` 0/1 matrix into ``(d, ceil(N/64))`` words.

    Bit ``r % 64`` (little-endian) of word ``r // 64`` of row ``j``
    holds record ``r``'s value for attribute ``j``; the final word is
    zero-padded past ``N``.
    """
    arr = np.asarray(data, dtype=np.uint8)
    if arr.ndim != 2:
        raise DimensionError(f"data must be 2-D, got shape {arr.shape}")
    n, d = arr.shape
    nwords = (n + 63) // 64
    bits = np.packbits(np.ascontiguousarray(arr.T), axis=1, bitorder="little")
    nbytes = nwords * 8
    if bits.shape[1] < nbytes:
        bits = np.concatenate(
            [bits, np.zeros((d, nbytes - bits.shape[1]), np.uint8)], axis=1
        )
    return np.ascontiguousarray(bits).view(np.uint64)


def unpack_columns(words: np.ndarray, num_records: int) -> np.ndarray:
    """Inverse of :func:`pack_columns`: back to an ``(N, d)`` matrix."""
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
    )
    return np.ascontiguousarray(bits[:, :num_records].T)


def moebius_from_subset_counts(zeta: np.ndarray) -> np.ndarray:
    """Contingency cells from subset ("all ones") counts, in place.

    ``zeta[S]`` (subset encoded with attribute rank ``j`` as bit ``j``)
    counts records whose attributes in ``S`` are all 1, others free.
    The inverse superset-Möbius transform turns this into the cell
    counts under the library's cell convention.
    """
    size = zeta.size
    arity = size.bit_length() - 1
    idx = np.arange(size)
    for j in range(arity):
        bit = 1 << j
        lo = idx[(idx & bit) == 0]
        zeta[lo] -= zeta[lo | bit]
    return zeta


def bit_histogram(
    rows: np.ndarray,
    num_records: int,
    chunk_words: int = DEFAULT_CHUNK_WORDS,
) -> np.ndarray:
    """Counts over the ``2**m`` binary codes of ``m`` packed bit rows.

    ``rows`` is an ``(m, ceil(N/64))`` uint64 array (``m <= 8``) whose
    padding bits past ``N`` are zero; code bit ``j`` of record ``r`` is
    bit ``r`` of row ``j``.  This is the transpose-histogram kernel
    shared by the binary marginal path and the packed categorical
    bit-plane path (:mod:`repro.kernels.packed_cat`): interleave the
    packed bytes into 8x8 bit matrices, transpose each with
    :data:`_TRANSPOSE_STEPS`, and bincount the resulting per-record
    code bytes.  Padding records land on code 0 and are subtracted.
    """
    m = rows.shape[0]
    if not 0 < m <= 8:
        raise DimensionError(f"bit_histogram needs 1..8 rows, got {m}")
    counts = np.zeros(1 << m, dtype=np.int64)
    nwords = rows.shape[1]
    for start in range(0, nwords, chunk_words):
        stop = min(start + chunk_words, nwords)
        cols = np.ascontiguousarray(rows[:, start:stop]).view(np.uint8)
        interleaved = np.zeros((cols.shape[1], 8), dtype=np.uint8)
        interleaved[:, :m] = cols.T
        w = interleaved.view(np.uint64).ravel()
        for keep, move, shift in _TRANSPOSE_STEPS:
            w = (w & keep) | ((w & move) << shift) | ((w >> shift) & move)
        counts += np.bincount(w.view(np.uint8), minlength=counts.size)
    counts[0] -= nwords * 64 - num_records
    return counts.astype(np.float64)


class PackedDataset:
    """A bit-sliced ``N x d`` binary dataset.

    Drop-in for :class:`~repro.marginals.dataset.BinaryDataset` in
    every marginal-extraction role: exposes ``num_records``,
    ``num_attributes``, ``marginal``, ``marginals`` and
    ``attribute_means`` with identical (bitwise) results, at ~1/8th
    the memory and typically an order of magnitude faster extraction.

    Parameters
    ----------
    words:
        ``(d, ceil(N/64))`` uint64 array as built by
        :func:`pack_columns`.  Padding bits past ``N`` must be zero.
    num_records:
        ``N`` — recoverable neither from ``words``' shape alone nor
        from its content (trailing all-zero records are legal).
    name:
        Human-readable name used in reports.
    chunk_words:
        Streaming chunk width for the marginal kernel (see module
        docstring); mostly a tuning/testing knob.
    """

    def __init__(
        self,
        words: np.ndarray,
        num_records: int,
        name: str = "packed",
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ):
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise DimensionError(f"words must be 2-D, got shape {words.shape}")
        if num_records < 0 or words.shape[1] != (num_records + 63) // 64:
            raise DimensionError(
                f"words shape {words.shape} inconsistent with N={num_records}"
            )
        if chunk_words < 1:
            raise DimensionError(f"chunk_words must be >= 1, got {chunk_words}")
        self._words = words
        self._num_records = int(num_records)
        self.name = name
        self.chunk_words = int(chunk_words)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_array(
        cls,
        data,
        name: str = "packed",
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ) -> "PackedDataset":
        """Pack an ``(N, d)`` array of 0/1 values."""
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim != 2:
            raise DimensionError(f"data must be 2-D, got shape {arr.shape}")
        if arr.size and arr.max() > 1:
            raise DimensionError("data must contain only 0/1 values")
        with obs.span("kernel.pack"):
            words = pack_columns(arr)
        return cls(words, arr.shape[0], name=name, chunk_words=chunk_words)

    @classmethod
    def from_dataset(
        cls,
        dataset,
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ) -> "PackedDataset":
        """Pack a :class:`BinaryDataset` (values already validated)."""
        with obs.span("kernel.pack"):
            words = pack_columns(dataset.data)
        return cls(
            words,
            dataset.num_records,
            name=dataset.name,
            chunk_words=chunk_words,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        """The ``(d, ceil(N/64))`` uint64 words (read-only view)."""
        view = self._words.view()
        view.setflags(write=False)
        return view

    @property
    def num_records(self) -> int:
        """``N``, the number of tuples."""
        return self._num_records

    @property
    def num_attributes(self) -> int:
        """``d``, the number of binary attributes."""
        return self._words.shape[0]

    @property
    def num_words(self) -> int:
        """Words per column, ``ceil(N / 64)``."""
        return self._words.shape[1]

    def __len__(self) -> int:
        return self._num_records

    def __repr__(self) -> str:
        return (
            f"PackedDataset(name={self.name!r}, N={self.num_records}, "
            f"d={self.num_attributes})"
        )

    def unpacked(self) -> np.ndarray:
        """The dataset back as an ``(N, d)`` uint8 matrix."""
        return unpack_columns(self._words, self._num_records)

    def attribute_means(self) -> np.ndarray:
        """Per-attribute fraction of ones; handy for sanity checks."""
        if self._num_records == 0:
            return np.zeros(self.num_attributes)
        if _HAS_BITWISE_COUNT:
            ones = np.bitwise_count(self._words).sum(axis=1, dtype=np.uint64)
        else:
            ones = (
                _POPCOUNT_LUT[self._words.view(np.uint8)]
                .reshape(self.num_attributes, -1)
                .sum(axis=1, dtype=np.uint64)
            )
        return ones.astype(np.float64) / self._num_records

    # ------------------------------------------------------------------
    # Marginals
    # ------------------------------------------------------------------
    def subset_counts(self, attrs) -> np.ndarray:
        """Zeta counts: entry ``S`` counts records with ``attrs[S]`` all 1.

        Subsets are encoded with attribute rank ``j`` (within the
        sorted ``attrs``) as bit ``j``.  Entry 0 is ``N``.
        """
        attrs = AttrSet(attrs, self.num_attributes)
        arity = len(attrs)
        zeta = np.zeros(1 << arity, dtype=np.uint64)
        if arity == 0:
            zeta[0] = self._num_records
            return zeta.astype(np.float64)
        nwords = self.num_words
        chunk = self.chunk_words
        levels = _lattice_levels(arity)
        singleton_bits = np.asarray([1 << j for j in range(arity)])
        for start in range(0, nwords, chunk):
            stop = min(start + chunk, nwords)
            # Level 1: the attribute columns themselves, as one
            # contiguous (arity, width) block (fancy indexing copies).
            cols = self._words[list(attrs), start:stop]
            zeta[singleton_bits] += popcount_rows(cols)
            masks = cols
            for parent_index, new_rank, subset_bits in levels:
                # All size-k subsets off their size-(k-1) parents in a
                # single vectorized AND; subset bits are unique within
                # a level, so plain fancy-index accumulation is safe.
                masks = np.bitwise_and(masks[parent_index], cols[new_rank])
                zeta[subset_bits] += popcount_rows(masks)
        zeta = zeta.astype(np.float64)
        zeta[0] = self._num_records
        return zeta

    def _cell_histogram(self, attrs: AttrSet) -> np.ndarray:
        """Transpose-histogram kernel for ``arity <= 8``.

        Delegates to the shared :func:`bit_histogram` over the
        selected attribute rows; for binary attributes the per-record
        binary code *is* the cell index, so no further folding is
        needed (the packed categorical path folds bit-plane codes into
        mixed-radix cells on top of the same kernel).
        """
        return bit_histogram(
            self._words[list(attrs)], self._num_records, self.chunk_words
        )

    def cell_counts(self, attrs) -> np.ndarray:
        """Exact cell counts of the marginal over ``attrs``."""
        attrs = AttrSet(attrs, self.num_attributes)
        with obs.span("kernel.marginal"):
            if 0 < len(attrs) <= 8:
                counts = self._cell_histogram(attrs)
            else:
                counts = moebius_from_subset_counts(self.subset_counts(attrs))
        obs.incr("kernel.packed_marginals")
        return counts

    def marginal(self, attrs) -> MarginalTable:
        """The exact (non-private) marginal table over ``attrs``.

        Bitwise identical to ``BinaryDataset.marginal`` on the same
        records.
        """
        attrs = AttrSet(attrs, self.num_attributes)
        return MarginalTable(attrs, self.cell_counts(attrs))

    def marginals(self, attr_sets) -> list[MarginalTable]:
        """Exact marginals for every attribute set in ``attr_sets``."""
        return [self.marginal(attrs) for attrs in attr_sets]


def as_packed(dataset, chunk_words: int = DEFAULT_CHUNK_WORDS):
    """``dataset`` as a :class:`PackedDataset` (pass-through if already).

    :class:`BinaryDataset` instances cache the packed form on first
    use (see :meth:`BinaryDataset.packed`), so repeated fits don't
    re-pack.
    """
    if isinstance(dataset, PackedDataset):
        return dataset
    packer = getattr(dataset, "packed", None)
    if packer is not None:
        return packer(chunk_words=chunk_words)
    return PackedDataset.from_array(
        np.asarray(getattr(dataset, "data", dataset)), chunk_words=chunk_words
    )
