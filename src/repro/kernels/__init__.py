"""``repro.kernels`` — the fit hot path, made fast.

Three ingredients (see ``docs/PERFORMANCE.md`` for the full story):

* :class:`PackedDataset` — bit-sliced dataset (one uint64 word per 64
  records per attribute) with a popcount marginal kernel that is
  bitwise identical to ``BinaryDataset.marginal`` and roughly an
  order of magnitude faster, streaming over chunks of records.
* :class:`ParallelExecutor` + :func:`generate_noisy_views` — fans the
  per-view work of ``PriView.fit`` out over threads or processes with
  per-view ``SeedSequence.spawn`` child streams, so the synopsis is
  bit-identical for any worker count.
* :mod:`repro.kernels.indexcache` — introspection over the shared
  subset→index-map caches every projection, consistency pass and
  constraint builder draws from.

Front-ends set process-wide fit defaults through
:func:`set_fit_defaults` (the CLI's ``run --workers/--packed``).
"""

from repro.kernels.config import fit_defaults, set_fit_defaults
from repro.kernels.executor import (
    BACKENDS,
    ParallelExecutor,
    resolve_workers,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.kernels.fit import generate_noisy_views
from repro.kernels.packed import (
    DEFAULT_CHUNK_WORDS,
    PackedDataset,
    as_packed,
    bit_histogram,
    moebius_from_subset_counts,
    pack_columns,
    popcount_words,
    unpack_columns,
)
from repro.kernels.packed_cat import (
    PackedCategoricalDataset,
    as_packed_categorical,
    plane_count,
)
from repro.kernels import indexcache

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK_WORDS",
    "PackedCategoricalDataset",
    "PackedDataset",
    "ParallelExecutor",
    "as_packed",
    "as_packed_categorical",
    "bit_histogram",
    "plane_count",
    "fit_defaults",
    "generate_noisy_views",
    "indexcache",
    "moebius_from_subset_counts",
    "pack_columns",
    "popcount_words",
    "resolve_workers",
    "set_fit_defaults",
    "spawn_generators",
    "spawn_seed_sequences",
    "unpack_columns",
]
