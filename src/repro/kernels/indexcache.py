"""The shared projection-index cache, with introspection.

All subset→index arithmetic used across the pipeline — projections,
consistency updates, Ripple neighbour tables, reconstruction
constraint matrices — is memoised at the source in
:mod:`repro.marginals.projection`.  Consistency passes, the Ripple
loop, the maxent/lsq constraint builders and the serving engine all
hit the *same* process-wide caches, so identical index arrays are
built exactly once.

This module is the operational face of that cache: aggregate hit/miss
statistics (surfaced by ``QueryEngine.stats()`` and useful in traces)
and a reset hook for benchmarks that want cold-cache numbers.
"""

from __future__ import annotations

from repro.marginals import projection

#: name -> the memoised callable (all ``functools.lru_cache`` wrapped)
CACHED_KERNELS = {
    "projection_map": projection.projection_map,
    "subset_positions": projection.subset_positions,
    "projection_index": projection.projection_index,
    "constraint_matrix": projection.constraint_matrix,
    "cell_neighbours": projection.cell_neighbours,
}


def stats() -> dict:
    """Per-kernel cache counters plus aggregate hit/miss totals."""
    out: dict = {}
    hits = misses = entries = 0
    for name, fn in CACHED_KERNELS.items():
        info = fn.cache_info()
        out[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "entries": info.currsize,
            "maxsize": info.maxsize,
        }
        hits += info.hits
        misses += info.misses
        entries += info.currsize
    out["total"] = {"hits": hits, "misses": misses, "entries": entries}
    return out


def clear() -> None:
    """Drop every cached index array (for cold-cache benchmarking)."""
    for fn in CACHED_KERNELS.values():
        fn.cache_clear()
