"""Deterministic fan-out for the fit hot loop.

:class:`ParallelExecutor` maps a function over an item list with a
serial, thread-pool or process-pool backend.  Determinism is owned by
the *caller*, not the pool: work item ``i`` carries its own
pre-assigned RNG stream (see :func:`spawn_seed_sequences`), so the
result list is bit-identical for any worker count and any scheduling
order — the contract ``tests/kernels/test_parallel_fit.py`` locks in.

The process backend exists for multi-core hosts; it inherits the
dataset via fork (no per-task pickling of the data) using a pool
initializer.  Observability note: ledger draws recorded *inside* a
worker process never reach the parent's session, so callers that need
budget audits record draws themselves after collecting results — as
:meth:`repro.core.priview.PriView.generate_noisy_views` does.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exceptions import ReproError

#: Recognised backends; ``auto`` resolves to serial for <= 1 worker
#: and threads otherwise (numpy kernels release the GIL).
BACKENDS = ("auto", "serial", "thread", "process")


def spawn_seed_sequences(root: np.random.SeedSequence | int | None, n: int):
    """``n`` independent child seed sequences of ``root``.

    Children are assigned to work items by *index*, never by worker,
    which is what makes a parallel fit reproducible across pool sizes.
    """
    if not isinstance(root, np.random.SeedSequence):
        root = np.random.SeedSequence(root)
    return root.spawn(n)


def spawn_generators(root: np.random.SeedSequence | int | None, n: int):
    """``n`` independent :class:`numpy.random.Generator` streams."""
    return [np.random.default_rng(seq) for seq in spawn_seed_sequences(root, n)]


def resolve_workers(workers: int | None) -> int:
    """Effective pool width: ``None``/0 → 1, negative → cpu count."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return int(workers)


class ParallelExecutor:
    """Ordered, deterministic ``map`` over a worker pool.

    Parameters
    ----------
    workers:
        Pool width; ``None``, 0 or 1 run serially in the caller's
        thread, negative means "one per CPU".
    backend:
        ``auto`` (default), ``serial``, ``thread`` or ``process``.
        ``auto`` picks serial for an effective width of 1 and threads
        otherwise.
    initializer / initargs:
        Forwarded to the pool (process backend: runs once per worker —
        used to install shared read-only state post-fork).
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "auto",
        initializer=None,
        initargs=(),
    ):
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown executor backend {backend!r}; choose from {BACKENDS}"
            )
        self.workers = resolve_workers(workers)
        if backend == "auto":
            backend = "serial" if self.workers <= 1 else "thread"
        self.backend = backend
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._pool = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is not None:
            return self._pool
        if self.backend == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-fit",
                initializer=self._initializer,
                initargs=self._initargs,
            )
        elif self.backend == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def map(self, fn, items) -> list:
        """``[fn(item) for item in items]`` with the configured pool.

        Results keep the input order regardless of completion order.
        """
        items = list(items)
        if self.backend == "serial" or len(items) <= 1:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down (idempotent; serial backend is a no-op)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers}, backend={self.backend!r})"
