"""The parallel noisy-view fan-out used by ``PriView.fit``.

:func:`generate_noisy_views` extracts one marginal per design block
from a (packed or raw) dataset and adds the per-view Laplace noise,
fanning the blocks out over a :class:`ParallelExecutor`.

Determinism contract
--------------------
The root seed is spawned into one independent
``np.random.SeedSequence`` child per view, assigned by *view index*.
Worker count, backend and completion order therefore never change the
released synopsis: a fit with 1, 2 or 8 workers (threads or
processes) is bit-identical.  The streams differ from the legacy
sequential path (one generator drawn view after view), which
``PriView`` keeps as the default for backwards compatibility.

Budget accounting happens in the caller's process *after* the fan-out
(one ledger record per view), so audits hold even under the process
backend, where worker-side ``repro.obs`` calls would be invisible.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.kernels.executor import (
    ParallelExecutor,
    resolve_workers,
    spawn_seed_sequences,
)
from repro.marginals.table import MarginalTable

# Module global installed in pool workers (process backend only; the
# thread/serial paths close over the source directly).  Set once per
# worker by the pool initializer, read-only afterwards.
_WORKER_SOURCE = None


def _install_source(source) -> None:
    global _WORKER_SOURCE
    _WORKER_SOURCE = source


def _noisy_view(source, item) -> MarginalTable:
    """One view: exact marginal + per-view Laplace stream.

    Rebuilds through the table's own ``with_counts``, so binary
    (:class:`MarginalTable`) and categorical
    (:class:`~repro.categorical.table.CategoricalMarginalTable`)
    sources flow through the same fan-out unchanged.
    """
    block, scale, seed_seq = item
    table = source.marginal(block)
    if scale > 0.0:
        rng = np.random.default_rng(seed_seq)
        table = table.with_counts(
            table.counts + rng.laplace(loc=0.0, scale=scale, size=table.counts.shape)
        )
    return table


def _noisy_view_global(item) -> MarginalTable:
    """Picklable task for the process backend (source via initializer)."""
    return _noisy_view(_WORKER_SOURCE, item)


def generate_noisy_views(
    source,
    blocks,
    epsilon: float,
    sensitivity: float,
    root_seed,
    workers: int | None = None,
    backend: str = "auto",
) -> list[MarginalTable]:
    """Noisy marginal per block, deterministically, in parallel.

    Parameters
    ----------
    source:
        Anything exposing ``marginal(attrs) -> MarginalTable`` —
        a :class:`~repro.marginals.dataset.BinaryDataset` or the
        bit-sliced :class:`~repro.kernels.packed.PackedDataset`.
    blocks:
        The design's view attribute sets.
    epsilon / sensitivity:
        Laplace noise of scale ``sensitivity / epsilon`` per cell;
        ``epsilon = inf`` releases exact views.
    root_seed:
        Seed material (int, ``SeedSequence`` or None) spawned into one
        child stream per view.
    workers / backend:
        Pool configuration, see :class:`ParallelExecutor`.
    """
    blocks = list(blocks)
    num_views = len(blocks)
    scale = 0.0 if np.isinf(epsilon) else sensitivity / epsilon
    seqs = spawn_seed_sequences(root_seed, num_views)
    items = [(block, scale, seq) for block, seq in zip(blocks, seqs)]

    effective = resolve_workers(workers)
    resolved = backend
    if resolved == "auto":
        resolved = "serial" if effective <= 1 else "thread"
    if resolved == "process":
        executor = ParallelExecutor(
            workers, resolved, initializer=_install_source, initargs=(source,)
        )
        task = _noisy_view_global
    else:
        executor = ParallelExecutor(workers, resolved)

        def task(item):
            return _noisy_view(source, item)

    with executor:
        obs.set_gauge("fit.workers", executor.workers)
        views = executor.map(task, items)

    if scale > 0.0:
        for view in views:
            obs.record_draw(
                "laplace",
                epsilon=epsilon,
                sensitivity=sensitivity,
                scale=scale,
                draws=int(view.counts.size),
            )
    return views
