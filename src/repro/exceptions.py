"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionError(ReproError):
    """An attribute index or attribute set is incompatible with the data."""


class PrivacyBudgetError(ReproError):
    """A privacy budget was exhausted, negative, or misused."""


class DesignError(ReproError):
    """A covering design is malformed or cannot be constructed."""


class ReconstructionError(ReproError):
    """A marginal reconstruction failed to produce a usable table."""


class DatasetError(ReproError):
    """A dataset file is missing or malformed."""


class SynopsisFormatError(DatasetError):
    """A synopsis file uses an on-disk format this library cannot read.

    Raised in particular for *forward* incompatibility: a file written
    by a newer library version than the one loading it.
    """


class SynopsisIntegrityError(DatasetError):
    """A synopsis artifact failed an integrity check.

    The file exists but its bytes do not decode, or a recorded sha256
    digest does not match the payload — the artifact is corrupt and
    must not be served.
    """


class StoreError(ReproError):
    """A synopsis-store operation failed (unknown entry, bad spec,
    lock timeout, ...)."""


class LedgerError(ReproError):
    """A privacy-budget ledger audit failed or the ledger was misused."""


class SynthesisError(ReproError):
    """Record-level synthesis could not run (no views, bad domain,
    invalid sampling request)."""


class QueryError(ReproError):
    """A served marginal query was malformed or unanswerable."""


class QueryTimeoutError(QueryError):
    """A served marginal query missed its deadline."""


class RemoteQueryError(QueryError):
    """A query rejected by a remote marginal server.

    Carries the structured error body the server returned so callers
    can branch on the original error type and correlate with server
    logs via the request/trace ids, instead of string-matching a
    flattened message.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int,
        error_type: str | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.request_id = request_id
        self.trace_id = trace_id


class RemoteQueryTimeoutError(RemoteQueryError, QueryTimeoutError):
    """A remote marginal query missed its server-side deadline."""
