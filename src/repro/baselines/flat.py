"""The Flat method (paper Section 3.1).

Add ``Lap(1/epsilon)`` to every cell of the full contingency table and
answer marginals by summation.  ESE is ``2**d * V_u`` (Equation 3) —
excellent for small ``d``, hopeless beyond a couple dozen dimensions,
where only the analytic expected error is computable (the paper plots
exactly that for d=32/45, capped at 1 to credit non-negativity
correction, Section 5.2).
"""

from __future__ import annotations

import math

from repro.baselines.base import MarginalReleaseMechanism
from repro.core.nonnegativity import apply_nonnegativity
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import laplace_variance, noisy_counts


class FlatMethod(MarginalReleaseMechanism):
    """Noisy full contingency table; feasible for d <= 24 only.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    nonnegativity:
        Optional post-processing of reconstructed marginals
        (``"none"`` | ``"simple"`` | ``"global"`` | ``"ripple"``); the
        paper's large-d estimate caps the expected error at 1 to
        account for such corrections.
    """

    name = "Flat"

    def __init__(
        self, epsilon: float, nonnegativity: str = "none", seed: int | None = None
    ):
        super().__init__(epsilon, seed)
        self.nonnegativity = nonnegativity

    def _fit(self, dataset: BinaryDataset) -> None:
        table = FullContingencyTable.from_dataset(dataset)
        table.counts = noisy_counts(table.counts, self.epsilon, 1.0, self._rng)
        self._table = table

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        result = self._table.marginal(attrs)
        apply_nonnegativity(result, self.nonnegativity)
        return result


def flat_expected_squared_error(num_attributes: int, epsilon: float) -> float:
    """Equation 3: ESE of any marginal under Flat is ``2**d * V_u``."""
    return (2.0**num_attributes) * laplace_variance(1.0 / epsilon)


def flat_expected_normalized_l2(
    num_attributes: int,
    epsilon: float,
    num_records: float,
    cap: float | None = 1.0,
) -> float:
    """Expected normalised L2 error of Flat, capped like the paper.

    ``sqrt(ESE) / N``; Section 5.2 caps the plotted value at 1 because
    errors beyond the table's own mass would largely be removed by
    non-negativity correction.
    """
    value = math.sqrt(flat_expected_squared_error(num_attributes, epsilon))
    value /= float(num_records)
    if cap is not None:
        value = min(value, cap)
    return value
