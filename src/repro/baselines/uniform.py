"""The Uniform baseline (Section 5, Evaluation Methodology).

Always answers with the uniform marginal scaled to a (noisy) total
count.  A method that does not beat Uniform carries no information
about the data — the paper plots it as the floor of meaningfulness.
"""

from __future__ import annotations

from repro.baselines.base import MarginalReleaseMechanism
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import noisy_counts


class UniformMethod(MarginalReleaseMechanism):
    """Returns uniformly distributed marginals with the dataset's total."""

    name = "Uniform"

    def _fit(self, dataset: BinaryDataset) -> None:
        import numpy as np

        # Spend the budget on the one number we use: the total count.
        self._total = float(
            noisy_counts(
                np.array([float(dataset.num_records)]), self.epsilon, 1.0, self._rng
            )[0]
        )
        self._total = max(self._total, 0.0)

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        return MarginalTable.uniform(attrs, self._total)
