"""The matrix mechanism (Li et al., PODS 2010) — paper Section 3.5.

The workload ``W`` is the stack of all k-way marginal cell queries over
the ``2**d`` domain.  A strategy matrix ``A`` is measured with Laplace
noise scaled to its L1 (column) sensitivity, and the workload answers
are ``W A^+ (A x + noise)``, giving expected total squared error

    err(A, W) = (2 / eps**2) * ||A||_1^2 * ||W A^+||_F^2.

Finding the optimal ``A`` is a semidefinite program that is utterly
infeasible (the paper: O(2**{3d} ...)), so — exactly like the paper —
we evaluate *approximations* by examining their strategy matrices:

* ``identity``  — measure every domain cell (the Flat strategy);
* ``workload``  — measure the workload itself (the Direct strategy);
* ``fourier``   — the weight-<=k Walsh-Hadamard rows;
* ``eigen``     — the eigen-design of Li & Miklau (PVLDB 2012):
  measure the eigenvectors of ``W^T W`` weighted by their eigenvalues.

This mechanism reports expected errors analytically (the paper plots
"the expected error variance by examining the strategy matrix") and
can also sample a concrete release for small ``d``.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro import obs
from repro.baselines.base import MarginalReleaseMechanism
from repro.exceptions import ReconstructionError
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.dataset import BinaryDataset
from repro.marginals.projection import projection_map
from repro.marginals.table import MarginalTable

STRATEGIES = ("identity", "workload", "fourier", "eigen")


def marginal_workload_matrix(num_attributes: int, k: int) -> np.ndarray:
    """All k-way marginal cell queries as 0/1 rows over the 2**d domain."""
    d = num_attributes
    n = 1 << d
    rows = []
    for attrs in itertools.combinations(range(d), k):
        pmap = projection_map(d, attrs)
        block = np.zeros((1 << k, n))
        block[pmap, np.arange(n)] = 1.0
        rows.append(block)
    return np.vstack(rows)


def _fourier_strategy(num_attributes: int, k: int) -> np.ndarray:
    d = num_attributes
    n = 1 << d
    weights = np.bitwise_count(np.arange(n, dtype=np.uint64)).astype(np.int64)
    released = np.flatnonzero(weights <= k)
    rows = np.empty((released.size, n))
    for i, beta in enumerate(released):
        bits = np.bitwise_count(
            np.bitwise_and(np.arange(n, dtype=np.uint64), np.uint64(beta))
        ).astype(np.int64)
        rows[i] = 1.0 - 2.0 * (bits & 1)
    return rows


def _eigen_strategy(workload: np.ndarray) -> np.ndarray:
    """Li & Miklau's eigen-design approximation: A = diag(sqrt(lam)) V^T."""
    gram = workload.T @ workload
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    keep = eigenvalues > 1e-9 * eigenvalues.max()
    scales = np.sqrt(np.sqrt(eigenvalues[keep]))
    return (eigenvectors[:, keep] * scales).T


def strategy_matrix(
    name: str, num_attributes: int, k: int, workload: np.ndarray | None = None
) -> np.ndarray:
    """Build one of the supported strategy matrices."""
    if name == "identity":
        return np.eye(1 << num_attributes)
    if name == "workload":
        return (
            workload
            if workload is not None
            else marginal_workload_matrix(num_attributes, k)
        )
    if name == "fourier":
        return _fourier_strategy(num_attributes, k)
    if name == "eigen":
        if workload is None:
            workload = marginal_workload_matrix(num_attributes, k)
        return _eigen_strategy(workload)
    raise ReconstructionError(f"unknown strategy {name!r}; choose from {STRATEGIES}")


def expected_total_squared_error(
    workload: np.ndarray, strategy: np.ndarray, epsilon: float
) -> float:
    """(2/eps^2) * ||A||_1^2 * ||W A^+||_F^2 — summed over all queries."""
    sensitivity = float(np.abs(strategy).sum(axis=0).max())
    pinv = np.linalg.pinv(strategy)
    reconstruction = workload @ pinv
    frob2 = float((reconstruction**2).sum())
    return 2.0 / (epsilon**2) * sensitivity**2 * frob2


def expected_per_marginal_ese(
    num_attributes: int, k: int, epsilon: float, strategy: str = "eigen"
) -> float:
    """Expected ESE per k-way marginal under the given strategy."""
    workload = marginal_workload_matrix(num_attributes, k)
    a = strategy_matrix(strategy, num_attributes, k, workload)
    total = expected_total_squared_error(workload, a, epsilon)
    return total / math.comb(num_attributes, k)


class MatrixMechanism(MarginalReleaseMechanism):
    """Concrete matrix-mechanism release for small ``d``.

    Measures the chosen strategy with Laplace noise and answers each
    marginal from the least-squares domain estimate
    ``x_hat = A^+ y``.
    """

    name = "MatrixMechanism"

    def __init__(
        self,
        epsilon: float,
        k: int,
        strategy: str = "eigen",
        seed: int | None = None,
    ):
        super().__init__(epsilon, seed)
        self.k = int(k)
        self.strategy_name = strategy

    def _fit(self, dataset: BinaryDataset) -> None:
        d = dataset.num_attributes
        workload = marginal_workload_matrix(d, self.k)
        a = strategy_matrix(self.strategy_name, d, self.k, workload)
        x = FullContingencyTable.from_dataset(dataset).counts
        sensitivity = float(np.abs(a).sum(axis=0).max())
        answers = a @ x
        if not np.isinf(self.epsilon):
            answers = answers + self._rng.laplace(
                scale=sensitivity / self.epsilon, size=answers.size
            )
            # One measurement of the whole strategy consumes the full
            # epsilon (sensitivity is already folded into the scale).
            obs.record_draw(
                "laplace",
                epsilon=self.epsilon,
                sensitivity=sensitivity,
                scale=sensitivity / self.epsilon,
                draws=int(answers.size),
                divide_by_sensitivity=False,
                label="strategy_measurement",
            )
        x_hat = np.linalg.pinv(a) @ answers
        self._table = FullContingencyTable(d, x_hat)

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        return self._table.marginal(attrs)
