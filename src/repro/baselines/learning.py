"""Learning-based marginal release — paper Section 3.7.

The line of work of Gupta et al. (STOC 2011) and Thaler, Ullman &
Vadhan (ICALP 2012) answers conjunction/marginal queries by learning a
low-degree polynomial approximation of the query function: every k-way
marginal cell is approximated by its degree-``t`` truncated Fourier
(parity) expansion, with ``t ~ C sqrt(k) log(1/gamma)`` chosen from the
accuracy parameter ``gamma``.  Only the ``m_t = sum_{j<=t} C(d, j)``
parities of weight at most ``t`` are released (with Laplace noise),
so the release trades an *approximation error* that shrinks with
``t`` against a *noise error* that grows with ``m_t`` — exactly the
tension Figure 1 probes with gamma in {1/2, 1/4, 1/8} (Learning1..3)
and a noise-free variant showing the pure approximation error.

Implementation note: our degree rule is ``t = max(1, min(k, round(
sqrt(k) * log2(1/gamma))))`` with the paper's constant C = 1; the
qualitative behaviour (approximation error dominating, noise taking
over as gamma shrinks) is what the paper's figure demonstrates.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.baselines.base import MarginalReleaseMechanism
from repro.baselines.fourier import fourier_coefficient_count, walsh_hadamard
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable


def degree_for_gamma(k: int, gamma: float, constant: float = 1.0) -> int:
    """The theory's degree rule ``t = C sqrt(k) log2(1/gamma)``, clamped."""
    raw = constant * math.sqrt(k) * math.log2(1.0 / gamma)
    return max(1, min(k, round(raw)))


class LearningMethod(MarginalReleaseMechanism):
    """Degree-``t`` truncated-parity approximation of k-way marginals.

    Parameters
    ----------
    epsilon:
        Budget for the released parities (``inf`` = approximation-only,
        the paper's green-star variant).
    k:
        Arity of the target marginals.
    gamma:
        Accuracy parameter; smaller gamma = higher degree = less
        approximation error but more noise.
    """

    name = "Learning"

    def __init__(
        self,
        epsilon: float,
        k: int,
        gamma: float = 0.5,
        constant: float = 1.0,
        seed: int | None = None,
    ):
        super().__init__(epsilon, seed)
        self.k = int(k)
        self.gamma = float(gamma)
        self.degree = degree_for_gamma(self.k, self.gamma, constant)

    def _fit(self, dataset: BinaryDataset) -> None:
        self._dataset = dataset
        self._m = fourier_coefficient_count(dataset.num_attributes, self.degree)
        self._cache: dict[tuple[int, ...], MarginalTable] = {}

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        if attrs not in self._cache:
            true = self._dataset.marginal(attrs)
            theta = walsh_hadamard(true.counts)
            weights = np.bitwise_count(
                np.arange(true.size, dtype=np.uint64)
            ).astype(np.int64)
            # Truncate: parities above the learned degree are unknown
            # to the mechanism and estimated as zero.
            theta[weights > self.degree] = 0.0
            kept = weights <= self.degree
            if not np.isinf(self.epsilon):
                # Lazily sampled release: attribute the query-time draw
                # to a named (non-strict) scope, like Direct/Fourier.
                with obs.budget_scope(
                    f"{self.name}.lazy_release", self.epsilon, strict=False
                ):
                    theta[kept] += self._rng.laplace(
                        scale=self._m / self.epsilon, size=int(kept.sum())
                    )
                    obs.record_draw(
                        "laplace",
                        epsilon=self.epsilon,
                        sensitivity=self._m,
                        scale=self._m / self.epsilon,
                        draws=int(kept.sum()),
                        label="learning_coefficients",
                    )
            counts = walsh_hadamard(theta) / true.size
            self._cache[attrs] = MarginalTable(attrs, counts)
        return self._cache[attrs].copy()
