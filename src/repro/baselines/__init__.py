"""Every method the paper compares against (Section 3).

All baselines implement a common protocol: construct with the privacy
parameters, call :meth:`fit` with a :class:`~repro.marginals.dataset.
BinaryDataset`, then ask for marginals with :meth:`marginal`.

A note on lazy release: Direct, Fourier and the learning-based method
conceptually publish a noisy table / coefficient for *every* k-way
marginal, which is far too many to materialise for d=45.  Their
implementations therefore sample the noise for a marginal at query
time — distributionally identical to reading the published synopsis,
with the privacy accounting done as if everything were released (the
noise scale uses the full count ``m``).
"""

from repro.baselines.base import (
    MarginalReleaseMechanism,
    MarginalSource,
    Mechanism,
)
from repro.baselines.uniform import UniformMethod
from repro.baselines.flat import FlatMethod, flat_expected_normalized_l2
from repro.baselines.direct import DirectMethod
from repro.baselines.fourier import FourierMethod, FourierLPMethod, walsh_hadamard
from repro.baselines.mwem import MWEMMethod
from repro.baselines.matrix_mechanism import (
    MatrixMechanism,
    marginal_workload_matrix,
)
from repro.baselines.learning import LearningMethod
from repro.baselines.datacube import DataCubeMethod

__all__ = [
    "MarginalReleaseMechanism",
    "MarginalSource",
    "Mechanism",
    "UniformMethod",
    "FlatMethod",
    "flat_expected_normalized_l2",
    "DirectMethod",
    "FourierMethod",
    "FourierLPMethod",
    "walsh_hadamard",
    "MWEMMethod",
    "MatrixMechanism",
    "marginal_workload_matrix",
    "LearningMethod",
    "DataCubeMethod",
]
