"""Adding noise in the Fourier domain — Barak et al. (paper Section 3.3).

Conventions.  For each attribute subset ``beta`` define the character
sum ``theta_beta = sum_t (-1)^{<beta, t>}`` over the dataset's tuples.
Every k-way marginal satisfies

    T_A(a) = 2**(-|A|) * sum_{beta subseteq A} (-1)^{<beta, a>} theta_beta,

i.e. the marginal is the inverse Walsh-Hadamard transform of its own
coefficient block.  Adding one tuple changes every coefficient by +-1,
so releasing the ``m = sum_{j<=k} C(d, j)`` coefficients of weight at
most ``k`` has L1 sensitivity ``m``; noise ``Lap(m/eps)`` per
coefficient gives per-marginal ESE ``m**2 * V_u`` — a factor ``2**k``
below Direct, as Section 3.3 states.

Like Direct, the coefficients a query needs are noised lazily; the
``theta`` block for attributes ``A`` is exactly the Walsh-Hadamard
transform of the true marginal over ``A``, so no 2**d work is needed.

:class:`FourierLPMethod` adds Barak et al.'s linear-programming step
(small ``d`` only): fit a non-negative full contingency table whose
coefficients are uniformly closest to the noisy ones.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize

from repro import obs
from repro.baselines.base import MarginalReleaseMechanism
from repro.core.nonnegativity import apply_nonnegativity
from repro.exceptions import DimensionError, ReconstructionError
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import laplace_variance, noisy_counts


def walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """Unnormalised Walsh-Hadamard transform of a length-2**m vector.

    ``out[beta] = sum_a (-1)^{popcount(beta & a)} * values[a]``.  The
    transform is an involution up to the factor ``2**m``.
    """
    values = np.asarray(values, dtype=np.float64).copy()
    n = values.size
    if n & (n - 1):
        raise DimensionError(f"length must be a power of two, got {n}")
    h = 1
    while h < n:
        blocks = values.reshape(-1, 2 * h)
        left = blocks[:, :h].copy()
        right = blocks[:, h:].copy()
        blocks[:, :h] = left + right
        blocks[:, h:] = left - right
        h *= 2
    return values


def fourier_coefficient_count(num_attributes: int, k_max: int) -> int:
    """``m``: number of weight-<=k coefficients, 1 + C(d,1) + ... + C(d,k)."""
    return sum(math.comb(num_attributes, j) for j in range(k_max + 1))


def _coefficient_weights(arity: int) -> np.ndarray:
    """Popcount of each index 0..2**arity-1 (the coefficient weights)."""
    idx = np.arange(1 << arity, dtype=np.uint64)
    return np.bitwise_count(idx).astype(np.int64)


class FourierMethod(MarginalReleaseMechanism):
    """Noisy Fourier coefficients of weight at most ``k_max``.

    Unlike Direct, one release answers every arity up to ``k_max``.
    """

    name = "Fourier"

    def __init__(
        self,
        epsilon: float,
        k_max: int,
        nonnegativity: str = "global",
        seed: int | None = None,
    ):
        super().__init__(epsilon, seed)
        self.k_max = int(k_max)
        self.nonnegativity = nonnegativity

    def _fit(self, dataset: BinaryDataset) -> None:
        self._dataset = dataset
        self._m = fourier_coefficient_count(dataset.num_attributes, self.k_max)
        self._cache: dict[tuple[int, ...], MarginalTable] = {}

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        if len(attrs) > self.k_max:
            raise ReconstructionError(
                f"Fourier released weight <= {self.k_max}; asked for {len(attrs)}-way"
            )
        if attrs not in self._cache:
            true = self._dataset.marginal(attrs)
            theta = walsh_hadamard(true.counts)
            # Lazily sampled release (see Direct): give the query-time
            # draw a named scope so ledger audits can attribute it.
            with obs.budget_scope(
                f"{self.name}.lazy_release", self.epsilon, strict=False
            ):
                theta = noisy_counts(theta, self.epsilon, self._m, self._rng)
            counts = walsh_hadamard(theta) / true.size
            table = MarginalTable(attrs, counts)
            apply_nonnegativity(table, self.nonnegativity)
            self._cache[attrs] = table
        return self._cache[attrs].copy()


def fourier_expected_squared_error(
    num_attributes: int, k: int, k_max: int | None = None, epsilon: float = 1.0
) -> float:
    """Per-marginal ESE of the Fourier method: ``m**2 * V_u``.

    Derivation: each of the 2**k cells is ``2**-k`` times a sum of
    2**k independent ``Lap(m/eps)`` coefficients, so per-cell variance
    is ``2**-k m**2 V_u`` and the table sums to ``m**2 V_u``.
    """
    m = fourier_coefficient_count(num_attributes, k if k_max is None else k_max)
    return float(m) ** 2 * laplace_variance(1.0 / epsilon)


class FourierLPMethod(MarginalReleaseMechanism):
    """Fourier release plus the LP cleanup of Barak et al. (small d).

    Finds a non-negative full contingency table minimising the largest
    deviation from the noisy coefficients, then answers marginals from
    that table (which makes all answers mutually consistent and
    non-negative).
    """

    name = "FourierLP"

    def __init__(self, epsilon: float, k_max: int, seed: int | None = None):
        super().__init__(epsilon, seed)
        self.k_max = int(k_max)

    def _fit(self, dataset: BinaryDataset) -> None:
        d = dataset.num_attributes
        full = FullContingencyTable.from_dataset(dataset)
        theta = walsh_hadamard(full.counts)
        weights = _coefficient_weights(d)
        released = np.flatnonzero(weights <= self.k_max)
        m = released.size
        if np.isinf(self.epsilon):
            noisy = theta[released]
        else:
            noisy = theta[released] + self._rng.laplace(
                scale=m / self.epsilon, size=m
            )
            # One shot measures all m coefficients: the call consumes
            # the full epsilon, not epsilon/m per the lazy convention.
            obs.record_draw(
                "laplace",
                epsilon=self.epsilon,
                sensitivity=m,
                scale=m / self.epsilon,
                draws=m,
                divide_by_sensitivity=False,
                label="fourier_coefficients",
            )
        self._table = FullContingencyTable(d, self._solve_lp(d, released, noisy))

    def _solve_lp(
        self, d: int, released: np.ndarray, noisy: np.ndarray
    ) -> np.ndarray:
        """min tau s.t. h >= 0, |WHT(h)[released] - noisy| <= tau.

        Solved in units of the dataset size (coefficients scaled by
        their largest magnitude) — at N ~ 1e6 the unscaled problem
        trips HiGHS's numerics.  If the solver still fails, fall back
        to the plain inverse transform with negatives clamped, which
        is the method without its LP step.
        """
        n = 1 << d
        # Rows of the WHT restricted to the released coefficients.
        basis = np.empty((released.size, n))
        for i, beta in enumerate(released):
            signs = np.bitwise_count(
                np.bitwise_and(np.arange(n, dtype=np.uint64), np.uint64(beta))
            ).astype(np.int64)
            basis[i] = 1.0 - 2.0 * (signs & 1)
        scale = max(1.0, float(np.abs(noisy).max()))
        cost = np.zeros(n + 1)
        cost[-1] = 1.0
        ones = np.ones((released.size, 1))
        a_ub = np.vstack(
            [np.hstack([basis, -ones]), np.hstack([-basis, -ones])]
        )
        b_ub = np.concatenate([noisy, -noisy]) / scale
        bounds = [(0.0, None)] * n + [(0.0, None)]
        result = optimize.linprog(
            cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
        )
        if result.success:
            return result.x[:n] * scale
        # Fallback: inverse transform of the noisy coefficients with
        # negatives clamped (FourierLP degenerates to Fourier).
        padded = np.zeros(n)
        padded[released] = noisy
        cells = walsh_hadamard(padded) / n
        return np.maximum(cells, 0.0)

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        if len(attrs) > self.k_max:
            raise ReconstructionError(
                f"FourierLP released weight <= {self.k_max}; "
                f"asked for {len(attrs)}-way"
            )
        return self._table.marginal(attrs)
