"""The common mechanism protocol shared by all baselines and PriView."""

from __future__ import annotations

import abc

import numpy as np

from repro import obs
from repro.exceptions import PrivacyBudgetError, ReconstructionError
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable


class MarginalReleaseMechanism(abc.ABC):
    """A differentially private marginal-release mechanism.

    Subclasses set :attr:`name` and implement :meth:`_fit` and
    :meth:`_marginal`.  ``epsilon = inf`` is allowed everywhere and
    means "no noise" (used for the paper's approximation-error-only
    variants).
    """

    name: str = "mechanism"

    def __init__(self, epsilon: float, seed: int | None = None):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    def fit(self, dataset: BinaryDataset) -> "MarginalReleaseMechanism":
        """Consume the private dataset; returns self for chaining.

        Under an observability session the fit is wrapped in a span and
        a (non-strict) budget scope named after the mechanism, so every
        noise draw it performs is attributed to it in ledger audits.
        """
        self._num_attributes = dataset.num_attributes
        self._num_records = dataset.num_records
        scope_name = f"{self.name}.fit"
        with obs.span(scope_name), obs.budget_scope(
            scope_name, self.epsilon, strict=False
        ):
            self._fit(dataset)
        self._fitted = True
        return self

    def marginal(self, attrs) -> MarginalTable:
        """The mechanism's answer for the marginal over ``attrs``."""
        if not self._fitted:
            raise ReconstructionError(f"{self.name}: call fit() before marginal()")
        return self._marginal(tuple(sorted(int(a) for a in attrs)))

    @abc.abstractmethod
    def _fit(self, dataset: BinaryDataset) -> None:
        """Mechanism-specific fitting."""

    @abc.abstractmethod
    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        """Mechanism-specific marginal reconstruction."""
