"""The common mechanism protocol shared by all baselines and PriView.

Two structural protocols define the public API every consumer codes
against (no ``isinstance`` special-cases anywhere in ``repro``):

* :class:`MarginalSource` — anything answering ``marginal(attrs)``:
  a fitted baseline, a :class:`~repro.core.synopsis.PriViewSynopsis`,
  a raw :class:`~repro.marginals.dataset.BinaryDataset`, or the
  bit-sliced :class:`~repro.kernels.PackedDataset`.
* :class:`Mechanism` — a private mechanism: ``name``, ``epsilon`` and
  ``fit(dataset)`` returning a :class:`MarginalSource` (baselines
  return ``self``; ``PriView.fit`` returns the synopsis).

:class:`MarginalReleaseMechanism` remains the convenience ABC the
bundled baselines subclass; third-party mechanisms only need to
satisfy the protocols.
"""

from __future__ import annotations

import abc
from time import perf_counter
from typing import Protocol, runtime_checkable

import numpy as np

from repro import obs
from repro.exceptions import PrivacyBudgetError, ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable


@runtime_checkable
class MarginalSource(Protocol):
    """Anything that answers marginal queries.

    ``marginal(attrs)`` returns the :class:`MarginalTable` over the
    attribute set (canonicalised with
    :class:`~repro.marginals.attrs.AttrSet`).
    """

    def marginal(self, attrs) -> MarginalTable: ...


@runtime_checkable
class Mechanism(Protocol):
    """A differentially private marginal-release mechanism.

    ``fit(dataset)`` consumes the private data exactly once and
    returns a :class:`MarginalSource` — the fitted mechanism itself
    (the baseline convention) or a standalone synopsis object (the
    PriView convention).  ``epsilon`` is the total budget ``fit``
    spends; ``name`` identifies the mechanism in experiment reports
    and observability scopes.
    """

    name: str
    epsilon: float

    def fit(self, dataset: BinaryDataset): ...


class MarginalReleaseMechanism(abc.ABC):
    """Convenience ABC implementing the :class:`Mechanism` protocol.

    Subclasses set :attr:`name` and implement :meth:`_fit` and
    :meth:`_marginal`.  ``epsilon = inf`` is allowed everywhere and
    means "no noise" (used for the paper's approximation-error-only
    variants).
    """

    name: str = "mechanism"

    def __init__(self, epsilon: float, seed: int | None = None):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    def fit(self, dataset: BinaryDataset) -> "MarginalReleaseMechanism":
        """Consume the private dataset; returns self for chaining.

        Under an observability session the fit is wrapped in a span and
        a (non-strict) budget scope named after the mechanism, so every
        noise draw it performs is attributed to it in ledger audits.
        """
        self._num_attributes = dataset.num_attributes
        self._num_records = dataset.num_records
        scope_name = f"{self.name}.fit"
        fit_start = perf_counter()
        with obs.span(scope_name), obs.budget_scope(
            scope_name, self.epsilon, strict=False
        ):
            self._fit(dataset)
        obs.observe(
            "fit.seconds",
            perf_counter() - fit_start,
            {"mechanism": self.name},
        )
        self._fitted = True
        return self

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    @property
    def num_attributes(self) -> int:
        """``d`` of the fitted dataset."""
        if not self._fitted:
            raise ReconstructionError(f"{self.name}: call fit() first")
        return self._num_attributes

    @property
    def num_records(self) -> int:
        """``N`` of the fitted dataset."""
        if not self._fitted:
            raise ReconstructionError(f"{self.name}: call fit() first")
        return self._num_records

    def marginal(self, attrs) -> MarginalTable:
        """The mechanism's answer for the marginal over ``attrs``."""
        if not self._fitted:
            raise ReconstructionError(f"{self.name}: call fit() before marginal()")
        return self._marginal(AttrSet(attrs, num_attributes=self._num_attributes))

    @abc.abstractmethod
    def _fit(self, dataset: BinaryDataset) -> None:
        """Mechanism-specific fitting."""

    @abc.abstractmethod
    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        """Mechanism-specific marginal reconstruction."""
