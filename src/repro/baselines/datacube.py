"""Differentially private data cubes (Ding et al., SIGMOD 2011) —
paper Section 3.4.

The method organises all ``2**d`` marginals ("cuboids") in the subset
lattice and greedily selects which to publish so that every query
marginal is covered and the worst-case expected error is minimised;
published cuboids are then made consistent.  Both phases are
polynomial in ``2**d``, which is why the paper only runs it at d=9 —
and why, for low-dimensional *binary* data, the selection provably
gravitates to the top of the lattice (the full contingency table,
i.e. the Flat method), as Section 3.4 notes.

We implement the selection greedy over the lattice with the standard
cost model: answering query ``A`` from a published superset ``V``
(with ``|S|`` cuboids sharing the budget) costs
``2**|V| * |S|**2 * V_u``; a query not covered is infinitely costly.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import MarginalReleaseMechanism
from repro.exceptions import DimensionError
from repro.marginals.dataset import BinaryDataset
from repro.marginals.queries import all_attribute_subsets
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import noisy_marginal

#: Lattice enumeration is Theta(2**d); refuse beyond this.
MAX_LATTICE_DIMENSIONS = 14


def select_cuboids(num_attributes: int, k: int) -> list[tuple[int, ...]]:
    """Greedy lattice selection minimising the worst query cost.

    Starts from the query marginals themselves and repeatedly replaces
    the current selection by a single-ancestor merge whenever that
    lowers the worst-case cost; for binary data this walks to the full
    set whenever ``2**d < 2**k * m**2`` — reproducing the paper's
    observation that the method reduces to Flat at d=9.
    """
    if num_attributes > MAX_LATTICE_DIMENSIONS:
        raise DimensionError(
            f"data-cube selection enumerates a 2**{num_attributes} lattice; "
            f"limit is d={MAX_LATTICE_DIMENSIONS}"
        )
    queries = all_attribute_subsets(num_attributes, k)

    def worst_cost(selection: list[tuple[int, ...]]) -> float:
        w = len(selection)
        worst = 0.0
        for q in queries:
            qset = set(q)
            costs = [
                2.0 ** len(v) for v in selection if qset.issubset(v)
            ]
            if not costs:
                return float("inf")
            worst = max(worst, min(costs) * w * w)
        return worst

    current = list(queries)
    current_cost = worst_cost(current)
    improved = True
    while improved:
        improved = False
        # Candidate moves: merge the whole selection one level up by
        # taking unions of pairs, or collapse to the top cuboid.
        top = [tuple(range(num_attributes))]
        for candidate in (top, _pairwise_merge(current, num_attributes)):
            cost = worst_cost(candidate)
            if cost < current_cost:
                current, current_cost = candidate, cost
                improved = True
                break
    return sorted(set(current))


def _pairwise_merge(
    selection: list[tuple[int, ...]], num_attributes: int
) -> list[tuple[int, ...]]:
    """Merge the two most-overlapping cuboids into their union."""
    if len(selection) < 2:
        return selection
    best_pair = None
    best_overlap = -1
    for a, b in itertools.combinations(range(len(selection)), 2):
        overlap = len(set(selection[a]) & set(selection[b]))
        if overlap > best_overlap:
            best_overlap = overlap
            best_pair = (a, b)
    a, b = best_pair
    union = tuple(sorted(set(selection[a]) | set(selection[b])))
    merged = [s for i, s in enumerate(selection) if i not in (a, b)]
    merged.append(union)
    return sorted(set(merged))


class DataCubeMethod(MarginalReleaseMechanism):
    """Publish greedily selected cuboids; answer queries from covers."""

    name = "DataCube"

    def __init__(self, epsilon: float, k: int, seed: int | None = None):
        super().__init__(epsilon, seed)
        self.k = int(k)

    def _fit(self, dataset: BinaryDataset) -> None:
        selection = select_cuboids(dataset.num_attributes, self.k)
        w = len(selection)
        self._cuboids = [
            noisy_marginal(
                dataset.marginal(attrs), self.epsilon, sensitivity=w, rng=self._rng
            )
            for attrs in selection
        ]

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        target = set(attrs)
        candidates = [
            c for c in self._cuboids if target.issubset(c.attrs)
        ]
        if not candidates:
            raise DimensionError(f"no published cuboid covers {tuple(attrs)}")
        best = min(candidates, key=lambda c: c.arity)
        return best.project(tuple(attrs))
