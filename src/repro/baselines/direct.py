"""The Direct method (paper Section 3.2).

Release every k-way marginal with independent Laplace noise of scale
``m/epsilon`` where ``m = C(d, k)``, by sequential composition.  The
per-marginal ESE is ``2**k * m**2 * V_u`` (Equation 4).

For large ``d`` the full release cannot be materialised; the noisy
table for a queried marginal is sampled lazily (see the package
docstring), which is distributionally identical.
"""

from __future__ import annotations

import math

from repro import obs
from repro.baselines.base import MarginalReleaseMechanism
from repro.core.nonnegativity import apply_nonnegativity
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import laplace_variance, noisy_marginal


class DirectMethod(MarginalReleaseMechanism):
    """Per-marginal Laplace noise for a fixed target arity ``k``.

    Parameters
    ----------
    epsilon:
        Total budget across all ``C(d, k)`` marginals.
    k:
        The marginal arity the release commits to.
    nonnegativity:
        Post-processing; the paper's Section 5.2 runs Direct with
        ``"global"`` (remove negatives, redistribute the difference).
    """

    name = "Direct"

    def __init__(
        self,
        epsilon: float,
        k: int,
        nonnegativity: str = "global",
        seed: int | None = None,
    ):
        super().__init__(epsilon, seed)
        self.k = int(k)
        self.nonnegativity = nonnegativity

    def _fit(self, dataset: BinaryDataset) -> None:
        self._dataset = dataset
        self._num_marginals = math.comb(dataset.num_attributes, self.k)
        self._cache: dict[tuple[int, ...], MarginalTable] = {}

    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        if len(attrs) != self.k:
            raise ValueError(
                f"Direct released {self.k}-way marginals; asked for {len(attrs)}-way"
            )
        if attrs not in self._cache:
            # The release is sampled lazily, so the draw happens outside
            # fit(); attribute it to a named (non-strict) scope so ledger
            # audits explain why Direct.fit itself spends nothing.
            with obs.budget_scope(
                f"{self.name}.lazy_release", self.epsilon, strict=False
            ):
                table = noisy_marginal(
                    self._dataset.marginal(attrs),
                    self.epsilon,
                    sensitivity=self._num_marginals,
                    rng=self._rng,
                )
            apply_nonnegativity(table, self.nonnegativity)
            self._cache[attrs] = table
        return self._cache[attrs].copy()


def direct_expected_squared_error(
    num_attributes: int, k: int, epsilon: float
) -> float:
    """Equation 4: ESE of the Direct method, ``2**k C(d,k)**2 V_u``."""
    m = math.comb(num_attributes, k)
    return (2.0**k) * (m**2) * laplace_variance(1.0 / epsilon)
