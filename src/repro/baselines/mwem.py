"""MWEM — multiplicative weights + exponential mechanism (Section 3.6).

The non-interactive variant of Hardt, Ligett & McSherry (NIPS 2012)
specialised to k-way marginal queries, maintaining an explicit
distribution over the full ``2**d`` domain (feasible for small ``d``
only, as the paper notes — their largest experiment used d=16).

Per round (of ``T`` rounds, each with budget ``eps/T``):

1. exponential mechanism (half the round's budget) selects the
   marginal whose current answer is worst (L1 score);
2. Laplace mechanism (the other half) measures the selected marginal;
3. multiplicative-weights updates fold the measurement into the
   distribution.

The paper evaluates the *enhanced* variant from [16]: every round
replays all past measurements 100 times, and queries are answered from
the final distribution rather than the running average.  Both variants
are implemented (``enhanced=False`` gives the basic one with
averaging).
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.baselines.base import MarginalReleaseMechanism
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.dataset import BinaryDataset
from repro.marginals.projection import projection_map
from repro.marginals.queries import all_attribute_subsets
from repro.marginals.table import MarginalTable
from repro.mechanisms.exponential import exponential_mechanism


def default_rounds(num_attributes: int) -> int:
    """The paper's choice: ``T = ceil(4 log d) + 2`` (15 for d = 9..12)."""
    return math.ceil(4 * math.log(num_attributes)) + 2


class MWEMMethod(MarginalReleaseMechanism):
    """MWEM over the query class of all ``k``-way marginals.

    Parameters
    ----------
    epsilon:
        Total budget, split evenly over ``rounds``.
    k:
        Arity of the marginal query class.
    rounds:
        ``T``; defaults to the paper's ``ceil(4 log d) + 2``.
    enhanced:
        Replay past measurements ``replays`` times per round and answer
        from the final distribution (the configuration the paper
        evaluates).
    replays:
        Replay sweeps per round in enhanced mode (paper: 100).
    """

    name = "MWEM"

    def __init__(
        self,
        epsilon: float,
        k: int,
        rounds: int | None = None,
        enhanced: bool = True,
        replays: int = 100,
        seed: int | None = None,
    ):
        super().__init__(epsilon, seed)
        self.k = int(k)
        self.rounds = rounds
        self.enhanced = enhanced
        self.replays = replays

    # ------------------------------------------------------------------
    def _fit(self, dataset: BinaryDataset) -> None:
        d = dataset.num_attributes
        n = max(float(dataset.num_records), 1.0)
        rounds = self.rounds or default_rounds(d)
        queries = all_attribute_subsets(d, self.k)
        true = FullContingencyTable.from_dataset(dataset)
        true_marginals = [true.marginal(attrs).counts for attrs in queries]
        pmaps = [projection_map(d, attrs) for attrs in queries]

        # Distribution over the domain, scaled to total mass n.
        synthetic = np.full(1 << d, n / (1 << d))
        average = np.zeros_like(synthetic)
        measurements: list[tuple[int, np.ndarray]] = []
        eps_round = self.epsilon / rounds

        for _ in range(rounds):
            scores = np.array(
                [
                    np.abs(
                        np.bincount(pm, weights=synthetic, minlength=tm.size) - tm
                    ).sum()
                    for pm, tm in zip(pmaps, true_marginals)
                ]
            )
            chosen = exponential_mechanism(
                scores, eps_round / 2.0, sensitivity=1.0, rng=self._rng
            )
            if np.isinf(self.epsilon):
                noisy = true_marginals[chosen].copy()
            else:
                noisy = true_marginals[chosen] + self._rng.laplace(
                    scale=2.0 / eps_round, size=true_marginals[chosen].size
                )
                # The measurement takes the other half of the round's
                # budget (the selection above recorded the first half).
                obs.record_draw(
                    "laplace",
                    epsilon=eps_round / 2.0,
                    sensitivity=1.0,
                    scale=2.0 / eps_round,
                    draws=int(true_marginals[chosen].size),
                    label="mwem_measurement",
                )
            measurements.append((chosen, noisy))
            sweeps = self.replays if self.enhanced else 1
            for _ in range(sweeps):
                for qi, measured in measurements:
                    synthetic = self._mw_update(
                        synthetic, pmaps[qi], measured, n
                    )
            average += synthetic

        self._queries = {attrs: i for i, attrs in enumerate(queries)}
        self._pmaps = pmaps
        final = synthetic if self.enhanced else average / rounds
        self._table = FullContingencyTable(d, final)

    @staticmethod
    def _mw_update(
        synthetic: np.ndarray,
        pmap: np.ndarray,
        measured: np.ndarray,
        total: float,
    ) -> np.ndarray:
        """One multiplicative-weights step for a full marginal measurement."""
        current = np.bincount(pmap, weights=synthetic, minlength=measured.size)
        # Per-cell queries of the marginal: error distributed via exp().
        adjustment = (measured - current) / (2.0 * total)
        synthetic = synthetic * np.exp(adjustment[pmap])
        synthetic *= total / synthetic.sum()
        return synthetic

    # ------------------------------------------------------------------
    def _marginal(self, attrs: tuple[int, ...]) -> MarginalTable:
        return self._table.marginal(attrs)
