"""Minimal discrete factors over binary variables.

A :class:`Factor` holds a non-negative table over a sorted tuple of
binary variables, with the same cell convention as
:class:`~repro.marginals.table.MarginalTable` (variable ``vars[j]`` is
bit ``j`` of the cell index).  Supports the two operations variable
elimination needs: pointwise product and summing a variable out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DimensionError


@dataclass
class Factor:
    """A table over binary variables; not necessarily normalised."""

    vars: tuple[int, ...]
    values: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.vars = tuple(int(v) for v in self.vars)
        if list(self.vars) != sorted(set(self.vars)):
            raise DimensionError(f"vars must be sorted and unique: {self.vars}")
        values = np.asarray(self.values, dtype=np.float64)
        if values.shape != (1 << len(self.vars),):
            raise DimensionError(
                f"values has shape {values.shape}, expected "
                f"({1 << len(self.vars)},)"
            )
        self.values = values

    @classmethod
    def ones(cls, vars) -> "Factor":
        vars = tuple(sorted(int(v) for v in vars))
        return cls(vars, np.ones(1 << len(vars)))

    @property
    def arity(self) -> int:
        return len(self.vars)

    # ------------------------------------------------------------------
    def _expand_to(self, union: tuple[int, ...]) -> np.ndarray:
        """Broadcast this factor's values onto the union variable set."""
        positions = {v: j for j, v in enumerate(union)}
        cells = np.arange(1 << len(union), dtype=np.int64)
        idx = np.zeros(cells.size, dtype=np.int64)
        for my_bit, v in enumerate(self.vars):
            idx |= ((cells >> positions[v]) & 1) << my_bit
        return self.values[idx]

    def product(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of variables."""
        union = tuple(sorted(set(self.vars) | set(other.vars)))
        return Factor(union, self._expand_to(union) * other._expand_to(union))

    def marginalize_out(self, var: int) -> "Factor":
        """Sum the given variable out of the factor."""
        if var not in self.vars:
            raise DimensionError(f"variable {var} not in factor {self.vars}")
        bit = self.vars.index(var)
        kept = tuple(v for v in self.vars if v != var)
        shaped = self.values.reshape([2] * self.arity)
        # axis order: bit j of the cell index is axis (arity-1-j)
        summed = shaped.sum(axis=self.arity - 1 - bit)
        return Factor(kept, summed.reshape(-1))

    def normalized(self) -> "Factor":
        """Scale values to sum to 1 (uniform if degenerate)."""
        total = self.values.sum()
        if total <= 0:
            return Factor(self.vars, np.full(self.values.size, 1.0 / self.values.size))
        return Factor(self.vars, self.values / total)
