"""Chow-Liu tree structure learning from a PriView synopsis.

Chow & Liu (1968): the maximum-likelihood tree-structured distribution
uses the maximum spanning tree of the pairwise mutual-information
graph.  PriView's synopsis makes this private for free — with a t>=2
covering design every pairwise marginal is covered by some view, so
the MI weights are post-processing of already-published tables.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from repro.core.synopsis import PriViewSynopsis
from repro.exceptions import ReconstructionError


def _mutual_information(joint: np.ndarray) -> float:
    """MI of a 2x2 joint given as the 4-cell [p00, p10, p01, p11]."""
    p = np.maximum(np.asarray(joint, dtype=np.float64), 0.0)
    total = p.sum()
    if total <= 0:
        return 0.0
    p = (p / total).reshape(2, 2)  # [x1][x0] per the bit convention
    px = p.sum(axis=0)
    py = p.sum(axis=1)
    mi = 0.0
    for i in range(2):
        for j in range(2):
            if p[j, i] > 0 and px[i] > 0 and py[j] > 0:
                mi += p[j, i] * np.log(p[j, i] / (px[i] * py[j]))
    return max(0.0, float(mi))


def pairwise_mutual_information(
    synopsis: PriViewSynopsis,
) -> nx.Graph:
    """Complete graph on the attributes, weighted by pairwise MI.

    Every pair must be covered by some view (true for any t>=2 covering
    design), otherwise :class:`ReconstructionError` is raised.
    """
    d = synopsis.num_attributes
    graph = nx.Graph()
    graph.add_nodes_from(range(d))
    for a, b in itertools.combinations(range(d), 2):
        if not synopsis.is_covered((a, b)):
            raise ReconstructionError(
                f"pair ({a}, {b}) not covered by any view; a t>=2 "
                "covering design is required for Chow-Liu estimation"
            )
        joint = synopsis.marginal((a, b)).counts
        graph.add_edge(a, b, weight=_mutual_information(joint))
    return graph


def chow_liu_tree(synopsis: PriViewSynopsis) -> nx.Graph:
    """The maximum-spanning-tree skeleton of the MI graph."""
    graph = pairwise_mutual_information(synopsis)
    return nx.maximum_spanning_tree(graph, weight="weight")
