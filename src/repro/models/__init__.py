"""Graphical-model estimation on top of a PriView synopsis.

The paper's second key insight (Section 1) is that practical
distributions approximately factor into low-dimensional terms — the
reason graphical models work.  This subpackage makes that connection
executable: it fits a Chow-Liu tree (the maximum-likelihood
tree-structured model) to the synopsis's pairwise marginals and
answers arbitrary k-way marginals from the *global* model by variable
elimination.

This is an extension beyond the paper (in the spirit of later work on
PGM-based private estimation): where per-query maximum entropy uses
only the views intersecting the query, the tree model propagates
information through chains of attributes.  On tree-structured data
(e.g. the order-1 MCHAIN) it reconstructs marginals the covering
design never saw together; the ablation benchmark compares both.
"""

from repro.models.factors import Factor
from repro.models.chow_liu import chow_liu_tree, pairwise_mutual_information
from repro.models.tree_model import TreeModel

__all__ = [
    "Factor",
    "chow_liu_tree",
    "pairwise_mutual_information",
    "TreeModel",
]
