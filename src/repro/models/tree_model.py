"""Answering k-way marginals from a tree-structured model.

A tree model over attributes ``0..d-1`` is the distribution

    P(x) = prod_nodes P(x_v) * prod_edges P(x_u, x_v) / (P(x_u) P(x_v)).

A query marginal over ``A`` needs only the Steiner tree spanning ``A``;
the non-query variables on it are summed out by variable elimination
in leaf-first order, which on a tree keeps every intermediate factor
no larger than the query itself plus one variable.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.synopsis import PriViewSynopsis
from repro.exceptions import ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable
from repro.models.chow_liu import chow_liu_tree
from repro.models.factors import Factor


class TreeModel:
    """A Chow-Liu-style tree distribution fitted to a synopsis.

    Parameters
    ----------
    tree:
        The tree skeleton (a networkx graph that must be a tree or
        forest over the attribute indices).
    edge_factors:
        For each tree edge ``(u, v)`` with ``u < v``, the joint
        probability factor over ``(u, v)``.
    node_factors:
        Per-attribute marginal probability factor.
    total:
        The population count the answers are scaled to.
    """

    def __init__(
        self,
        tree: nx.Graph,
        edge_factors: dict[tuple[int, int], Factor],
        node_factors: dict[int, Factor],
        total: float,
    ):
        if len(tree.edges) >= len(tree.nodes):
            raise ReconstructionError("model graph contains a cycle")
        self.tree = tree
        self.edge_factors = edge_factors
        self.node_factors = node_factors
        self.total = float(total)

    # ------------------------------------------------------------------
    @classmethod
    def from_synopsis(
        cls,
        synopsis: PriViewSynopsis,
        tree: nx.Graph | None = None,
    ) -> "TreeModel":
        """Fit parameters from the synopsis (structure too, if absent).

        Pure post-processing of published tables — no privacy cost.
        """
        tree = tree if tree is not None else chow_liu_tree(synopsis)
        edge_factors = {}
        for u, v in tree.edges:
            u, v = min(u, v), max(u, v)
            joint = synopsis.marginal((u, v))
            edge_factors[(u, v)] = Factor((u, v), joint.counts).normalized()
        node_factors = {}
        for node in tree.nodes:
            marginal = synopsis.marginal((node,))
            node_factors[node] = Factor((node,), marginal.counts).normalized()
        return cls(tree, edge_factors, node_factors, synopsis.total_count())

    # ------------------------------------------------------------------
    def _steiner_nodes(self, attrs: tuple[int, ...]) -> set[int]:
        """Nodes of the minimal subtree spanning ``attrs``."""
        if len(attrs) == 1:
            return {attrs[0]}
        nodes: set[int] = set()
        anchor = attrs[0]
        for other in attrs[1:]:
            try:
                path = nx.shortest_path(self.tree, anchor, other)
            except nx.NetworkXNoPath:
                # Disconnected components behave independently; handled
                # by the caller combining product factors.
                continue
            nodes.update(path)
        nodes.update(attrs)
        return nodes

    def marginal(self, attrs) -> MarginalTable:
        """The model's marginal over ``attrs``, scaled to the total."""
        target = AttrSet(attrs)
        if any(a not in self.tree.nodes for a in target):
            raise ReconstructionError(
                f"attributes {target} not all present in the model"
            )
        components: list[Factor] = []
        remaining = set(target)
        while remaining:
            seed = next(iter(remaining))
            component_attrs = tuple(
                sorted(
                    a
                    for a in remaining
                    if nx.has_path(self.tree, seed, a)
                )
            )
            components.append(self._component_marginal(component_attrs))
            remaining -= set(component_attrs)
        # Independent components multiply.
        result = components[0]
        for factor in components[1:]:
            result = result.product(factor)
        counts = result.normalized().values * self.total
        return MarginalTable(target, counts)

    def _component_marginal(self, attrs: tuple[int, ...]) -> Factor:
        """Marginal over attrs lying in one connected tree component."""
        steiner = self._steiner_nodes(attrs)
        subtree = self.tree.subgraph(steiner)
        factors: list[Factor] = []
        for u, v in subtree.edges:
            u, v = min(u, v), max(u, v)
            edge = self.edge_factors[(u, v)]
            # P(u,v) / (P(u) P(v)) with node terms added back once:
            # assemble as prod edges P(u,v) * prod nodes P(n)^(1-deg n)
            factors.append(edge)
        for node in steiner:
            degree = subtree.degree(node)
            base = self.node_factors[node]
            if degree == 0:
                factors.append(base)
            else:
                for _ in range(degree - 1):
                    factors.append(
                        Factor(base.vars, 1.0 / np.maximum(base.values, 1e-12))
                    )
        # Variable elimination, leaf-first over non-query nodes.
        order = [
            n
            for n in self._leaf_first_order(subtree)
            if n not in attrs
        ]
        for var in order:
            involved = [f for f in factors if var in f.vars]
            rest = [f for f in factors if var not in f.vars]
            merged = involved[0]
            for f in involved[1:]:
                merged = merged.product(f)
            factors = rest + [merged.marginalize_out(var)]
        result = factors[0]
        for f in factors[1:]:
            result = result.product(f)
        return result

    @staticmethod
    def _leaf_first_order(subtree: nx.Graph) -> list[int]:
        """Peel leaves repeatedly: a perfect elimination order."""
        graph = nx.Graph(subtree)
        order = []
        while graph.nodes:
            leaves = [n for n in graph.nodes if graph.degree(n) <= 1]
            if not leaves:  # defensive: cannot happen on a tree
                leaves = list(graph.nodes)[:1]
            for leaf in leaves:
                order.append(leaf)
                graph.remove_node(leaf)
        return order
