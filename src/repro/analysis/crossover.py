"""Direct-vs-Flat crossover (the Section 3.2 in-text table).

Flat's ESE is ``2**d V_u``; Direct's is ``2**k C(d,k)**2 V_u``.  For
each ``k`` there is a smallest ``d`` beyond which Direct wins; the
paper tabulates d >= 16, 26, 36, 46 for k = 2..5.
"""

from __future__ import annotations

from repro.analysis.ese import direct_ese, flat_ese
from repro.exceptions import DimensionError


def direct_beats_flat_threshold(k: int, max_dimensions: int = 512) -> int:
    """Smallest ``d`` with Direct's ESE below Flat's, for arity ``k``."""
    if k < 1:
        raise DimensionError(f"k must be >= 1, got {k}")
    for d in range(k + 1, max_dimensions + 1):
        if direct_ese(d, k) < flat_ese(d):
            return d
    raise DimensionError(
        f"no crossover found for k={k} up to d={max_dimensions}"
    )


def crossover_table(ks=(2, 3, 4, 5)) -> dict[int, int]:
    """The paper's table: k -> smallest d where Direct beats Flat."""
    return {k: direct_beats_flat_threshold(k) for k in ks}
