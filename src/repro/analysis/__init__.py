"""Closed-form error analysis reproducing the paper's in-text tables."""

from repro.analysis.ese import (
    direct_ese,
    flat_ese,
    fourier_ese,
    priview_views_ese,
    unit_variance,
)
from repro.analysis.crossover import (
    crossover_table,
    direct_beats_flat_threshold,
)
from repro.analysis.ell_selection import (
    cells_per_view_table,
    ell_objective_pairs,
    ell_objective_triples,
    ell_table,
)

__all__ = [
    "direct_ese",
    "flat_ese",
    "fourier_ese",
    "priview_views_ese",
    "unit_variance",
    "crossover_table",
    "direct_beats_flat_threshold",
    "cells_per_view_table",
    "ell_objective_pairs",
    "ell_objective_triples",
    "ell_table",
]
