"""Expected-squared-error formulas (paper Equations 2-5).

All values are expressed in multiples of the unit variance
``V_u = 2 / eps**2`` (Equation 2) unless an epsilon is supplied.
"""

from __future__ import annotations

import math


def unit_variance(epsilon: float = 1.0) -> float:
    """Equation 2: ``V_u = 2 / eps**2``."""
    return 2.0 / (epsilon * epsilon)


def flat_ese(num_attributes: int, epsilon: float = 1.0) -> float:
    """Equation 3: Flat's per-marginal ESE is ``2**d * V_u``."""
    return (2.0**num_attributes) * unit_variance(epsilon)


def direct_ese(num_attributes: int, k: int, epsilon: float = 1.0) -> float:
    """Equation 4: Direct's per-marginal ESE, ``2**k * C(d,k)**2 * V_u``."""
    m = math.comb(num_attributes, k)
    return (2.0**k) * (m * m) * unit_variance(epsilon)


def fourier_ese(num_attributes: int, k: int, epsilon: float = 1.0) -> float:
    """Fourier's per-marginal ESE: ``m**2 * V_u`` with all weight-<=k
    coefficients released — a factor 2**k below Direct (Section 3.3)."""
    m = sum(math.comb(num_attributes, j) for j in range(k + 1))
    return float(m * m) * unit_variance(epsilon)


def priview_views_ese(
    block_size: int, num_blocks: int, epsilon: float = 1.0
) -> float:
    """ESE of a single k-way marginal read off one noisy view:
    ``2**l * w**2 * V_u`` (the Section 4.1 middle-ground argument).

    Averaging over overlapping views reduces this further; Equation 5
    (implemented as :func:`repro.core.view_selection.priview_noise_error`)
    accounts for the expected multiplicity.
    """
    return (2.0**block_size) * (num_blocks**2) * unit_variance(epsilon)
