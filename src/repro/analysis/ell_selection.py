"""The view-width objective tables (paper Sections 4.5 and 4.7).

Choosing the view width ``l`` to minimise the pair-reconstruction
noise error reduces (Section 4.5) to minimising
``2**(l/2) / (l (l-1))``; for triples, ``2**(l/2) / (l (l-1) (l-2))``.
The paper tabulates both for l = 5..12 and concludes l = 8 is a good
universal choice.  Section 4.7 generalises to b-valued categorical
attributes via the cells-per-view count ``s``.
"""

from __future__ import annotations

import math

from repro.exceptions import DimensionError


def ell_objective_pairs(block_size: int) -> float:
    """``2**(l/2) / (l (l-1))`` — noise-error objective for pairs."""
    if block_size < 2:
        raise DimensionError(f"need l >= 2, got {block_size}")
    return 2.0 ** (block_size / 2.0) / (block_size * (block_size - 1))


def ell_objective_triples(block_size: int) -> float:
    """``2**(l/2) / (l (l-1) (l-2))`` — the triples analogue."""
    if block_size < 3:
        raise DimensionError(f"need l >= 3, got {block_size}")
    return 2.0 ** (block_size / 2.0) / (
        block_size * (block_size - 1) * (block_size - 2)
    )


def ell_table(ells=range(5, 13)) -> dict[int, tuple[float, float]]:
    """The Section 4.5 table: l -> (pair objective, triple objective)."""
    return {l: (ell_objective_pairs(l), ell_objective_triples(l)) for l in ells}


def _cells_objective_pairs(cells: int, base: int) -> float:
    attrs = math.log(cells, base)
    return math.sqrt(cells) / (attrs * (attrs - 1))


def recommended_cells_per_view(
    base: int, tolerance: float = 1.35
) -> tuple[int, int]:
    """A (low, high) range of per-view cell counts for b-valued data.

    Scans a geometric grid of cell counts and returns the range whose
    Section 4.7 objective ``sqrt(s) / (log_b s (log_b s - 1))`` stays
    within ``tolerance`` of the minimum — reproducing the shape of the
    paper's s-recommendation table (the band grows with b; the paper's
    own bands, e.g. 100-1000 for b=2, correspond to a ~1.35x slack).
    """
    if base < 2:
        raise DimensionError(f"attribute arity must be >= 2, got {base}")
    grid = [int(round(base**2 * 1.1**j)) for j in range(1, 120)]
    scored = [
        (s, _cells_objective_pairs(s, base)) for s in grid if s > base**2
    ]
    best = min(score for _, score in scored)
    good = [s for s, score in scored if score <= tolerance * best]
    return (min(good), max(good))


def cells_per_view_table(bases=(2, 3, 4, 5)) -> dict[int, tuple[int, int]]:
    """The Section 4.7 table: b -> recommended cells-per-view range."""
    return {b: recommended_cells_per_view(b) for b in bases}
