"""Atomic, content-addressed artifact I/O.

Every byte the store persists goes through the same discipline:

1. write to a ``.tmp-*`` file **in the destination directory** (same
   filesystem, so the final rename is atomic);
2. flush + ``fsync`` the file, close it;
3. ``os.replace`` onto the final name;
4. ``fsync`` the containing directory so the rename itself is durable.

A writer killed between (1) and (3) leaves only a ``.tmp-*`` file:
readers never see it (objects are addressed by digest, the manifest by
its fixed name), ``verify`` ignores it, and ``gc`` sweeps it once it
is stale.  Objects are stored under ``objects/<aa>/<sha256>.npz``
(two-hex-digit fan-out), which makes them immutable once renamed —
hence safe to read without any lock.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import tempfile

#: prefix of in-flight temp files; anything carrying it is invisible
#: to readers and fair game for a stale-file sweep
TMP_PREFIX = ".tmp-"

#: file extension of stored synopsis artifacts
OBJECT_SUFFIX = ".npz"

# Indirection point: tests monkeypatch this to simulate a writer dying
# between temp-write and rename (crash-consistency coverage).
_replace = os.replace


def file_sha256(path: str | os.PathLike, chunk_bytes: int = 1 << 20) -> str:
    """sha256 of the file's raw bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                return digest.hexdigest()
            digest.update(block)


def fsync_dir(path: str | os.PathLike) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def make_temp(directory: str | os.PathLike, suffix: str = "") -> pathlib.Path:
    """An empty ``.tmp-*`` file in ``directory``, ready to be written."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    fd, name = tempfile.mkstemp(prefix=TMP_PREFIX, suffix=suffix, dir=directory)
    os.close(fd)
    return pathlib.Path(name)


def fsync_file(path: str | os.PathLike) -> None:
    """Flush a fully written file's data to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> int:
    """Durably replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = pathlib.Path(path)
    tmp = make_temp(path.parent, suffix=path.suffix)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        _replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)
    return len(data)


def object_path(objects_dir: str | os.PathLike, sha256: str) -> pathlib.Path:
    """Canonical content-addressed location of one artifact."""
    return pathlib.Path(objects_dir) / sha256[:2] / f"{sha256}{OBJECT_SUFFIX}"


def ingest_file(
    tmp_path: str | os.PathLike, objects_dir: str | os.PathLike
) -> tuple[str, pathlib.Path, int]:
    """Move a fully written temp file into the object store.

    Hashes ``tmp_path``, fsyncs it, and atomically renames it to its
    content address.  Returns ``(sha256, final_path, size_bytes)``.
    Publishing identical bytes twice is a no-op at this layer (the
    object already exists); the temp file is always consumed.
    """
    tmp_path = pathlib.Path(tmp_path)
    size = tmp_path.stat().st_size
    sha = file_sha256(tmp_path)
    final = object_path(objects_dir, sha)
    final.parent.mkdir(parents=True, exist_ok=True)
    if final.exists():
        tmp_path.unlink(missing_ok=True)
        return sha, final, size
    fsync_file(tmp_path)
    _replace(tmp_path, final)
    fsync_dir(final.parent)
    return sha, final, size


def quarantine_file(
    path: str | os.PathLike, quarantine_dir: str | os.PathLike
) -> pathlib.Path:
    """Move a corrupt artifact aside (never overwriting prior evidence).

    Returns the quarantine location.  Quarantined bytes are kept for
    post-mortem inspection instead of being deleted or re-served.
    """
    path = pathlib.Path(path)
    quarantine_dir = pathlib.Path(quarantine_dir)
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    target = quarantine_dir / path.name
    attempt = 0
    while target.exists():
        attempt += 1
        target = quarantine_dir / f"{path.stem}.{attempt}{path.suffix}"
    os.replace(path, target)
    fsync_dir(quarantine_dir)
    return target


def is_tmp(path: str | os.PathLike) -> bool:
    """True for in-flight (or abandoned) ``.tmp-*`` files."""
    return pathlib.Path(path).name.startswith(TMP_PREFIX)


def iter_objects(objects_dir: str | os.PathLike):
    """Yield every committed object file under ``objects_dir``."""
    objects_dir = pathlib.Path(objects_dir)
    if not objects_dir.is_dir():
        return
    for entry in sorted(objects_dir.rglob(f"*{OBJECT_SUFFIX}")):
        if entry.is_file() and not is_tmp(entry):
            yield entry


def iter_tmp_files(root: str | os.PathLike):
    """Yield every ``.tmp-*`` leftover anywhere under ``root``."""
    root = pathlib.Path(root)
    if not root.is_dir():
        return
    for entry in sorted(root.rglob(f"{TMP_PREFIX}*")):
        if entry.is_file():
            yield entry
