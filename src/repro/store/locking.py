"""Cross-process (and cross-thread) file locks for the store.

The registry serialises *mutations* — publish, pin, prune, gc — behind
one exclusive lock per store root.  Readers never take it: the
manifest and every artifact are only ever replaced atomically, so a
reader always observes either the previous or the next complete state.

The lock is two-layered:

* a per-path :class:`threading.Lock` serialises threads inside one
  process (``flock`` alone is per open-file-description, and nesting
  semantics across threads are easy to get wrong);
* ``fcntl.flock(LOCK_EX)`` on a sidecar lock file serialises
  processes.  Where ``fcntl`` is unavailable the in-process lock still
  applies and an ``O_CREAT | O_EXCL`` lock file is polled instead.

Both layers are acquired with a deadline; exceeding it raises
:class:`~repro.exceptions.StoreError` rather than hanging a publisher
forever on a wedged peer.
"""

from __future__ import annotations

import os
import pathlib
import threading
from time import monotonic, sleep

from repro.exceptions import StoreError

try:  # pragma: no cover - import guard exercised by platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

DEFAULT_TIMEOUT = 30.0
_POLL_S = 0.02

# One in-process lock per lock-file path, shared by every FileLock
# instance pointing at the same store.
_guard = threading.Lock()
_thread_locks: dict[str, threading.Lock] = {}


def _thread_lock(path: pathlib.Path) -> threading.Lock:
    key = str(path)
    with _guard:
        lock = _thread_locks.get(key)
        if lock is None:
            lock = _thread_locks[key] = threading.Lock()
        return lock


class FileLock:
    """An exclusive advisory lock on ``path`` (a sidecar lock file).

    Not re-entrant.  Use as a context manager::

        with FileLock(store.lock_path):
            ...mutate manifest...
    """

    def __init__(self, path: str | os.PathLike, timeout: float = DEFAULT_TIMEOUT):
        self.path = pathlib.Path(path)
        self.timeout = timeout
        self._fd: int | None = None
        self._thread_lock = _thread_lock(self.path)
        self._held = False

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        if self._held:
            raise StoreError(f"lock {self.path} is not re-entrant")
        deadline = monotonic() + self.timeout
        if not self._thread_lock.acquire(timeout=self.timeout):
            raise StoreError(
                f"timed out after {self.timeout}s waiting for the store "
                f"lock {self.path} (in-process)"
            )
        try:
            self._acquire_file(deadline)
        except BaseException:
            self._thread_lock.release()
            raise
        self._held = True

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            if self._fd is not None:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = None
            elif fcntl is None:  # pragma: no cover - non-POSIX fallback
                try:
                    os.unlink(self.path)
                except FileNotFoundError:
                    pass
        finally:
            self._thread_lock.release()

    # ------------------------------------------------------------------
    def _acquire_file(self, deadline: float) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except (BlockingIOError, InterruptedError):
                    if monotonic() >= deadline:
                        os.close(fd)
                        raise StoreError(
                            f"timed out after {self.timeout}s waiting for "
                            f"the store lock {self.path}"
                        ) from None
                    sleep(_POLL_S)
        else:  # pragma: no cover - non-POSIX fallback
            while True:
                try:
                    os.close(os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                    ))
                    self._fd = None  # unlink-based; no fd kept
                    return
                except FileExistsError:
                    if monotonic() >= deadline:
                        raise StoreError(
                            f"timed out after {self.timeout}s waiting for "
                            f"the store lock {self.path}"
                        ) from None
                    sleep(_POLL_S)

    # ------------------------------------------------------------------
    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False
