"""The registry manifest: schema and atomic JSON persistence.

One ``manifest.json`` per store root records every published dataset,
its ordered versions, and its pin.  The file is only ever replaced
atomically (see :mod:`repro.store.artifacts`), so readers parse either
the previous or the next complete registry state — never a partial
write — and therefore need no lock.

Schema (``manifest_version`` 1)::

    {"manifest_version": 1,
     "datasets": {
       "<name>": {
         "pinned": null | <int>,
         "versions": [
           {"version": 1, "sha256": "...", "size_bytes": 12345,
            "epsilon": 1.0, "num_attributes": 32, "num_views": 72,
            "design": "C_2(8, 72)", "total_count": 200000.0,
            "created_at": "2026-08-06T12:00:00Z",
            "fit_seconds": 1.25, "extra": {...}}, ...]}}}

``versions`` is append-ordered; ``version`` numbers are assigned by
the registry, strictly increasing, and never reused (pruning old
versions does not renumber the survivors).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.exceptions import StoreError
from repro.store.artifacts import atomic_write_bytes

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class VersionInfo:
    """One published synopsis version and its recorded metadata."""

    name: str
    version: int
    sha256: str
    size_bytes: int
    epsilon: float | None = None
    num_attributes: int | None = None
    num_views: int | None = None
    design: str | None = None
    total_count: float | None = None
    created_at: str | None = None
    fit_seconds: float | None = None
    #: serialized Domain schema (``Domain.to_json()``) when the
    #: synopsis carries one — lets ``store ls``/clients see the
    #: record-level schema without opening the artifact
    domain: dict | None = None
    extra: dict = field(default_factory=dict)

    @property
    def spec(self) -> str:
        """The ``name@version`` string resolving back to this entry."""
        return f"{self.name}@{self.version}"

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "epsilon": self.epsilon,
            "num_attributes": self.num_attributes,
            "num_views": self.num_views,
            "design": self.design,
            "total_count": self.total_count,
            "created_at": self.created_at,
            "fit_seconds": self.fit_seconds,
            "domain": self.domain,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, name: str, blob: dict) -> "VersionInfo":
        try:
            return cls(
                name=name,
                version=int(blob["version"]),
                sha256=str(blob["sha256"]),
                size_bytes=int(blob["size_bytes"]),
                epsilon=blob.get("epsilon"),
                num_attributes=blob.get("num_attributes"),
                num_views=blob.get("num_views"),
                design=blob.get("design"),
                total_count=blob.get("total_count"),
                created_at=blob.get("created_at"),
                fit_seconds=blob.get("fit_seconds"),
                domain=blob.get("domain"),
                extra=dict(blob.get("extra") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(
                f"malformed manifest entry for {name!r}: {exc}"
            ) from exc


@dataclass
class DatasetEntry:
    """All versions published under one dataset name."""

    name: str
    versions: list[VersionInfo] = field(default_factory=list)
    pinned: int | None = None

    @property
    def latest(self) -> VersionInfo:
        if not self.versions:
            raise StoreError(f"dataset {self.name!r} has no versions")
        return self.versions[-1]

    @property
    def default(self) -> VersionInfo:
        """What bare ``name`` / ``name@latest`` resolves to: the pinned
        version when a pin is set, the newest otherwise."""
        if self.pinned is not None:
            return self.get(self.pinned)
        return self.latest

    def get(self, version: int) -> VersionInfo:
        for info in self.versions:
            if info.version == version:
                return info
        raise StoreError(
            f"dataset {self.name!r} has no version {version} "
            f"(available: {[v.version for v in self.versions]})"
        )

    def next_version(self) -> int:
        return self.versions[-1].version + 1 if self.versions else 1

    def to_json(self) -> dict:
        return {
            "pinned": self.pinned,
            "versions": [v.to_json() for v in self.versions],
        }

    @classmethod
    def from_json(cls, name: str, blob: dict) -> "DatasetEntry":
        versions = [
            VersionInfo.from_json(name, v) for v in blob.get("versions", [])
        ]
        pinned = blob.get("pinned")
        return cls(
            name=name,
            versions=versions,
            pinned=int(pinned) if pinned is not None else None,
        )


@dataclass
class Manifest:
    """The full registry state, as parsed from ``manifest.json``."""

    datasets: dict[str, DatasetEntry] = field(default_factory=dict)

    def entry(self, name: str) -> DatasetEntry:
        try:
            return self.datasets[name]
        except KeyError:
            raise StoreError(
                f"unknown dataset {name!r} "
                f"(published: {sorted(self.datasets) or 'none'})"
            ) from None

    def ensure(self, name: str) -> DatasetEntry:
        entry = self.datasets.get(name)
        if entry is None:
            entry = self.datasets[name] = DatasetEntry(name)
        return entry

    @property
    def num_entries(self) -> int:
        """Total published versions across every dataset."""
        return sum(len(e.versions) for e in self.datasets.values())

    @property
    def total_bytes(self) -> int:
        """Recorded artifact bytes, counting shared objects once."""
        seen: dict[str, int] = {}
        for entry in self.datasets.values():
            for info in entry.versions:
                seen[info.sha256] = info.size_bytes
        return sum(seen.values())

    def referenced_digests(self) -> set[str]:
        return {
            info.sha256
            for entry in self.datasets.values()
            for info in entry.versions
        }

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "manifest_version": MANIFEST_VERSION,
            "datasets": {
                name: entry.to_json()
                for name, entry in sorted(self.datasets.items())
            },
        }

    def dump(self, path: str | os.PathLike) -> None:
        """Atomically replace the manifest file with this state."""
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True)
        atomic_write_bytes(path, payload.encode("utf-8"))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Manifest":
        """Parse ``manifest.json``; a missing file is an empty registry."""
        path = pathlib.Path(path)
        try:
            blob = json.loads(path.read_text())
        except FileNotFoundError:
            return cls()
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt manifest {path}: {exc}") from exc
        version = blob.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"manifest {path} has manifest_version {version!r}; this "
                f"library reads version {MANIFEST_VERSION}"
            )
        datasets = {
            name: DatasetEntry.from_json(name, entry)
            for name, entry in blob.get("datasets", {}).items()
        }
        return cls(datasets=datasets)
