"""``repro.store`` — a versioned, multi-tenant synopsis registry.

The synopsis is PriView's published artifact; this package makes it a
durable, queryable *product* instead of an in-memory object (see
``docs/STORE.md``):

* :class:`SynopsisStore` — one directory owning content-addressed
  artifacts (temp + fsync + atomic rename; sha256 recorded in a
  manifest; corruption quarantined, never served) and a registry
  mapping ``name → ordered versions`` with
  ``publish / get / resolve("name@latest") / pin / prune / gc /
  verify`` under a file lock;
* ``repro.serve`` hosts a whole store: ``serve_store(...)`` routes
  ``POST /v1/d/{name}/marginal`` per dataset and hot-swaps newly
  published versions with zero dropped in-flight requests;
* the CLI front-end is ``repro store publish|ls|info|verify|gc|serve``.

Quick tour::

    from repro.store import SynopsisStore

    store = SynopsisStore("synopses/")
    store.publish("adult", synopsis, fit_seconds=12.5)
    store.resolve("adult@latest").version     # 1
    again = store.get("adult")                # integrity-checked load
    store.verify()["clean"]                   # True
"""

from repro.store.locking import FileLock
from repro.store.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    DatasetEntry,
    Manifest,
    VersionInfo,
)
from repro.store.registry import (
    DEFAULT_TMP_AGE_S,
    SynopsisStore,
    parse_spec,
)

__all__ = [
    "DEFAULT_TMP_AGE_S",
    "DatasetEntry",
    "FileLock",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Manifest",
    "SynopsisStore",
    "VersionInfo",
    "parse_spec",
]
