"""The synopsis registry: named, versioned, durable synopsis artifacts.

:class:`SynopsisStore` owns one directory tree::

    <root>/
      manifest.json     # name -> ordered versions + pins (atomic JSON)
      .lock             # mutation lock (publish / pin / prune / gc)
      objects/aa/<sha256>.npz   # content-addressed, immutable artifacts
      quarantine/       # corrupt artifacts moved aside, never served

Publish discipline (crash-safe at every step):

1. the synopsis is serialised to a ``.tmp-*`` file inside ``objects/``;
2. the file is hashed, fsynced and atomically renamed to its content
   address — identical payloads dedupe to one object;
3. under the store lock, the manifest gains the new version entry and
   is itself atomically replaced.

A writer killed before (3) leaves the registry byte-for-byte as it
was: readers keep resolving and serving the previous version, and the
leftovers (a stale temp file, or an unreferenced object) are swept by
:meth:`SynopsisStore.gc`.  Reads never lock: the manifest is a
consistent snapshot and objects are immutable once named.

Loads verify the artifact's recorded sha256 (and the payload digest
inside the file, see :mod:`repro.core.serialization`); a mismatch
quarantines the file and raises
:class:`~repro.exceptions.SynopsisIntegrityError` instead of serving
corrupt counts.
"""

from __future__ import annotations

import os
import pathlib
import shutil
from time import gmtime, perf_counter, strftime, time

from repro import obs
from repro.exceptions import StoreError, SynopsisIntegrityError
from repro.obs.log import get_logger
from repro.store import artifacts
from repro.store.locking import FileLock
from repro.store.manifest import (
    MANIFEST_NAME,
    DatasetEntry,
    Manifest,
    VersionInfo,
)

log = get_logger("store")

OBJECTS_DIR = "objects"
QUARANTINE_DIR = "quarantine"
LOCK_NAME = ".lock"

#: default age before ``gc`` sweeps a ``.tmp-*`` leftover — generous
#: enough that a live publisher's in-flight file is never reaped
DEFAULT_TMP_AGE_S = 3600.0


def parse_spec(spec: str) -> tuple[str, int | None]:
    """Split ``"name"`` / ``"name@latest"`` / ``"name@3"``.

    Returns ``(name, version)`` with ``version=None`` meaning "the
    default" (pinned if set, else newest).
    """
    if not isinstance(spec, str) or not spec:
        raise StoreError(f"bad dataset spec {spec!r}")
    name, sep, tag = spec.partition("@")
    if not name:
        raise StoreError(f"bad dataset spec {spec!r}: empty name")
    if not sep or tag in ("", "latest"):
        return name, None
    try:
        version = int(tag)
    except ValueError:
        raise StoreError(
            f"bad dataset spec {spec!r}: version must be an integer "
            "or 'latest'"
        ) from None
    return name, version


def _utc_now() -> str:
    return strftime("%Y-%m-%dT%H:%M:%SZ", gmtime())


class SynopsisStore:
    """A versioned, multi-tenant registry of published synopses."""

    def __init__(
        self,
        root: str | os.PathLike,
        create: bool = True,
        lock_timeout: float = 30.0,
    ):
        self.root = pathlib.Path(root)
        self.objects_dir = self.root / OBJECTS_DIR
        self.quarantine_dir = self.root / QUARANTINE_DIR
        self.manifest_path = self.root / MANIFEST_NAME
        self.lock_path = self.root / LOCK_NAME
        self._lock_timeout = lock_timeout
        if create:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StoreError(f"no synopsis store at {self.root}")

    def _lock(self) -> FileLock:
        return FileLock(self.lock_path, timeout=self._lock_timeout)

    # ------------------------------------------------------------------
    # Reading (lock-free)
    # ------------------------------------------------------------------
    def manifest(self) -> Manifest:
        """A consistent snapshot of the registry state."""
        return Manifest.load(self.manifest_path)

    def manifest_mtime(self) -> float:
        """mtime of ``manifest.json`` (0.0 before the first publish);
        changes on every mutation, which is what serve's hot-swap
        watcher polls."""
        try:
            return self.manifest_path.stat().st_mtime
        except FileNotFoundError:
            return 0.0

    def names(self) -> list[str]:
        return sorted(self.manifest().datasets)

    def entries(self) -> list[DatasetEntry]:
        manifest = self.manifest()
        return [manifest.datasets[name] for name in sorted(manifest.datasets)]

    def resolve(self, spec: str) -> VersionInfo:
        """``"name"`` / ``"name@latest"`` / ``"name@3"`` → version info."""
        name, version = parse_spec(spec)
        entry = self.manifest().entry(name)
        return entry.default if version is None else entry.get(version)

    def object_path(self, info: VersionInfo) -> pathlib.Path:
        return artifacts.object_path(self.objects_dir, info.sha256)

    def get(self, spec: str, verify: bool = True):
        """Resolve and load a synopsis (integrity-checked by default)."""
        return self.load_version(self.resolve(spec), verify=verify)

    def load_version(self, info: VersionInfo, verify: bool = True):
        """Load one resolved version from the object store.

        With ``verify`` the file's sha256 must match the manifest
        record; a corrupt artifact is quarantined (so it is never
        re-served) and :class:`SynopsisIntegrityError` is raised.
        """
        from repro.core.serialization import load_synopsis

        path = self.object_path(info)
        load_start = perf_counter()
        with obs.span("store.load"):
            obs.incr("store.load")
            if not path.exists():
                raise StoreError(
                    f"{info.spec}: artifact {info.sha256[:12]}… is missing "
                    f"from {self.objects_dir} (gc'd or never committed?)"
                )
            if verify:
                actual = artifacts.file_sha256(path)
                if actual != info.sha256:
                    self._quarantine(path, info, actual)
            try:
                synopsis = load_synopsis(path, verify=verify)
            except SynopsisIntegrityError:
                self._quarantine(path, info, "payload-digest-mismatch")
            obs.observe(
                "store.load_seconds",
                perf_counter() - load_start,
                {"dataset": info.name},
            )
            return synopsis

    def _quarantine(self, path: pathlib.Path, info: VersionInfo, actual):
        target = artifacts.quarantine_file(path, self.quarantine_dir)
        obs.incr("store.corrupt_artifacts")
        log.error(
            "%s: artifact failed integrity check (%s != %s); quarantined "
            "to %s", info.spec, actual, info.sha256, target,
        )
        raise SynopsisIntegrityError(
            f"{info.spec}: artifact failed its integrity check "
            f"({actual} != recorded {info.sha256}); moved to {target}"
        )

    # ------------------------------------------------------------------
    # Publishing and other mutations (store-locked)
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        synopsis_or_path,
        created_at: str | None = None,
        fit_seconds: float | None = None,
        extra: dict | None = None,
    ) -> VersionInfo:
        """Durably publish a synopsis as the next version of ``name``.

        ``synopsis_or_path`` is a fitted
        :class:`~repro.core.synopsis.PriViewSynopsis` or a path to a
        saved ``.npz``.  The artifact is committed (content-addressed,
        fsynced, atomically renamed) *before* the manifest references
        it, so a crash at any point leaves the previous version
        serving.  Returns the new :class:`VersionInfo`.
        """
        from repro.core.serialization import load_synopsis, save_synopsis

        if "@" in name or not name:
            raise StoreError(
                f"bad dataset name {name!r} (non-empty, no '@')"
            )
        publish_start = perf_counter()
        with obs.span("store.publish"):
            tmp = artifacts.make_temp(
                self.objects_dir, suffix=artifacts.OBJECT_SUFFIX
            )
            try:
                if isinstance(synopsis_or_path, (str, bytes)) or hasattr(
                    synopsis_or_path, "__fspath__"
                ):
                    synopsis = load_synopsis(synopsis_or_path)
                    shutil.copyfile(synopsis_or_path, tmp)
                else:
                    synopsis = synopsis_or_path
                    save_synopsis(synopsis, tmp)
                sha, _, size = artifacts.ingest_file(tmp, self.objects_dir)
            except BaseException:
                # Leave no half-written object behind on a *clean*
                # failure; a hard kill is covered by gc's tmp sweep.
                tmp.unlink(missing_ok=True)
                raise
            design = getattr(synopsis, "design", None)
            with self._lock():
                manifest = self.manifest()
                entry = manifest.ensure(name)
                info = VersionInfo(
                    name=name,
                    version=entry.next_version(),
                    sha256=sha,
                    size_bytes=size,
                    epsilon=getattr(synopsis, "epsilon", None),
                    num_attributes=getattr(synopsis, "num_attributes", None),
                    num_views=len(getattr(synopsis, "views", ()) or ()),
                    design=getattr(design, "notation", None),
                    total_count=(
                        float(synopsis.total_count())
                        if callable(getattr(synopsis, "total_count", None))
                        else None
                    ),
                    created_at=created_at or _utc_now(),
                    fit_seconds=fit_seconds,
                    domain=(
                        domain.to_json()
                        if (domain := getattr(synopsis, "domain", None))
                        is not None
                        else None
                    ),
                    extra=dict(extra or {}),
                )
                entry.versions.append(info)
                manifest.dump(self.manifest_path)
            obs.incr("store.publish")
            obs.observe(
                "store.publish_seconds",
                perf_counter() - publish_start,
                {"dataset": name},
            )
            self._export_gauges(manifest)
            log.info("published %s (sha256 %s…, %d bytes)",
                     info.spec, sha[:12], size)
        return info

    def pin(self, name: str, version: int) -> VersionInfo:
        """Make ``name`` (and ``name@latest``) resolve to ``version``."""
        with self._lock():
            manifest = self.manifest()
            info = manifest.entry(name).get(int(version))
            manifest.entry(name).pinned = info.version
            manifest.dump(self.manifest_path)
        return info

    def unpin(self, name: str) -> None:
        """Return ``name`` to newest-version resolution."""
        with self._lock():
            manifest = self.manifest()
            manifest.entry(name).pinned = None
            manifest.dump(self.manifest_path)

    def prune(self, name: str, keep_last: int = 1) -> list[VersionInfo]:
        """Drop all but the newest ``keep_last`` versions of ``name``.

        The pinned version (if any) is always kept.  Returns what was
        dropped; the objects themselves become garbage for :meth:`gc`.
        """
        if keep_last < 1:
            raise StoreError("prune keeps at least one version")
        with self._lock():
            manifest = self.manifest()
            entry = manifest.entry(name)
            keep = {v.version for v in entry.versions[-keep_last:]}
            if entry.pinned is not None:
                keep.add(entry.pinned)
            dropped = [v for v in entry.versions if v.version not in keep]
            entry.versions = [
                v for v in entry.versions if v.version in keep
            ]
            manifest.dump(self.manifest_path)
        self._export_gauges(manifest)
        return dropped

    def prune_matching(
        self, pattern: str = "*", keep_last: int = 1
    ) -> dict[str, list[VersionInfo]]:
        """:meth:`prune` every dataset whose name matches a glob.

        The retention pass streaming publishers run after each window:
        ``prune_matching("clicks*", keep_last=24)`` keeps each matching
        dataset's newest 24 versions (pinned versions always survive).
        Returns ``{name: dropped_versions}`` for datasets that lost
        anything; the dropped objects become garbage for :meth:`gc`.
        """
        import fnmatch

        dropped: dict[str, list[VersionInfo]] = {}
        for entry in self.entries():
            if not fnmatch.fnmatchcase(entry.name, pattern):
                continue
            gone = self.prune(entry.name, keep_last=keep_last)
            if gone:
                dropped[entry.name] = gone
        return dropped

    def gc(self, tmp_age_s: float = DEFAULT_TMP_AGE_S) -> dict:
        """Sweep unreferenced objects and stale temp files.

        Unreferenced objects exist after :meth:`prune` or a publish
        that died between object commit and manifest update; temp
        files after a writer killed mid-write.  Temp files younger
        than ``tmp_age_s`` are left alone (they may be in flight).
        Returns a summary dict.
        """
        removed_objects: list[str] = []
        removed_tmp: list[str] = []
        reclaimed = 0
        with self._lock():
            manifest = self.manifest()
            referenced = manifest.referenced_digests()
            for path in list(artifacts.iter_objects(self.objects_dir)):
                if path.stem not in referenced:
                    reclaimed += path.stat().st_size
                    path.unlink()
                    removed_objects.append(path.name)
            cutoff = time() - tmp_age_s
            for path in list(artifacts.iter_tmp_files(self.root)):
                try:
                    if path.stat().st_mtime <= cutoff:
                        reclaimed += path.stat().st_size
                        path.unlink()
                        removed_tmp.append(path.name)
                except FileNotFoundError:
                    continue
        self._export_gauges(manifest)
        summary = {
            "removed_objects": removed_objects,
            "removed_tmp": removed_tmp,
            "reclaimed_bytes": reclaimed,
        }
        log.info("gc: %d object(s), %d temp file(s), %d bytes reclaimed",
                 len(removed_objects), len(removed_tmp), reclaimed)
        return summary

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def verify(self, quarantine: bool = False) -> dict:
        """Check every referenced artifact against its recorded sha256.

        Read-only by default; with ``quarantine`` corrupt files are
        moved aside.  In-flight ``.tmp-*`` files are *not* corruption —
        a crashed publish leaves a clean store.  Returns a report with
        ``clean`` True when nothing is missing or corrupt.
        """
        manifest = self.manifest()
        checked = 0
        ok = 0
        missing: list[str] = []
        corrupt: list[str] = []
        for entry in manifest.datasets.values():
            for info in entry.versions:
                checked += 1
                path = self.object_path(info)
                if not path.exists():
                    missing.append(info.spec)
                    continue
                if artifacts.file_sha256(path) == info.sha256:
                    ok += 1
                    continue
                corrupt.append(info.spec)
                obs.incr("store.corrupt_artifacts")
                if quarantine:
                    target = artifacts.quarantine_file(
                        path, self.quarantine_dir
                    )
                    log.error("verify: quarantined %s to %s",
                              info.spec, target)
        self._export_gauges(manifest)
        return {
            "checked": checked,
            "ok": ok,
            "missing": missing,
            "corrupt": corrupt,
            "tmp_files": [
                p.name for p in artifacts.iter_tmp_files(self.root)
            ],
            "clean": not missing and not corrupt,
        }

    def info(self, spec: str) -> dict:
        """JSON-ready description of one dataset (or ``name@version``)."""
        name, version = parse_spec(spec)
        entry = self.manifest().entry(name)
        versions = (
            entry.versions if version is None else [entry.get(version)]
        )
        return {
            "name": name,
            "pinned": entry.pinned,
            "versions": [v.to_json() for v in versions],
        }

    def stats(self) -> dict:
        manifest = self.manifest()
        self._export_gauges(manifest)
        return {
            "root": str(self.root),
            "datasets": len(manifest.datasets),
            "entries": manifest.num_entries,
            "bytes": manifest.total_bytes,
        }

    def _export_gauges(self, manifest: Manifest) -> None:
        obs.set_gauge("store.entries", manifest.num_entries)
        obs.set_gauge("store.bytes", manifest.total_bytes)

    def __repr__(self) -> str:
        return f"SynopsisStore({str(self.root)!r})"
