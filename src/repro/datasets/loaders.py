"""Loaders for the original evaluation datasets (when available).

Supply the files via the ``REPRO_DATA_DIR`` environment variable or an
explicit path; :func:`load_or_synthesize` then prefers the real data
and otherwise falls back to the synthetic stand-ins of
:mod:`repro.datasets.clickstream`, applying the same preprocessing the
paper describes (top-32 pages for Kosarak, 9 attributes for MSNBC).
"""

from __future__ import annotations

import collections
import os
import pathlib

import numpy as np

from repro.datasets import clickstream
from repro.exceptions import DatasetError
from repro.marginals.dataset import BinaryDataset

#: filename conventions checked inside REPRO_DATA_DIR
_FILENAMES = {
    "kosarak": "kosarak.dat",
    "aol": "aol_categories.dat",
    "msnbc": "msnbc990928.seq",
}


def load_fimi_transactions(
    path: str | os.PathLike,
    num_attributes: int,
    name: str = "fimi",
) -> BinaryDataset:
    """Parse a FIMI ``.dat`` file, keeping the top-N most frequent items.

    Each line is a whitespace-separated list of item ids.  The paper's
    Kosarak preprocessing keeps the 32 most popular pages; items are
    re-indexed by decreasing frequency.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DatasetError(f"missing FIMI file {path}")
    frequency: collections.Counter[int] = collections.Counter()
    transactions: list[list[int]] = []
    with path.open() as handle:
        for line in handle:
            items = [int(tok) for tok in line.split()]
            if items:
                transactions.append(items)
                frequency.update(set(items))
    top = [item for item, _ in frequency.most_common(num_attributes)]
    remap = {item: idx for idx, item in enumerate(top)}
    rows = np.zeros((len(transactions), num_attributes), dtype=np.uint8)
    for r, items in enumerate(transactions):
        for item in items:
            idx = remap.get(item)
            if idx is not None:
                rows[r, idx] = 1
    return BinaryDataset(rows, name=name)


def load_msnbc_sequences(
    path: str | os.PathLike,
    num_attributes: int = 9,
    name: str = "msnbc",
) -> BinaryDataset:
    """Parse the UCI MSNBC sequence file into binary page-visit rows.

    The UCI file lists, per user line, the categories (1..17) of
    visited pages; the paper keeps 9 attributes, which we take to be
    the 9 most visited categories.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DatasetError(f"missing MSNBC file {path}")
    sequences: list[list[int]] = []
    with path.open() as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or not stripped[0].isdigit():
                continue  # header / comment lines
            sequences.append([int(tok) for tok in stripped.split()])
    frequency: collections.Counter[int] = collections.Counter()
    for seq in sequences:
        frequency.update(set(seq))
    top = [cat for cat, _ in frequency.most_common(num_attributes)]
    remap = {cat: idx for idx, cat in enumerate(top)}
    rows = np.zeros((len(sequences), num_attributes), dtype=np.uint8)
    for r, seq in enumerate(sequences):
        for cat in seq:
            idx = remap.get(cat)
            if idx is not None:
                rows[r, idx] = 1
    return BinaryDataset(rows, name=name)


def load_or_synthesize(
    name: str,
    data_dir: str | os.PathLike | None = None,
    num_records: int | None = None,
    rng: np.random.Generator | None = None,
) -> BinaryDataset:
    """Real dataset if its file is present, synthetic stand-in otherwise.

    ``name`` is ``"kosarak"``, ``"aol"`` or ``"msnbc"``.  The data
    directory defaults to ``$REPRO_DATA_DIR``.  ``num_records``
    truncates / sizes the dataset (handy for quick experiment scales).
    """
    if name not in _FILENAMES:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(_FILENAMES)}"
        )
    directory = data_dir or os.environ.get("REPRO_DATA_DIR")
    if directory:
        path = pathlib.Path(directory) / _FILENAMES[name]
        if path.exists():
            if name == "kosarak":
                dataset = load_fimi_transactions(path, 32, name="kosarak")
            elif name == "aol":
                dataset = load_fimi_transactions(path, 45, name="aol")
            else:
                dataset = load_msnbc_sequences(path, 9, name="msnbc")
            if num_records is not None and num_records < dataset.num_records:
                dataset = BinaryDataset(
                    dataset.data[:num_records], name=dataset.name
                )
            return dataset

    generator = {
        "kosarak": clickstream.kosarak_like,
        "aol": clickstream.aol_like,
        "msnbc": clickstream.msnbc_like,
    }[name]
    if num_records is None:
        return generator(rng=rng)
    return generator(num_records=num_records, rng=rng)
