"""Dataset generators and loaders for the paper's evaluation.

The paper evaluates on Kosarak (d=32), AOL (d=45), MSNBC (d=9) and
synthetic MCHAIN datasets (d=64, Markov order 1..7).  The real files
are not redistributable, so this package provides

* exact MCHAIN generation per the Section 5 recipe
  (:mod:`repro.datasets.mchain`);
* statistically matched synthetic stand-ins for the three click-stream
  datasets (:mod:`repro.datasets.clickstream`), with identical N and d;
* loaders for the original files (FIMI ``.dat``, the UCI MSNBC sequence
  format) that are used automatically when a data directory is
  supplied (:mod:`repro.datasets.loaders`).
"""

from repro.datasets.mchain import markov_chain_dataset, stationary_distribution
from repro.datasets.clickstream import (
    aol_like,
    clickstream_dataset,
    kosarak_like,
    msnbc_like,
)
from repro.datasets.loaders import (
    load_fimi_transactions,
    load_msnbc_sequences,
    load_or_synthesize,
)
from repro.datasets.io import load_dataset, save_dataset

__all__ = [
    "markov_chain_dataset",
    "stationary_distribution",
    "clickstream_dataset",
    "kosarak_like",
    "aol_like",
    "msnbc_like",
    "load_fimi_transactions",
    "load_msnbc_sequences",
    "load_or_synthesize",
    "load_dataset",
    "save_dataset",
]
