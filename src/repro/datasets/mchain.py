"""MCHAIN — the paper's Markov-chain synthetic datasets (Section 5).

Following Usatenko & Yampol'skii's stationary binary sequences: for a
chain of order ``i``, given the previous ``i`` bits with ``s`` ones,
the next bit is 1 with probability ``0.5 + (1 - 2 s / i) / 4``.  Each
record is a series of ``d = 64`` bits; the initial ``i`` bits are drawn
from the chain's stationary distribution so that every position is
marginally identically distributed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.marginals.dataset import BinaryDataset

#: The paper's record length.
DEFAULT_LENGTH = 64


def next_bit_probability(order: int, ones: np.ndarray | int):
    """P(next bit = 1 | s ones among the previous ``order`` bits)."""
    if order < 1:
        raise DatasetError(f"order must be >= 1, got {order}")
    s = np.asarray(ones, dtype=np.float64)
    return 0.5 + (1.0 - 2.0 * s / order) / 4.0


def _transition_matrix(order: int) -> np.ndarray:
    """Transition matrix over the 2**order states (previous-bits windows).

    State encoding: bit ``j`` of the state is the bit seen ``j`` steps
    ago; appending bit ``b`` maps state ``x`` to
    ``((x << 1) | b) & (2**order - 1)``.
    """
    size = 1 << order
    states = np.arange(size, dtype=np.uint64)
    ones = np.bitwise_count(states).astype(np.int64)
    p1 = next_bit_probability(order, ones)
    mask = size - 1
    matrix = np.zeros((size, size))
    for x in range(size):
        matrix[x, ((x << 1) | 1) & mask] += p1[x]
        matrix[x, ((x << 1) | 0) & mask] += 1.0 - p1[x]
    return matrix


def stationary_distribution(order: int, tol: float = 1e-13) -> np.ndarray:
    """Stationary distribution of the order-``i`` chain.

    Power iteration on the *lazy* chain ``(M + I) / 2``, which has the
    same stationary distribution but no periodicity — some orders give
    period-2 dynamics on which plain power iteration oscillates.
    """
    matrix = _transition_matrix(order)
    lazy = 0.5 * (matrix + np.eye(matrix.shape[0]))
    dist = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
    for _ in range(100_000):
        updated = dist @ lazy
        if np.abs(updated - dist).sum() < tol:
            return updated
        dist = updated
    return updated


def markov_chain_dataset(
    order: int,
    num_records: int,
    length: int = DEFAULT_LENGTH,
    rng: np.random.Generator | None = None,
) -> BinaryDataset:
    """Generate ``num_records`` stationary order-``i`` binary sequences.

    Vectorised across records: all chains advance one step per loop
    iteration, so a million 64-bit records take a couple of seconds.
    """
    if length < order:
        raise DatasetError(f"length {length} shorter than order {order}")
    rng = rng or np.random.default_rng()
    size = 1 << order
    mask = size - 1

    dist = stationary_distribution(order)
    states = rng.choice(size, size=num_records, p=dist).astype(np.int64)

    data = np.zeros((num_records, length), dtype=np.uint8)
    # The state encodes the last `order` bits, bit j = seen j steps ago;
    # unpack it into the first `order` columns (oldest first).
    for j in range(order):
        data[:, order - 1 - j] = (states >> j) & 1

    ones_lookup = np.bitwise_count(np.arange(size, dtype=np.uint64)).astype(np.int64)
    p1_lookup = next_bit_probability(order, ones_lookup)
    for col in range(order, length):
        p1 = p1_lookup[states]
        bits = (rng.random(num_records) < p1).astype(np.uint8)
        data[:, col] = bits
        states = ((states << 1) | bits) & mask
    return BinaryDataset(data, name=f"mchain_{order}")
