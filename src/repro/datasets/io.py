"""Persisting binary datasets (compressed .npz)."""

from __future__ import annotations

import os
import pathlib

import numpy as np

from repro.exceptions import DatasetError
from repro.marginals.dataset import BinaryDataset


def save_dataset(dataset: BinaryDataset, path: str | os.PathLike) -> pathlib.Path:
    """Write a dataset to ``path`` (.npz, bit-packed)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    packed = np.packbits(dataset.data, axis=1)
    np.savez_compressed(
        path,
        packed=packed,
        num_attributes=dataset.num_attributes,
        name=np.array(dataset.name),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: str | os.PathLike) -> BinaryDataset:
    """Load a dataset written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise DatasetError(f"missing dataset file {path}")
    with np.load(path, allow_pickle=False) as archive:
        packed = archive["packed"]
        d = int(archive["num_attributes"])
        name = str(archive["name"])
    data = np.unpackbits(packed, axis=1)[:, :d]
    return BinaryDataset(data, name=name)
