"""Synthetic stand-ins for the paper's click-stream datasets.

The real Kosarak / AOL / MSNBC files cannot be redistributed, so
experiments fall back to generators that match the characteristics the
mechanisms are sensitive to: the record count ``N``, dimensionality
``d``, heavy-tailed (Zipf) attribute popularity, per-user activity
skew, and low-order correlation between attributes.

The generative model: each user draws a latent *type* (a handful of
interest profiles) and a Gamma-distributed *activity* level ``u``;
attribute ``j`` is visited with probability ``1 - exp(-u * w[type, j])``
where ``w`` couples Zipf base popularity with type-specific boosts.
Shared ``u`` and type induce positive 2-way and 3-way correlations —
the structure PriView's covered pairs/triples exploit — while keeping
rows sparse and popularity heavy-tailed like the originals.

DESIGN.md records this substitution; loaders for the real files are in
:mod:`repro.datasets.loaders` and take precedence when files exist.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.marginals.dataset import BinaryDataset

#: Published record counts of the originals.
KOSARAK_RECORDS = 912_627
AOL_RECORDS = 647_377
MSNBC_RECORDS = 989_818


def clickstream_dataset(
    num_records: int,
    num_attributes: int,
    num_types: int = 6,
    zipf_exponent: float = 1.1,
    mean_intensity: float = 1.0,
    activity_shape: float = 1.5,
    boost_range: tuple[float, float] = (3.0, 10.0),
    rng: np.random.Generator | None = None,
    name: str = "clickstream",
) -> BinaryDataset:
    """Generate a correlated, heavy-tailed binary click-stream dataset.

    Parameters
    ----------
    num_records, num_attributes:
        ``N`` and ``d``.
    num_types:
        Number of latent user profiles (more types = richer
        correlation structure).
    zipf_exponent:
        Skew of the base attribute popularity.
    mean_intensity:
        Scales overall row density.
    activity_shape:
        Gamma shape of the per-user activity level; higher values mean
        less activity skew and hence weaker *high-order* dependence
        (all attributes co-vary through the shared activity).
    boost_range:
        Strength of the type-specific preference boosts.
    """
    if num_records < 0 or num_attributes < 1:
        raise DatasetError(
            f"invalid shape N={num_records}, d={num_attributes}"
        )
    rng = rng or np.random.default_rng()

    base = 1.0 / np.arange(1, num_attributes + 1) ** zipf_exponent
    # Type-specific boosts: each profile strongly prefers a random
    # subset of attributes, creating correlated co-occurrence.
    boosts = np.ones((num_types, num_attributes))
    for t in range(num_types):
        favourites = rng.choice(
            num_attributes, size=max(2, num_attributes // 4), replace=False
        )
        boosts[t, favourites] = rng.uniform(
            boost_range[0], boost_range[1], size=favourites.size
        )
    weights = base[None, :] * boosts

    types = rng.integers(0, num_types, size=num_records)
    activity = rng.gamma(
        shape=activity_shape,
        scale=mean_intensity / activity_shape,
        size=num_records,
    )
    probs = 1.0 - np.exp(-activity[:, None] * weights[types])
    data = (rng.random((num_records, num_attributes)) < probs).astype(np.uint8)
    return BinaryDataset(data, name=name)


def kosarak_like(
    num_records: int = KOSARAK_RECORDS,
    rng: np.random.Generator | None = None,
) -> BinaryDataset:
    """A d=32 stand-in for the Kosarak top-32-pages dataset."""
    return clickstream_dataset(
        num_records,
        num_attributes=32,
        num_types=8,
        zipf_exponent=1.1,
        mean_intensity=1.2,
        rng=rng,
        name="kosarak-like",
    )


def aol_like(
    num_records: int = AOL_RECORDS,
    rng: np.random.Generator | None = None,
) -> BinaryDataset:
    """A d=45 stand-in for the AOL 45-category dataset.

    Category generalisation makes AOL rows denser than raw click data,
    hence the lower Zipf exponent and higher intensity.
    """
    return clickstream_dataset(
        num_records,
        num_attributes=45,
        num_types=10,
        zipf_exponent=0.9,
        mean_intensity=2.0,
        rng=rng,
        name="aol-like",
    )


def msnbc_like(
    num_records: int = MSNBC_RECORDS,
    rng: np.random.Generator | None = None,
) -> BinaryDataset:
    """A d=9 stand-in for the preprocessed MSNBC dataset.

    The real MSNBC category data shows mainly pairwise structure (the
    paper's PriView-with-pairs design matches Flat on it), so this
    generator damps the high-order dependence channels: few latent
    types, mild boosts, low activity skew.
    """
    return clickstream_dataset(
        num_records,
        num_attributes=9,
        num_types=2,
        zipf_exponent=0.8,
        mean_intensity=1.5,
        activity_shape=6.0,
        boost_range=(1.5, 3.0),
        rng=rng,
        name="msnbc-like",
    )
