"""The synthetic record population and what analysts do with it.

:class:`SyntheticRecords` is an ``(N, d)`` integer code matrix plus
the :class:`~repro.marginals.domain.Domain` that gives the codes
meaning.  It answers the record-level questions a marginal synopsis
cannot: arbitrary filters, per-record export to CSV/JSON-lines, joins
into downstream tooling — all pure post-processing over an already
published artifact.
"""

from __future__ import annotations

import csv
import json
import os
import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DimensionError, SynthesisError
from repro.marginals.domain import Domain


@dataclass
class SyntheticRecords:
    """A synthesised population over a mixed-type domain."""

    data: np.ndarray
    domain: Domain
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=np.int64)
        if data.ndim != 2:
            raise DimensionError(f"records must be 2-D, got {data.shape}")
        if data.shape[1] != self.domain.num_attributes:
            raise DimensionError(
                f"records have {data.shape[1]} columns but the domain "
                f"has {self.domain.num_attributes} attributes"
            )
        self.data = data

    @property
    def num_records(self) -> int:
        return self.data.shape[0]

    @property
    def num_attributes(self) -> int:
        return self.data.shape[1]

    def __len__(self) -> int:
        return self.num_records

    def __repr__(self) -> str:
        return (
            f"SyntheticRecords(N={self.num_records}, "
            f"domain={self.domain!r})"
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def marginal(self, attrs):
        """The population's exact marginal over ``attrs`` (indices or
        names), as a
        :class:`~repro.categorical.table.CategoricalMarginalTable`."""
        from repro.categorical.table import CategoricalMarginalTable

        resolved = tuple(sorted(self.domain.attr_set(attrs)))
        arities = tuple(self.domain.arities[a] for a in resolved)
        strides = np.ones(len(resolved), dtype=np.int64)
        for j in range(1, len(resolved)):
            strides[j] = strides[j - 1] * arities[j - 1]
        size = int(np.prod(arities)) if arities else 1
        idx = self.data[:, list(resolved)] @ strides
        counts = np.bincount(idx, minlength=size).astype(np.float64)
        return CategoricalMarginalTable(resolved, arities, counts)

    def count(self, **conditions) -> int:
        """Records matching every ``name=value`` condition.

        Values may be integer codes, attribute labels, or — for
        numeric attributes — raw values (binned through the domain).
        """
        mask = np.ones(self.num_records, dtype=bool)
        for name, value in conditions.items():
            j = self.domain.index(name)
            code = int(self.domain[j].encode(np.asarray([value]))[0])
            mask &= self.data[:, j] == code
        return int(mask.sum())

    def fraction(self, **conditions) -> float:
        """``count(...) / N`` (0.0 on an empty population)."""
        if self.num_records == 0:
            return 0.0
        return self.count(**conditions) / self.num_records

    # ------------------------------------------------------------------
    # Sampling / decoding
    # ------------------------------------------------------------------
    def sample(self, k: int, seed=None) -> np.ndarray:
        """``k`` record rows drawn with replacement (codes, ``(k, d)``)."""
        if k < 0:
            raise SynthesisError(f"sample size must be >= 0, got {k}")
        if self.num_records == 0:
            raise SynthesisError("cannot sample from an empty population")
        rng = np.random.default_rng(seed)
        return self.data[rng.integers(0, self.num_records, size=int(k))]

    def decode(self) -> dict[str, np.ndarray]:
        """Per-attribute decoded columns (labels / bin midpoints)."""
        return self.domain.decode_records(self.data)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path: str | os.PathLike, decode: bool = True) -> pathlib.Path:
        """Write the population as CSV (decoded values by default)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns = (
            self.decode()
            if decode
            else {n: self.data[:, j] for j, n in enumerate(self.domain.names)}
        )
        names = self.domain.names
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            writer.writerows(
                zip(*(columns[n].tolist() for n in names))
            )
        return path

    def to_jsonl(self, path: str | os.PathLike, decode: bool = True) -> pathlib.Path:
        """Write the population as JSON-lines, one object per record."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns = (
            self.decode()
            if decode
            else {n: self.data[:, j] for j, n in enumerate(self.domain.names)}
        )
        names = self.domain.names
        lists = [columns[n].tolist() for n in names]
        with open(path, "w") as handle:
            for row in zip(*lists):
                handle.write(json.dumps(dict(zip(names, row))) + "\n")
        return path
