"""``repro.synth`` — record-level synthetic data from synopses.

A published PriView synopsis answers marginal queries; this package
turns the same artifact into an explicit synthetic dataset (PrivSyn's
gradual-update method), which record-level tooling can filter, join
and export.  Synthesis reads only the released views, so it is pure
post-processing: **zero** additional privacy budget, provable from
the ledger (the fit runs in a strict budget scope configured at 0).

    from repro.synth import synthesize

    records = synthesize(synopsis, seed=7)     # deterministic
    records.marginal(("age", "income"))        # exact over the records
    records.count(age=3, income=1)             # record-level filter
    records.to_csv("synthetic.csv")            # decoded export

See ``docs/SYNTHESIS.md`` for the algorithm and accuracy story.
"""

from repro.synth.records import SyntheticRecords
from repro.synth.sampler import RecordSampler
from repro.synth.synthesizer import Synthesizer, domain_of, synthesize

__all__ = [
    "RecordSampler",
    "Synthesizer",
    "SyntheticRecords",
    "domain_of",
    "synthesize",
]
