"""High-throughput record sampling over a synthesised population.

The expensive step — gradual-update synthesis — runs once; a
:class:`RecordSampler` then serves arbitrarily many record draws by
row indexing, which is why the serving ``/sample`` route can sustain
hundreds of thousands of records per second.  Sampling is with
replacement, so concurrent readers share one immutable population.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.exceptions import SynthesisError
from repro.synth.records import SyntheticRecords


class RecordSampler:
    """Draw record batches from a fixed :class:`SyntheticRecords`.

    The sampler keeps one seeded generator for un-seeded draws (a
    stream of distinct batches) and derives a fresh generator for
    draws that pass ``seed=`` (reproducible batches).  Thread-safe.
    """

    def __init__(self, records: SyntheticRecords, seed: int | None = None):
        if records.num_records == 0:
            raise SynthesisError("cannot sample from an empty population")
        self.records = records
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    @property
    def population(self) -> int:
        return self.records.num_records

    @property
    def domain(self):
        return self.records.domain

    def sample(self, k: int, seed=None) -> np.ndarray:
        """``k`` rows of codes, ``(k, d)``, with replacement."""
        if k < 0:
            raise SynthesisError(f"sample size must be >= 0, got {k}")
        k = int(k)
        if seed is not None:
            rng = np.random.default_rng(seed)
            index = rng.integers(0, self.population, size=k)
        else:
            with self._lock:
                index = self._rng.integers(0, self.population, size=k)
        obs.incr("synth.records_sampled", k)
        return self.records.data[index]

    def sample_decoded(self, k: int, seed=None) -> dict[str, np.ndarray]:
        """``k`` records as decoded per-attribute columns."""
        rows = self.sample(k, seed=seed)
        return self.domain.decode_records(rows)

    def batches(self, k: int, batch_size: int, seed=None):
        """Yield ``(b, d)`` code batches totalling ``k`` records."""
        if batch_size <= 0:
            raise SynthesisError(
                f"batch_size must be positive, got {batch_size}"
            )
        remaining = int(k)
        rng = np.random.default_rng(seed) if seed is not None else None
        while remaining > 0:
            step = min(batch_size, remaining)
            if rng is not None:
                index = rng.integers(0, self.population, size=step)
                obs.incr("synth.records_sampled", step)
                yield self.records.data[index]
            else:
                yield self.sample(step)
            remaining -= step
