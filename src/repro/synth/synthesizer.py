"""PrivSyn-style record synthesis from a published synopsis.

The synopsis's consistent, non-negative view marginals already pin
down every low-order statistic the mechanism paid for; synthesis turns
them into an explicit record population by *gradual update* (GUM, as
in PrivSyn): initialise ``n`` records from the 1-way marginals, then
repeatedly walk the views, moving a fraction ``alpha`` of the records
sitting in over-represented cells into under-represented ones.

Everything here reads only the published views — never the private
dataset — so synthesis is pure post-processing and spends **zero**
additional privacy budget.  The whole fit runs inside a strict
``Synthesizer.fit`` budget scope configured at 0.0, so a ledger audit
proves the claim (the scope balances "exact" with no draws).

Determinism: one ``np.random.SeedSequence`` drives initialisation and
every update round, so a fixed seed reproduces the population
bit-for-bit.  Each round is accept/revert — a round that does not
lower the mean L1 distance to the views is rolled back and ``alpha``
halved — so the recorded error ``history`` is monotone non-increasing
by construction.

Both synopsis kinds work: binary :class:`~repro.core.synopsis.\
PriViewSynopsis` views use the bit-``j`` cell convention, which *is*
the mixed-radix convention with every arity 2, so one code path
handles both.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import SynthesisError
from repro.marginals.domain import Domain
from repro.synth.records import SyntheticRecords

#: guard against float-noise "improvements" flapping accept/revert
_L1_SLACK = 1e-9


def domain_of(synopsis) -> Domain:
    """The richest domain the synopsis knows about.

    The attached :class:`Domain` when present; else a plain
    categorical domain from ``arities``; else the binary domain of
    ``num_attributes``.
    """
    domain = getattr(synopsis, "domain", None)
    if domain is not None:
        return domain
    arities = getattr(synopsis, "arities", None)
    if arities is not None:
        return Domain.from_arities(arities)
    num_attributes = getattr(synopsis, "num_attributes", None)
    if num_attributes is None:
        raise SynthesisError(
            f"cannot infer a domain from {type(synopsis).__name__} "
            "(no domain, arities or num_attributes)"
        )
    return Domain.binary(int(num_attributes))


class _ViewSpec:
    """One view, pre-digested for the update loop."""

    __slots__ = ("attrs", "arities", "strides", "size", "probs")

    def __init__(self, attrs, arities, counts):
        self.attrs = np.asarray(attrs, dtype=np.int64)
        self.arities = tuple(int(b) for b in arities)
        strides = np.ones(len(self.arities), dtype=np.int64)
        for j in range(1, len(self.arities)):
            strides[j] = strides[j - 1] * self.arities[j - 1]
        self.strides = strides
        self.size = int(np.prod(self.arities)) if self.arities else 1
        probs = np.maximum(np.asarray(counts, dtype=np.float64), 0.0)
        total = probs.sum()
        if total > 0:
            self.probs = probs / total
        else:
            self.probs = np.full(self.size, 1.0 / self.size)

    def cells(self, records: np.ndarray) -> np.ndarray:
        """Mixed-radix cell index of every record, restricted to the
        view's attributes."""
        return records[:, self.attrs] @ self.strides

    def counts(self, records: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.cells(records), minlength=self.size
        ).astype(np.float64)

    def digits(self, cells: np.ndarray) -> np.ndarray:
        """Cell indices → per-attribute values, shape ``(m, k)``."""
        out = np.empty((len(self.attrs), cells.size), dtype=np.int64)
        for j, b in enumerate(self.arities):
            out[j] = (cells // self.strides[j]) % b
        return out


def _view_specs(synopsis, domain: Domain) -> list[_ViewSpec]:
    views = list(getattr(synopsis, "views", ()) or ())
    if not views:
        raise SynthesisError(
            f"{type(synopsis).__name__} has no views to synthesise from"
        )
    arities = domain.arities
    specs = []
    for view in views:
        attrs = tuple(int(a) for a in view.attrs)
        view_arities = getattr(view, "arities", None)
        if view_arities is None:  # binary MarginalTable
            view_arities = tuple(arities[a] for a in attrs)
        specs.append(_ViewSpec(attrs, view_arities, view.counts))
    return specs


class Synthesizer:
    """Gradual-update record synthesis.

    Parameters
    ----------
    rounds:
        Maximum update rounds (each visits every view once).
    alpha:
        Initial fraction of each cell's excess moved per round; halved
        whenever a round fails to lower the error.
    min_alpha:
        Stop once ``alpha`` decays below this.
    seed:
        Root ``SeedSequence`` entropy; a fixed seed makes the whole
        population deterministic.
    """

    def __init__(
        self,
        rounds: int = 30,
        alpha: float = 0.5,
        min_alpha: float = 1e-3,
        seed: int | None = None,
    ):
        if rounds < 0:
            raise SynthesisError(f"rounds must be >= 0, got {rounds}")
        if not 0.0 < alpha <= 1.0:
            raise SynthesisError(f"alpha must be in (0, 1], got {alpha}")
        self.rounds = int(rounds)
        self.alpha = float(alpha)
        self.min_alpha = float(min_alpha)
        self._seed_seq = np.random.SeedSequence(seed)

    # ------------------------------------------------------------------
    def fit(self, synopsis, num_records: int | None = None) -> SyntheticRecords:
        """Synthesise a record population matching the synopsis.

        ``num_records`` defaults to the synopsis's consistent total
        count.  Returns :class:`SyntheticRecords` whose ``meta``
        carries the per-round accepted error ``history`` (monotone
        non-increasing) and round/move counters.
        """
        from time import perf_counter

        fit_start = perf_counter()
        with obs.span("synth.fit"), obs.budget_scope("Synthesizer.fit", 0.0):
            domain = domain_of(synopsis)
            specs = _view_specs(synopsis, domain)
            if num_records is None:
                num_records = int(round(float(synopsis.total_count())))
            n = max(int(num_records), 1)
            rng = np.random.default_rng(self._seed_seq.spawn(1)[0])

            with obs.span("synth.init"):
                records = self._init_records(n, domain, specs, rng)
            error = self._mean_l1(records, specs, n)
            history = [error]
            alpha = self.alpha
            total_moved = 0
            accepted = 0
            for _ in range(self.rounds):
                round_start = perf_counter()
                snapshot = records.copy()
                with obs.span("synth.update"):
                    moved = 0
                    for spec in specs:
                        moved += self._update_view(records, spec, n, alpha, rng)
                candidate = self._mean_l1(records, specs, n)
                obs.observe(
                    "synth.update_seconds", perf_counter() - round_start
                )
                if moved == 0:
                    break
                if candidate > error - _L1_SLACK:
                    # no improvement: roll the round back, damp alpha
                    records = snapshot
                    alpha *= 0.5
                    obs.incr("synth.rounds_reverted")
                    if alpha < self.min_alpha:
                        break
                    continue
                error = candidate
                history.append(error)
                accepted += 1
                total_moved += moved
            obs.incr("synth.rounds", accepted)
            obs.incr("synth.records_moved", total_moved)
            obs.observe("synth.fit_seconds", perf_counter() - fit_start)
            obs.set_gauge("synth.population", n)
        return SyntheticRecords(
            data=records,
            domain=domain,
            meta={
                "epsilon": getattr(synopsis, "epsilon", None),
                "num_records": n,
                "rounds": accepted,
                "records_moved": total_moved,
                "history": history,
                "final_l1": error,
                "alpha": alpha,
            },
        )

    # ------------------------------------------------------------------
    def _init_records(self, n, domain, specs, rng) -> np.ndarray:
        """Inverse-CDF sample every column from its 1-way marginal.

        The 1-way marginal of attribute ``j`` is projected out of the
        first view containing ``j``; attributes no view covers fall
        back to uniform.
        """
        records = np.empty((n, domain.num_attributes), dtype=np.int64)
        for j, arity in enumerate(domain.arities):
            probs = None
            for spec in specs:
                position = np.flatnonzero(spec.attrs == j)
                if position.size:
                    k = int(position[0])
                    counts = np.bincount(
                        (np.arange(spec.size) // spec.strides[k]) % arity,
                        weights=spec.probs,
                        minlength=arity,
                    )
                    probs = counts
                    break
            if probs is None or probs.sum() <= 0:
                probs = np.full(arity, 1.0 / arity)
            cdf = np.cumsum(probs / probs.sum())
            records[:, j] = np.searchsorted(cdf, rng.random(n), side="right")
            np.clip(records[:, j], 0, arity - 1, out=records[:, j])
        return records

    @staticmethod
    def _mean_l1(records, specs, n) -> float:
        """Mean (over views) of the per-record-normalised L1 distance."""
        total = 0.0
        for spec in specs:
            total += float(
                np.abs(spec.counts(records) - spec.probs * n).sum()
            )
        return total / (len(specs) * n)

    @staticmethod
    def _update_view(records, spec: _ViewSpec, n, alpha, rng) -> int:
        """One gradual-update step against one view; returns #moved.

        Records are moved *out of* cells holding more than their
        target share and re-assigned (only on the view's attributes)
        to deficit cells sampled proportionally to how short they are.
        """
        cells = spec.cells(records)
        counts = np.bincount(cells, minlength=spec.size).astype(np.float64)
        target = spec.probs * n
        excess = counts - target
        deficit = np.maximum(-excess, 0.0)
        deficit_total = deficit.sum()
        if deficit_total < 1.0:
            return 0
        # per-cell moves: at least one record whenever a whole record
        # of excess exists, never more than the (floored) excess
        move = np.minimum(
            np.ceil(alpha * np.maximum(excess, 0.0)), np.floor(excess)
        ).astype(np.int64)
        move = np.maximum(move, 0)
        num_moved = int(move.sum())
        if num_moved == 0:
            return 0

        # pick the records to move: shuffle, stable-sort by cell, take
        # each cell's first `move[c]` occupants
        perm = rng.permutation(len(cells))
        order = np.argsort(cells[perm], kind="stable")
        sorted_ids = perm[order]
        sorted_cells = cells[perm][order]
        donors = np.flatnonzero(move > 0)
        takes = move[donors]
        starts = np.searchsorted(sorted_cells, donors, side="left")
        base = np.repeat(starts, takes)
        within = np.arange(num_moved) - np.repeat(
            np.cumsum(takes) - takes, takes
        )
        moving = sorted_ids[base + within]

        destinations = rng.choice(
            spec.size, size=num_moved, p=deficit / deficit_total
        )
        digits = spec.digits(destinations)
        for j, attr in enumerate(spec.attrs):
            records[moving, attr] = digits[j]
        return num_moved


def synthesize(
    synopsis,
    num_records: int | None = None,
    rounds: int = 30,
    alpha: float = 0.5,
    seed: int | None = None,
) -> SyntheticRecords:
    """One-call convenience wrapper around :class:`Synthesizer`."""
    return Synthesizer(rounds=rounds, alpha=alpha, seed=seed).fit(
        synopsis, num_records=num_records
    )
