"""Stdlib HTTP server exposing a :class:`QueryEngine` — or a fleet of
them backed by a :class:`~repro.store.SynopsisStore`.

Single-source endpoints (JSON protocol in :mod:`repro.serve.protocol`):

* ``POST /v1/marginal`` — answer one marginal query;
* ``POST /v1/batch``    — answer a de-duplicated workload;
* ``POST /v1/sample``   — draw synthetic records (post-processing of
  the published views: zero additional privacy budget);
* ``GET  /healthz``     — liveness + synopsis identity;
* ``GET  /stats``       — planner-path / cache statistics.

Store-backed (multi-dataset) endpoints, when constructed with
``store=`` / ``router=`` (see ``docs/STORE.md``):

* ``POST /v1/d/{name}/marginal``, ``POST /v1/d/{name}/batch`` and
  ``POST /v1/d/{name}/sample`` — the same protocol, routed to the
  named dataset's engine (built lazily, LRU-evicted, 404 for
  unknown names);
* ``GET  /v1/datasets`` — every published dataset and what's serving;
* ``POST /v1/reload``   — re-resolve against the store and hot-swap
  newly published versions with zero dropped in-flight requests;
* ``GET  /stats``       — router + store statistics;
* ``GET  /v1/d/{name}/windows`` — stream windows released for the
  dataset (version, bounds, record count, epsilon);
* ``POST /v1/d/{name}/windows/marginal`` — time-sliced marginals:
  one answer per selected window (``last``/``windows`` in the body)
  plus their record-weighted union (see ``docs/STREAMING.md``).

Telemetry endpoints (any mode):

* ``GET /metrics`` — Prometheus text exposition of the active
  metrics registry (request/path latency histograms labeled by
  dataset and planner path, counters, gauges);

every request gets a trace context — adopted from an incoming
``traceparent`` header or head-sampled at ``trace_sample_rate`` —
that is installed around the engine call (so spans and hit-side
cache timings tag themselves with it), echoed in the JSON body under
``"trace"`` and in the ``traceparent`` / ``X-Request-Id`` response
headers, and recorded in a bounded in-process access log
(:meth:`MarginalServer.access_log`).

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection, daemonised), with per-request deadlines enforced through
the engine (``504`` on miss), structured JSON error bodies, and
graceful shutdown that drains the engine pool(s).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, perf_counter
from urllib.parse import unquote

from repro import obs
from repro.exceptions import QueryError, QueryTimeoutError, ReproError
from repro.obs import propagation
from repro.obs.exporters import MetricsSnapshotWriter
from repro.obs.log import get_logger
from repro.obs.prometheus import render_prometheus
from repro.obs.session import ObsSession
from repro.serve.engine import QueryEngine
from repro.serve.protocol import (
    encode_answer,
    encode_error,
    encode_sample,
    parse_batch_request,
    parse_marginal_request,
    parse_sample_request,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8177
DEFAULT_REQUEST_TIMEOUT = 30.0
MAX_BODY_BYTES = 4 << 20

log = get_logger("serve")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.2"
    protocol_version = "HTTP/1.1"

    # Per-request trace state (reset in _handle; one handler instance
    # serves a keep-alive connection sequentially, so plain instance
    # attributes are safe).
    _context: propagation.TraceContext | None = None
    _trace: dict | None = None
    _status: int | None = None

    # -- plumbing -------------------------------------------------------
    @property
    def engine(self) -> QueryEngine | None:
        return self.server.engine

    @property
    def router(self):
        return self.server.router

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        log.debug("%s %s", self.address_string(), format % args)

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._context is not None:
            self.send_header(
                propagation.TRACEPARENT_HEADER, self._context.traceparent
            )
            self.send_header(
                propagation.REQUEST_ID_HEADER, self._context.span_id
            )
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_json(self, status: int, payload) -> None:
        if (
            isinstance(payload, dict)
            and self._trace is not None
            and "trace" not in payload
        ):
            payload = {**payload, "trace": self._trace}
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_error(self, status: int, exc: BaseException) -> None:
        self._send_json(status, encode_error(exc, self._trace))

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise QueryError("missing request body")
        if length > MAX_BODY_BYTES:
            raise QueryError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise QueryError(f"invalid JSON body: {exc}") from exc

    # -- routes ---------------------------------------------------------
    def _trace_context(self) -> propagation.TraceContext:
        """Adopt the caller's ``traceparent`` or head-sample a new one.

        An adopted context keeps the caller's sampling decision; a
        fresh one is sampled at the server's ``trace_sample_rate``.
        Either way the request gets ids, so responses and the access
        log always carry a request id.
        """
        parent = propagation.parse_traceparent(
            self.headers.get(propagation.TRACEPARENT_HEADER)
        )
        if parent is not None:
            return parent.child()
        return propagation.sampled_context(self.server.trace_sample_rate)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._handle("GET", self._route_get)

    def do_POST(self):  # noqa: N802 - stdlib naming
        self._handle("POST", self._route_post)

    def _handle(self, verb: str, route) -> None:
        start = perf_counter()
        context = self._trace_context()
        self._context = context
        self._trace = {
            "trace_id": context.trace_id,
            "request_id": context.span_id,
            "sampled": context.sampled,
        }
        self._status = None
        try:
            with propagation.trace_scope(context):
                route()
        except QueryTimeoutError as exc:
            self._send_error(504, exc)
        except ReproError as exc:
            # malformed attrs, unknown method, unanswerable query, ...
            self._send_error(400 if not _is_not_found(exc) else 404, exc)
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("internal error serving %s", self.path)
            self._send_error(500, exc)
        finally:
            self.server.record_access({
                "method": verb,
                "path": self.path,
                "status": self._status,
                "duration_s": perf_counter() - start,
                "trace_id": context.trace_id,
                "request_id": context.span_id,
                "sampled": context.sampled,
            })

    def _route_get(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, self.server.health_payload())
        elif self.path == "/metrics":
            sess = obs.current()
            snapshot = (
                sess.metrics.snapshot()
                if sess is not None and sess.metrics is not None
                else {}
            )
            self._send_body(
                200,
                render_prometheus(snapshot).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path == "/stats":
            if self.router is not None:
                payload = self.router.stats()
            else:
                payload = self.engine.stats()
            payload["server"] = self.server.server_payload()
            self._send_json(200, payload)
        elif self.path == "/v1/datasets" and self.router is not None:
            self._send_json(200, {"datasets": self.router.datasets()})
        elif (
            (routed := self._split_dataset_path(self.path)) is not None
            and routed[1] == "windows"
        ):
            if self.router is None:
                raise QueryError(
                    "this server hosts a single source; window listings "
                    "need a store-backed server (repro store serve)"
                )
            from repro.stream.query import list_windows

            name = routed[0]
            self._send_json(200, {
                "dataset": name,
                "windows": list_windows(self.router.store, name),
            })
        else:
            self._send_error(404, QueryError(f"unknown path {self.path!r}"))

    @staticmethod
    def _split_dataset_path(path: str) -> tuple[str, str] | None:
        """``/v1/d/{name}/marginal`` → ``(name, "marginal")``."""
        if not path.startswith("/v1/d/"):
            return None
        rest = path[len("/v1/d/"):]
        name, _, action = rest.rpartition("/")
        if name.endswith("/windows") and action == "marginal":
            name = name[: -len("/windows")]
            if not name:
                return None
            return unquote(name), "windows/marginal"
        if not name or action not in (
            "marginal", "batch", "sample", "stats", "windows"
        ):
            return None
        return unquote(name), action

    def _route_post(self) -> None:
        if self.path == "/v1/reload":
            if self.router is None:
                raise QueryError(
                    "this server hosts a single source; /v1/reload "
                    "needs a store-backed server (repro store serve)"
                )
            self._send_json(200, self.router.reload())
            return
        routed = self._split_dataset_path(self.path)
        if routed is not None:
            self._dispatch_dataset(*routed)
            return
        if self.path in ("/v1/marginal", "/v1/batch", "/v1/sample"):
            if self.engine is None:
                raise QueryError(
                    "this server hosts a synopsis store; query "
                    "per-dataset paths /v1/d/{name}/marginal, "
                    "/v1/d/{name}/batch or /v1/d/{name}/sample "
                    "(GET /v1/datasets lists them)"
                )
            self._dispatch(self.engine, self.path.rsplit("/", 1)[1])
            return
        self._send_error(404, QueryError(f"unknown path {self.path!r}"))

    def _dispatch_dataset(self, name: str, action: str) -> None:
        if self.router is None:
            raise QueryError(
                "this server hosts a single source; query /v1/marginal "
                "or /v1/batch instead of per-dataset paths"
            )
        if action == "windows/marginal":
            self._dispatch_windows(name)
            return
        # Per-dataset request counting happens in the engine (which
        # knows its dataset label even for single-source servers).
        with self.router.lease(name) as engine:
            if action == "stats":
                self._send_json(200, engine.stats())
            else:
                self._dispatch(engine, action)

    def _dispatch_windows(self, name: str) -> None:
        """``POST /v1/d/{name}/windows/marginal`` — time-sliced query.

        Body: the usual marginal request plus an optional window
        selection — ``{"last": k}`` for the newest ``k`` windows, or
        ``{"windows": [i, ...]}`` for explicit window indices (default
        every released window).  Answers carry one table per window
        and their record-weighted union.
        """
        from repro.stream.query import answer_windows

        body = self._read_json()
        attrs, method = parse_marginal_request(body)
        answer = answer_windows(
            self.router,
            name,
            attrs,
            windows=body.get("windows"),
            last=body.get("last"),
            method=method,
            timeout=self.server.request_timeout,
        )
        self._send_json(200, answer.to_json())

    def _dispatch(self, engine: QueryEngine, action: str) -> None:
        timeout = self.server.request_timeout
        body = self._read_json()
        if action == "marginal":
            attrs, method = parse_marginal_request(body)
            answer = engine.answer(attrs, method=method, timeout=timeout)
            self._send_json(200, encode_answer(answer))
        elif action == "sample":
            n, seed, decode = parse_sample_request(body)
            answer = engine.sample(n, seed=seed)
            self._send_json(200, encode_sample(answer, decode=decode))
        else:
            queries, method = parse_batch_request(body)
            answers = engine.answer_batch(queries, method=method, timeout=timeout)
            self._send_json(200, {
                "answers": [encode_answer(a) for a in answers],
                "count": len(answers),
                "distinct": len({(a.attrs, a.method) for a in answers}),
            })


def _is_not_found(exc: ReproError) -> bool:
    """Unknown-dataset errors surface as 404, not 400."""
    return isinstance(exc, QueryError) and "unknown dataset" in str(exc)


class MarginalServer:
    """The serving endpoint: engine(s) + ThreadingHTTPServer lifecycle.

    Construct with exactly one of:

    * ``engine=`` — host a single marginal source (the original mode);
    * ``store=``  — a :class:`~repro.store.SynopsisStore` (or its root
      path): every published dataset is served under
      ``/v1/d/{name}/...`` through a lazily built, hot-swappable
      :class:`~repro.serve.multiplex.EngineRouter`;
    * ``router=`` — a pre-configured router.

    Use as a context manager, or call :meth:`start` /
    :meth:`serve_forever` and :meth:`shutdown` explicitly.  Pass
    ``port=0`` to bind an ephemeral port (see :attr:`address`).

    Telemetry knobs:

    * ``trace_sample_rate`` — head-sampling probability for requests
      arriving without a ``traceparent`` header (0 disables span
      tagging and hit-side cache timing; ids are still issued);
    * ``access_log_size`` — bound of the in-process access log ring
      (:meth:`access_log`);
    * ``metrics_out`` / ``metrics_interval_s`` — when set, a
      :class:`~repro.obs.exporters.MetricsSnapshotWriter` appends
      JSON-lines metrics snapshots there for the server's lifetime.

    When no :func:`repro.obs.session` is active at :meth:`start`, the
    server installs its own metrics-only session (no tracer, so root
    spans never accumulate unboundedly) and uninstalls it on
    :meth:`shutdown` — ``GET /metrics`` therefore always has a
    registry to expose.
    """

    def __init__(
        self,
        engine: QueryEngine | None = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        own_engine: bool = True,
        store=None,
        router=None,
        trace_sample_rate: float = 0.0,
        access_log_size: int = 256,
        metrics_out=None,
        metrics_interval_s: float = 10.0,
        **router_kwargs,
    ):
        if sum(x is not None for x in (engine, store, router)) != 1:
            raise QueryError(
                "MarginalServer needs exactly one of engine=, store= "
                "or router="
            )
        if store is not None:
            from repro.serve.multiplex import EngineRouter

            router = EngineRouter(store, **router_kwargs)
        elif router_kwargs:
            raise QueryError(
                f"unexpected arguments {sorted(router_kwargs)} without store="
            )
        self.engine = engine
        self.router = router
        self._own_engine = own_engine
        self.trace_sample_rate = float(trace_sample_rate)
        self._access: deque = deque(maxlen=int(access_log_size))
        self._access_lock = threading.Lock()
        self._metrics_out = metrics_out
        self._metrics_interval_s = float(metrics_interval_s)
        self._metrics_writer: MetricsSnapshotWriter | None = None
        self._obs_session: ObsSession | None = None
        self._obs_previous: ObsSession | None = None
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.engine = engine
        self._httpd.router = router
        self._httpd.request_timeout = request_timeout
        self._httpd.trace_sample_rate = self.trace_sample_rate
        self._httpd.record_access = self._record_access
        self._httpd.health_payload = self._health_payload
        self._httpd.server_payload = self._server_payload
        self._thread: threading.Thread | None = None
        self._started_at = monotonic()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _health_payload(self) -> dict:
        if self.router is not None:
            stats = self.router.stats()
            return {
                "status": "ok",
                "mode": "store",
                "datasets": stats["store"]["datasets"],
                "entries": stats["store"]["entries"],
                "hosted": len(stats["hosted"]),
                "uptime_s": monotonic() - self._started_at,
            }
        source = self.engine.source
        design = getattr(source, "design", None)
        return {
            "status": "ok",
            "mode": "single",
            "design": getattr(design, "notation", None),
            "epsilon": getattr(source, "epsilon", None),
            "num_attributes": source.num_attributes,
            "views": len(getattr(source, "views", ()) or ()),
            "uptime_s": monotonic() - self._started_at,
        }

    def _server_payload(self) -> dict:
        host, port = self.address
        return {
            "host": host,
            "port": port,
            "request_timeout_s": self._httpd.request_timeout,
            "trace_sample_rate": self.trace_sample_rate,
            "uptime_s": monotonic() - self._started_at,
        }

    # ------------------------------------------------------------------
    def _record_access(self, record: dict) -> None:
        with self._access_lock:
            self._access.append(record)

    def access_log(self) -> list[dict]:
        """The most recent requests (bounded ring), oldest first.

        Each record: method, path, status, duration_s, trace_id,
        request_id, sampled.
        """
        with self._access_lock:
            return list(self._access)

    def _telemetry_up(self) -> None:
        if not obs.enabled():
            self._obs_session = ObsSession(
                trace=False, metrics=True, ledger=False
            )
            self._obs_previous = obs.install(self._obs_session)
        if self._metrics_out is not None and self._metrics_writer is None:
            self._metrics_writer = MetricsSnapshotWriter(
                self._metrics_out, interval_s=self._metrics_interval_s
            ).start()

    def _telemetry_down(self) -> None:
        if self._metrics_writer is not None:
            self._metrics_writer.stop()
            self._metrics_writer = None
        if self._obs_session is not None:
            obs.uninstall(self._obs_session, self._obs_previous)
            self._obs_session = None
            self._obs_previous = None

    # ------------------------------------------------------------------
    def start(self) -> "MarginalServer":
        """Serve on a background daemon thread; returns self."""
        self._telemetry_up()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        log.info("serving on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._telemetry_up()
        log.info("serving on %s", self.url)
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting requests, close the socket, drain the engines."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.router is not None:
            self.router.close()
        if self.engine is not None and self._own_engine:
            self.engine.close()
        self._telemetry_down()

    def __enter__(self) -> "MarginalServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


def serve_source(
    source_or_path,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    trace_sample_rate: float = 0.0,
    metrics_out=None,
    metrics_interval_s: float = 10.0,
    **engine_kwargs,
) -> MarginalServer:
    """Build an engine for any marginal source and wrap it in an
    unstarted :class:`MarginalServer`.

    ``source_or_path`` is anything satisfying
    :class:`~repro.baselines.base.MarginalSource` (a synopsis, a
    fitted baseline mechanism, ...) or a path to a saved synopsis
    ``.npz``, loaded via
    :func:`~repro.core.serialization.load_synopsis`.
    """
    from repro.core.serialization import load_synopsis

    source = source_or_path
    if isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        source = load_synopsis(source)
    engine = QueryEngine(source, attach=True, **engine_kwargs)
    return MarginalServer(
        engine,
        host=host,
        port=port,
        request_timeout=request_timeout,
        trace_sample_rate=trace_sample_rate,
        metrics_out=metrics_out,
        metrics_interval_s=metrics_interval_s,
    )


def serve_store(
    store_or_path,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    max_engines: int | None = None,
    watch: bool = False,
    trace_sample_rate: float = 0.0,
    metrics_out=None,
    metrics_interval_s: float = 10.0,
    **engine_kwargs,
) -> MarginalServer:
    """Serve every dataset of a synopsis store from one process.

    ``store_or_path`` is a :class:`~repro.store.SynopsisStore` or its
    root directory.  Engines are built per dataset on first request
    and hot-swapped on ``POST /v1/reload`` (or automatically with
    ``watch=True``, which polls the manifest mtime).  Returns an
    unstarted :class:`MarginalServer`.
    """
    from repro.serve.multiplex import DEFAULT_MAX_ENGINES, EngineRouter

    router = EngineRouter(
        store_or_path,
        max_engines=max_engines if max_engines is not None else DEFAULT_MAX_ENGINES,
        watch=watch,
        **engine_kwargs,
    )
    return MarginalServer(
        router=router,
        host=host,
        port=port,
        request_timeout=request_timeout,
        trace_sample_rate=trace_sample_rate,
        metrics_out=metrics_out,
        metrics_interval_s=metrics_interval_s,
    )


def serve_synopsis(synopsis_or_path, **kwargs) -> MarginalServer:
    """Deprecated alias for :func:`serve_source`."""
    import warnings

    warnings.warn(
        "serve_synopsis is deprecated; use repro.serve.serve_source, "
        "which hosts any MarginalSource",
        DeprecationWarning,
        stacklevel=2,
    )
    return serve_source(synopsis_or_path, **kwargs)
