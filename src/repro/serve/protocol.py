"""The JSON wire protocol shared by the HTTP server and client.

Requests
--------
``POST /v1/marginal``::

    {"attrs": [0, 3, 5], "method": "maxent"}     # method optional

``POST /v1/batch``::

    {"queries": [{"attrs": [0, 3]}, {"attrs": [5, 1], "method": "lsq"}],
     "method": "maxent"}                          # batch-level default

Responses
---------
An answer payload::

    {"attrs": [0, 3, 5], "k": 3, "method": "maxent", "path": "solved",
     "cached": false, "source": null, "elapsed_ms": 1.93,
     "total": 4000.0, "counts": [...], "meta": {...}}

Batch responses wrap ``{"answers": [...], "count": n, "distinct": m}``.
Errors (any status >= 400)::

    {"error": {"type": "QueryError", "message": "..."}}

``counts`` uses the library-wide cell convention: sorted attrs
``(a_0 < ... < a_{m-1})``, cell ``i`` counts records with
``a_j = (i >> j) & 1``.
"""

from __future__ import annotations

import numpy as np

from repro.core.serialization import jsonable
from repro.exceptions import DimensionError, QueryError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable
from repro.serve.engine import QueryAnswer


def encode_answer(answer: QueryAnswer) -> dict:
    """The JSON payload for one :class:`QueryAnswer`."""
    return {
        "attrs": list(answer.attrs),
        "k": len(answer.attrs),
        "method": answer.method,
        "path": answer.path,
        "cached": answer.cached,
        "source": list(answer.source) if answer.source is not None else None,
        "elapsed_ms": answer.elapsed_s * 1e3,
        "total": answer.table.total(),
        "counts": answer.table.counts.tolist(),
        "meta": jsonable(answer.table.meta),
    }


def decode_table(payload: dict) -> MarginalTable:
    """Rebuild the :class:`MarginalTable` from an answer payload."""
    return MarginalTable(
        tuple(payload["attrs"]),
        np.asarray(payload["counts"], dtype=np.float64),
        dict(payload.get("meta") or {}),
    )


def encode_error(exc: BaseException, trace: dict | None = None) -> dict:
    """The JSON payload for a failed request.

    ``trace`` (the server's per-request ``{"trace_id", "request_id",
    "sampled"}`` block) rides along so clients can surface the ids in
    :class:`~repro.exceptions.RemoteQueryError`.
    """
    body = {"error": {"type": type(exc).__name__, "message": str(exc)}}
    if trace:
        body["trace"] = dict(trace)
    return body


def _require_attrs(body: dict) -> tuple:
    attrs = body.get("attrs")
    if not isinstance(attrs, list) or not all(
        isinstance(a, int) and not isinstance(a, bool) for a in attrs
    ):
        raise QueryError(
            f"'attrs' must be a list of integer attribute indices, "
            f"got {attrs!r}"
        )
    try:
        return AttrSet(attrs)
    except DimensionError:
        # Shape/type checks live here; semantic canonicalisation
        # errors (duplicate attrs, ...) are left to the engine, which
        # raises them per-request and counts them under the error path.
        return tuple(attrs)


def parse_marginal_request(body) -> tuple[list, str | None]:
    """Validate a ``/v1/marginal`` body into ``(attrs, method)``."""
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    method = body.get("method")
    if method is not None and not isinstance(method, str):
        raise QueryError(f"'method' must be a string, got {method!r}")
    return _require_attrs(body), method


def parse_batch_request(body) -> tuple[list, str | None]:
    """Validate a ``/v1/batch`` body into ``(queries, method)``.

    ``queries`` entries are attrs lists or ``(attrs, method)`` pairs,
    the shape :meth:`repro.serve.engine.QueryEngine.answer_batch`
    accepts.
    """
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    raw = body.get("queries")
    if not isinstance(raw, list) or not raw:
        raise QueryError("'queries' must be a non-empty list")
    method = body.get("method")
    if method is not None and not isinstance(method, str):
        raise QueryError(f"'method' must be a string, got {method!r}")
    queries = []
    for item in raw:
        if not isinstance(item, dict):
            raise QueryError(f"each query must be an object, got {item!r}")
        attrs, query_method = parse_marginal_request(item)
        queries.append((tuple(attrs), query_method) if query_method else tuple(attrs))
    return queries, method
