"""The JSON wire protocol shared by the HTTP server and client.

Requests
--------
``POST /v1/marginal``::

    {"attrs": [0, 3, 5], "method": "maxent"}     # method optional

``POST /v1/batch``::

    {"queries": [{"attrs": [0, 3]}, {"attrs": [5, 1], "method": "lsq"}],
     "method": "maxent"}                          # batch-level default

``POST /v1/sample``::

    {"n": 500, "seed": 7, "decode": true}         # all fields optional

Responses
---------
An answer payload::

    {"attrs": [0, 3, 5], "k": 3, "method": "maxent", "path": "solved",
     "cached": false, "source": null, "elapsed_ms": 1.93,
     "total": 4000.0, "counts": [...], "meta": {...}}

Batch responses wrap ``{"answers": [...], "count": n, "distinct": m}``.
Errors (any status >= 400)::

    {"error": {"type": "QueryError", "message": "..."}}

``counts`` uses the library-wide cell convention: sorted attrs
``(a_0 < ... < a_{m-1})``, cell ``i`` counts records with
``a_j = (i >> j) & 1``.
"""

from __future__ import annotations

import numpy as np

from repro.core.serialization import jsonable
from repro.exceptions import DimensionError, QueryError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable
from repro.serve.engine import QueryAnswer


def encode_answer(answer: QueryAnswer) -> dict:
    """The JSON payload for one :class:`QueryAnswer`."""
    payload = {
        "attrs": list(answer.attrs),
        "k": len(answer.attrs),
        "method": answer.method,
        "path": answer.path,
        "cached": answer.cached,
        "source": list(answer.source) if answer.source is not None else None,
        "elapsed_ms": answer.elapsed_s * 1e3,
        "total": answer.table.total(),
        "counts": answer.table.counts.tolist(),
        "meta": jsonable(answer.table.meta),
    }
    arities = getattr(answer.table, "arities", None)
    if arities is not None:
        payload["arities"] = [int(b) for b in arities]
    return payload


def decode_table(payload: dict):
    """Rebuild the marginal table from an answer payload.

    Payloads carrying ``arities`` (mixed-type synopses) come back as
    :class:`~repro.categorical.table.CategoricalMarginalTable`; binary
    payloads as :class:`MarginalTable`.
    """
    arities = payload.get("arities")
    if arities is not None:
        from repro.categorical.table import CategoricalMarginalTable

        return CategoricalMarginalTable(
            tuple(payload["attrs"]),
            tuple(int(b) for b in arities),
            np.asarray(payload["counts"], dtype=np.float64),
            dict(payload.get("meta") or {}),
        )
    return MarginalTable(
        tuple(payload["attrs"]),
        np.asarray(payload["counts"], dtype=np.float64),
        dict(payload.get("meta") or {}),
    )


def encode_error(exc: BaseException, trace: dict | None = None) -> dict:
    """The JSON payload for a failed request.

    ``trace`` (the server's per-request ``{"trace_id", "request_id",
    "sampled"}`` block) rides along so clients can surface the ids in
    :class:`~repro.exceptions.RemoteQueryError`.
    """
    body = {"error": {"type": type(exc).__name__, "message": str(exc)}}
    if trace:
        body["trace"] = dict(trace)
    return body


def _require_attrs(body: dict) -> tuple:
    attrs = body.get("attrs")
    if not isinstance(attrs, list) or not all(
        isinstance(a, int) and not isinstance(a, bool) for a in attrs
    ):
        raise QueryError(
            f"'attrs' must be a list of integer attribute indices, "
            f"got {attrs!r}"
        )
    try:
        return AttrSet(attrs)
    except DimensionError:
        # Shape/type checks live here; semantic canonicalisation
        # errors (duplicate attrs, ...) are left to the engine, which
        # raises them per-request and counts them under the error path.
        return tuple(attrs)


def parse_marginal_request(body) -> tuple[list, str | None]:
    """Validate a ``/v1/marginal`` body into ``(attrs, method)``."""
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    method = body.get("method")
    if method is not None and not isinstance(method, str):
        raise QueryError(f"'method' must be a string, got {method!r}")
    return _require_attrs(body), method


def parse_batch_request(body) -> tuple[list, str | None]:
    """Validate a ``/v1/batch`` body into ``(queries, method)``.

    ``queries`` entries are attrs lists or ``(attrs, method)`` pairs,
    the shape :meth:`repro.serve.engine.QueryEngine.answer_batch`
    accepts.
    """
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    raw = body.get("queries")
    if not isinstance(raw, list) or not raw:
        raise QueryError("'queries' must be a non-empty list")
    method = body.get("method")
    if method is not None and not isinstance(method, str):
        raise QueryError(f"'method' must be a string, got {method!r}")
    queries = []
    for item in raw:
        if not isinstance(item, dict):
            raise QueryError(f"each query must be an object, got {item!r}")
        attrs, query_method = parse_marginal_request(item)
        queries.append((tuple(attrs), query_method) if query_method else tuple(attrs))
    return queries, method


def parse_sample_request(body) -> tuple[int, int | None, bool]:
    """Validate a ``/v1/sample`` body into ``(n, seed, decode)``.

    ``n`` defaults to 100; the engine enforces the per-request cap.
    """
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    n = body.get("n", 100)
    if not isinstance(n, int) or isinstance(n, bool):
        raise QueryError(f"'n' must be an integer, got {n!r}")
    seed = body.get("seed")
    if seed is not None and (
        not isinstance(seed, int) or isinstance(seed, bool)
    ):
        raise QueryError(f"'seed' must be an integer, got {seed!r}")
    decode = body.get("decode", False)
    if not isinstance(decode, bool):
        raise QueryError(f"'decode' must be a boolean, got {decode!r}")
    return n, seed, decode


def encode_sample(answer, decode: bool = False) -> dict:
    """The JSON payload for one :class:`~repro.serve.engine.SampleAnswer`.

    With ``decode=False`` records are rows of integer codes (column
    order = ``attributes``); with ``decode=True`` they are rows of
    decoded values (labels / bin midpoints).
    """
    domain = answer.domain
    if decode:
        columns = domain.decode_records(answer.records)
        rows = [
            list(row)
            for row in zip(*(jsonable(columns[n]) for n in domain.names))
        ]
    else:
        rows = answer.records.tolist()
    return {
        "n": answer.n,
        "attributes": list(domain.names),
        "arities": [int(b) for b in domain.arities],
        "decoded": decode,
        "records": rows,
        "population": answer.population,
        "epsilon": answer.epsilon,
        "cold": answer.cold,
        "elapsed_ms": answer.elapsed_s * 1e3,
    }
