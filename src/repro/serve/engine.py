"""The query-serving engine: planner + single-flight cache + pool.

One :class:`QueryEngine` wraps one marginal source — typically a
fitted (or loaded) synopsis, but any
:class:`~repro.baselines.base.MarginalSource` works — and answers
marginal queries concurrently:

* each request is planned (covered / derived / solved), executed, and
  cached under ``(attrs, method)``;
* concurrent requests for the same marginal are coalesced — exactly
  one reconstruction runs (see :mod:`repro.serve.cache`);
* batch requests are de-duplicated and fanned out over a thread pool;
* every request is counted by planner path, both in the engine's own
  always-on stats (served at ``/stats``) and through ``repro.obs``
  counters/spans when a session is active.

Answers hand out *copies* of the cached tables, so callers may mutate
what they receive without corrupting the cache.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro import obs
from repro.core.reconstruction import (
    RECONSTRUCTION_METHODS,
    ResidualIndex,
    reconstruct,
    reconstruct_batch,
)
from repro.exceptions import (
    QueryError,
    QueryTimeoutError,
    ReconstructionError,
    ReproError,
)
from repro.kernels import indexcache
from repro.marginals.table import MarginalTable
from repro.obs import propagation
from repro.serve.planner import (
    PATH_COVERED,
    PATH_DERIVED,
    PATH_ERROR,
    PATH_SOLVED,
    QueryPlanner,
)
from repro.serve.cache import SingleFlightLRU

DEFAULT_CACHE_SIZE = 1024
DEFAULT_WORKERS = 8

#: Per-request ceiling for the record-sampling route; one JSON
#: response of this many records is already a few MB.
MAX_SAMPLE_RECORDS = 100_000

#: Default seed for the lazily built synthetic population, so two
#: servers (or a restart) hosting the same synopsis sample from the
#: same population.
DEFAULT_SYNTH_SEED = 20140622

#: Solver failures the engine absorbs by retrying with maxent when the
#: requested method was ``residual`` (singular systems, NaN noise).
#: Anything else — validation errors, planner errors — still surfaces.
_SOLVE_FALLBACK_ERRORS = (
    ReconstructionError,
    FloatingPointError,
    np.linalg.LinAlgError,
)


@dataclass(frozen=True)
class _CacheEntry:
    """What the cache stores: the master table plus its provenance."""

    table: MarginalTable
    path: str
    source: tuple[int, ...] | None


@dataclass(frozen=True)
class QueryAnswer:
    """One answered marginal query.

    ``table`` is a private copy; ``path`` is the planner path that
    *originally* produced the table (a cache hit keeps the original
    path and sets ``cached``); ``source`` names the view or cached
    marginal projected from, when any.
    """

    attrs: tuple[int, ...]
    method: str
    table: MarginalTable = field(repr=False)
    path: str
    cached: bool
    elapsed_s: float
    source: tuple[int, ...] | None = None


@dataclass(frozen=True)
class SampleAnswer:
    """One answered record-sampling request.

    ``records`` is a ``(n, d)`` matrix of integer codes over
    ``domain``; ``population`` is the size of the synthesised record
    population the rows were drawn from; ``cold`` marks the request
    that paid for building it.
    """

    n: int
    records: np.ndarray = field(repr=False)
    domain: object
    population: int
    epsilon: float | None
    elapsed_s: float
    cold: bool


class QueryEngine:
    """Concurrent marginal answering on top of one marginal source.

    Parameters
    ----------
    source:
        Any :class:`~repro.baselines.base.MarginalSource` exposing
        ``marginal(attrs)`` and ``num_attributes``.  A
        :class:`~repro.core.synopsis.PriViewSynopsis` (fitted or
        loaded via :func:`~repro.core.serialization.load_synopsis`)
        additionally exposes ``views`` and gets the full planner —
        covered / derived / solved.  A viewless source (a fitted
        baseline mechanism, say) answers every cache miss through its
        own ``marginal``; planning degenerates to *solved* but the
        single-flight cache, batching and stats still apply.
    cache_size / workers:
        Answer-cache capacity and thread-pool width.
    default_method:
        Solver for requests that don't name one.
    derive_from_cache:
        Disable to force uncovered queries through the solver even
        when a cached superset could be projected.
    attach:
        When True, register this engine on the source (if it supports
        ``attach_engine``, as the synopsis does) so that
        ``synopsis.marginal(...)`` / ``marginals(...)`` route through
        it (and therefore through the cache).
    dataset:
        Label attached to this engine's latency histograms
        (``serve.request_seconds{dataset=...,path=...}``) so a
        store-backed server's ``/metrics`` splits per dataset.
        Defaults to the source's ``name``, else ``"default"``.
    """

    def __init__(
        self,
        source,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int = DEFAULT_WORKERS,
        default_method: str = "maxent",
        derive_from_cache: bool = True,
        attach: bool = False,
        dataset: str | None = None,
    ):
        if default_method not in RECONSTRUCTION_METHODS:
            raise QueryError(
                f"unknown reconstruction method {default_method!r}; "
                f"choose from {RECONSTRUCTION_METHODS}"
            )
        self.source = source
        self.default_method = default_method
        self.derive_from_cache = derive_from_cache
        self._views: list[MarginalTable] = list(getattr(source, "views", ()) or ())
        # Mixed-radix (categorical) sources carry non-binary view
        # tables the binary planner and solvers must not touch: treat
        # them as viewless, so every cache miss is answered by the
        # source's own reconstruct()/marginal() (still planned,
        # cached, coalesced and counted like any solved query).
        self._mixed = getattr(source, "arities", None) is not None
        if self._mixed:
            self._views = []
        self._planner = QueryPlanner(self._views, source.num_attributes)
        self._cache = SingleFlightLRU(cache_size)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        total_count = getattr(source, "total_count", None)
        self._total = float(total_count()) if callable(total_count) else None
        # First view wins on (hypothetical) duplicate blocks, matching
        # covering_view's first-match rule so plans resolve bitwise
        # identically to reconstruct()'s own covered path.
        self._view_by_attrs: dict[tuple[int, ...], MarginalTable] = {}
        for view in self._views:
            self._view_by_attrs.setdefault(view.attrs, view)
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._paths = {p: 0 for p in (PATH_COVERED, PATH_DERIVED, PATH_SOLVED, PATH_ERROR)}
        self.dataset = dataset or getattr(source, "name", None) or "default"
        # Pre-sorted label tuples so the hot path never builds or sorts
        # a dict per request (see _normalize_labels' fast lane).
        self._dataset_counter = f"serve.dataset.{self.dataset}"
        self._request_labels = {
            p: (("dataset", self.dataset), ("path", p))
            for p in (PATH_COVERED, PATH_DERIVED, PATH_SOLVED, PATH_ERROR)
        }
        self._lookup_labels = {
            outcome: (("dataset", self.dataset), ("outcome", outcome))
            for outcome in ("hit", "miss")
        }
        # serve.solve_seconds{dataset,method,mode}: label tuples stay
        # alphabetically pre-sorted for _normalize_labels' fast lane;
        # lookups by {method=...} merge the single/batch modes.
        self._solve_labels = {
            (m, mode): (("dataset", self.dataset), ("method", m), ("mode", mode))
            for m in RECONSTRUCTION_METHODS
            for mode in ("single", "batch")
        }
        self._fallbacks = 0
        # Largest arity ever cached, per method — a monotone upper
        # bound (evictions never shrink it).  The derived path needs a
        # cached *strict* superset, so when no cached entry beats the
        # target's arity the per-miss cache scan is skipped entirely;
        # overcounting only costs an occasional unnecessary scan.
        self._max_cached_arity: dict[str, int] = {}
        # Lazily-built per-synopsis residual coefficient index: the
        # first residual solve pays the one-time view transforms, every
        # later solve is O(2**k) lookups (see ResidualIndex).
        self._residual_index: ResidualIndex | None = None
        self._residual_lock = threading.Lock()
        # Lazily-synthesised record population for the /sample route:
        # the first sample request pays the gradual-update fit, every
        # later one is a row-indexing draw.
        self._sampler = None
        self._sampler_lock = threading.Lock()
        self._synth_seed = DEFAULT_SYNTH_SEED
        # Counter-name tuples per (path, hit) so each request is one
        # batched incr_each (one lock, one span lookup) instead of four
        # separate incrs.
        self._counter_names = {
            (p, hit): (
                "serve.request",
                f"serve.path.{p}",
                self._dataset_counter,
                "serve.cache.hit" if hit else "serve.cache.miss",
            )
            for p in (PATH_COVERED, PATH_DERIVED, PATH_SOLVED)
            for hit in (True, False)
        }
        self._error_counters = (
            "serve.request",
            f"serve.path.{PATH_ERROR}",
            self._dataset_counter,
        )
        if attach:
            attach_engine = getattr(source, "attach_engine", None)
            if callable(attach_engine):
                attach_engine(self)

    @property
    def synopsis(self):
        """The hosted source (kept for backwards compatibility)."""
        return self.source

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer(self, attrs, method: str | None = None,
               timeout: float | None = None) -> QueryAnswer:
        """Answer one marginal query.

        With ``timeout`` the work runs on the engine pool and a
        :class:`QueryTimeoutError` is raised if no answer arrives in
        time — the computation keeps running and still populates the
        cache, so a retry usually hits.
        """
        method = self._method(method)
        if timeout is None:
            return self._answer(attrs, method, None)
        future = self._submit_answer(attrs, method, timeout)
        try:
            return future.result(timeout)
        except _FuturesTimeout:
            self._record(PATH_ERROR)
            obs.incr("serve.timeout")
            raise QueryTimeoutError(
                f"query {tuple(attrs)!r} missed its {timeout}s deadline"
            ) from None

    def answer_batch(self, queries, method: str | None = None,
                     timeout: float | None = None) -> list[QueryAnswer]:
        """Answer a workload of queries, de-duplicated, in parallel.

        ``queries`` holds attribute sets (or ``(attrs, method)`` pairs
        to override the batch-level method per query).  Results align
        with the input order; repeated/equivalent sets are computed
        once and each slot receives its own table copy.

        Uncovered (solved-path) misses are pre-solved in one stacked
        reconstruction per method (:func:`reconstruct_batch`) before
        the per-key fan-out, so a batch of N cold solver queries costs
        one solve, not N — the per-key futures then just install the
        pre-solved tables through the single-flight cache, keeping the
        path/hit accounting identical to the one-at-a-time route.
        """
        batch_method = self._method(method)
        keys: list[tuple[tuple[int, ...], str]] = []
        for query in queries:
            if (
                isinstance(query, tuple)
                and len(query) == 2
                and isinstance(query[1], str)
            ):
                attrs, query_method = query
            else:
                attrs, query_method = query, None
            keys.append(
                (self._planner.validate(attrs), self._method(query_method or batch_method))
            )
        distinct = list(dict.fromkeys(keys))
        presolved = self._batch_solve(distinct) if len(distinct) > 1 else {}
        futures = {}
        for key in keys:
            if key not in futures:
                futures[key] = self._submit_answer(
                    key[0], key[1], timeout, presolved.get(key)
                )
        results = {key: future.result(timeout) for key, future in futures.items()}
        out = []
        seen: set = set()
        for key in keys:
            answer = results[key]
            if key in seen:
                # duplicate slot: re-copy so slots never share arrays
                answer = QueryAnswer(
                    attrs=answer.attrs, method=answer.method,
                    table=answer.table.copy(), path=answer.path,
                    cached=True, elapsed_s=answer.elapsed_s,
                    source=answer.source,
                )
            seen.add(key)
            out.append(answer)
        return out

    # ------------------------------------------------------------------
    def _method(self, method: str | None) -> str:
        if method is None:
            return self.default_method
        if method not in RECONSTRUCTION_METHODS:
            raise QueryError(
                f"unknown reconstruction method {method!r}; "
                f"choose from {RECONSTRUCTION_METHODS}"
            )
        return method

    def _cached_supersets(self, method: str) -> dict:
        """Completed same-method reconstructions, attrs → table."""
        return {
            key[0]: entry.table
            for key, entry in self._cache.items()
            if key[1] == method
        }

    def _submit_answer(self, attrs, method: str, wait_timeout,
                       presolved: MarginalTable | None = None):
        """Submit ``_answer`` to the pool, carrying the caller's trace
        context onto the worker thread (thread-locals don't cross
        executor boundaries on their own)."""
        context = propagation.current_context()
        if context is None:
            return self._pool.submit(
                self._answer, attrs, method, wait_timeout, presolved
            )
        return self._pool.submit(
            self._run_traced, context, attrs, method, wait_timeout, presolved
        )

    def _run_traced(self, context, attrs, method: str, wait_timeout,
                    presolved: MarginalTable | None = None):
        with propagation.trace_scope(context):
            return self._answer(attrs, method, wait_timeout, presolved)

    def _answer(self, attrs, method: str,
                wait_timeout: float | None,
                presolved: MarginalTable | None = None) -> QueryAnswer:
        start = perf_counter()
        with obs.span("serve.request"):
            try:
                target = self._planner.validate(attrs)
                key = (target, method)
                lookup_start = perf_counter()
                entry, hit = self._cache.get_or_compute(
                    key, lambda: self._compute(target, method, presolved),
                    wait_timeout,
                )
                lookup_elapsed = perf_counter() - lookup_start
            except ReproError:
                self._record(PATH_ERROR)
                obs.incr_each(self._error_counters)
                obs.observe(
                    "serve.request_seconds",
                    perf_counter() - start,
                    self._request_labels[PATH_ERROR],
                )
                raise
            elapsed = perf_counter() - start
            self._record(entry.path)
            obs.incr_each(self._counter_names[entry.path, hit])
            obs.observe(
                "serve.request_seconds", elapsed, self._request_labels[entry.path]
            )
            if not hit:
                # The cache only changes size on a miss, so the gauge
                # (and the lookup histogram) stay off the warm path.
                obs.set_gauge("serve.cache.size", len(self._cache))
                obs.observe(
                    "serve.cache.lookup_seconds",
                    lookup_elapsed,
                    self._lookup_labels["miss"],
                )
            else:
                # Hit-side lookup timing only for trace-sampled requests:
                # the warm path is ~20µs end to end and an extra labeled
                # observe per hit would show up in BENCH_serve.
                context = propagation.current_context()
                if context is not None and context.sampled:
                    obs.observe(
                        "serve.cache.lookup_seconds",
                        lookup_elapsed,
                        self._lookup_labels["hit"],
                    )
        return QueryAnswer(
            attrs=target,
            method=method,
            table=entry.table.copy(),
            path=entry.path,
            cached=hit,
            elapsed_s=elapsed,
            source=entry.source,
        )

    def _compute(self, target: tuple[int, ...], method: str,
                 presolved: MarginalTable | None = None) -> _CacheEntry:
        """Execute the plan for one cache miss (single-flight leader)."""
        cached = (
            self._cached_supersets(method)
            if self._may_derive(method, target) else None
        )
        plan = self._planner.plan(target, method, cached)
        with obs.span(f"serve.compute.{plan.path}"):
            if plan.path == PATH_COVERED:
                table = self._view_by_attrs[plan.source].project(target)
            elif plan.path == PATH_DERIVED:
                table = cached[plan.source].project(target)
            elif self._views:
                # A stacked batch solve may have produced this table
                # already; otherwise solve here (with fallback).
                table = presolved if presolved is not None else self._solve(
                    target, method
                )
            else:
                # Viewless source: the mechanism answers directly —
                # through its engine-independent reconstruct() when it
                # has one (an attached synopsis's marginal() routes
                # back here, so calling it would recurse).
                direct = getattr(self.source, "reconstruct", None)
                if callable(direct):
                    table = direct(target, method=method)
                else:
                    table = self.source.marginal(target)
        self._note_cached_arity(method, len(target))
        return _CacheEntry(table=table, path=plan.path, source=plan.source)

    def _may_derive(self, method: str, target: tuple[int, ...]) -> bool:
        """Whether a cached strict superset could exist for ``target``.

        A concurrent leader may have cached a superset it hasn't
        recorded yet; that race only downgrades one derivation to a
        solve, never the answer.
        """
        return (
            self.derive_from_cache
            and self._max_cached_arity.get(method, 0) > len(target)
        )

    def _note_cached_arity(self, method: str, arity: int) -> None:
        if arity > self._max_cached_arity.get(method, 0):
            with self._stats_lock:
                if arity > self._max_cached_arity.get(method, 0):
                    self._max_cached_arity[method] = arity

    def _residual_solver(self) -> ResidualIndex:
        """The per-synopsis coefficient index, built on first use."""
        index = self._residual_index
        if index is None:
            with self._residual_lock:
                index = self._residual_index
                if index is None:
                    index = ResidualIndex(self._views, self._total)
                    self._residual_index = index
        return index

    def _solve(self, target: tuple[int, ...], method: str) -> MarginalTable:
        """One solved-path reconstruction, with the residual safety net.

        Residual solves run against the precomputed coefficient index;
        one that blows up (singular system, NaN noise in a view) falls
        back to ``maxent`` — the answer is cached under the *requested*
        method's key, and the fallback is counted in
        ``serve.solve.fallback`` and the engine stats.
        """
        start = perf_counter()
        try:
            if method == "residual":
                table = self._residual_solver().solve(target)
            else:
                table = reconstruct(
                    self._views, target, method=method,
                    use_covering_view=False, total=self._total,
                )
        except _SOLVE_FALLBACK_ERRORS:
            if method != "residual":
                raise
            self._count_fallback(1)
            table = reconstruct(
                self._views, target, method="maxent",
                use_covering_view=False, total=self._total,
            )
        obs.observe(
            "serve.solve_seconds", perf_counter() - start,
            self._solve_labels[method, "single"],
        )
        return table

    def _batch_solve(self, keys) -> dict:
        """Pre-solve a batch's uncovered misses, one stack per method.

        Plans every distinct uncached key; keys landing on the solved
        path are grouped by method and each group of two or more runs
        one :func:`reconstruct_batch` call.  Returns ``{key: table}``
        for the pre-solved keys — everything else (covered, derived,
        already cached, singleton groups) flows through the ordinary
        per-key route.  A failing ``residual`` stack falls back to one
        ``maxent`` stack; failures of other methods are left to the
        per-key solve so each key surfaces its own error.
        """
        if not self._views:
            return {}
        groups: dict[str, list[tuple[tuple[int, ...], str]]] = {}
        for key in keys:
            if self._cache.get(key) is not None:
                continue
            target, method = key
            cached = (
                self._cached_supersets(method)
                if self._may_derive(method, target) else None
            )
            plan = self._planner.plan(target, method, cached)
            if plan.path == PATH_SOLVED:
                groups.setdefault(method, []).append(key)
        presolved: dict[tuple[tuple[int, ...], str], MarginalTable] = {}
        for method, group in groups.items():
            if len(group) < 2:
                continue
            targets = [key[0] for key in group]
            start = perf_counter()
            try:
                if method == "residual":
                    tables = self._residual_solver().solve_batch(targets)
                else:
                    tables = reconstruct_batch(
                        self._views, targets, method=method,
                        use_covering_view=False, total=self._total,
                    )
            except _SOLVE_FALLBACK_ERRORS:
                if method != "residual":
                    continue
                self._count_fallback(len(group))
                tables = reconstruct_batch(
                    self._views, targets, method="maxent",
                    use_covering_view=False, total=self._total,
                )
            obs.observe(
                "serve.solve_seconds", perf_counter() - start,
                self._solve_labels[method, "batch"],
            )
            obs.incr("serve.solve.batched", len(group))
            presolved.update(zip(group, tables))
        return presolved

    # ------------------------------------------------------------------
    # Record sampling
    # ------------------------------------------------------------------
    def sampler(self):
        """The lazily built :class:`~repro.synth.RecordSampler`.

        The first call synthesises the record population from the
        hosted synopsis (gradual update, fixed seed — two engines over
        the same synopsis build the same population); later calls
        return the cached sampler.  Raises :class:`QueryError` for
        sources without views.
        """
        sampler = self._sampler
        if sampler is None:
            with self._sampler_lock:
                sampler = self._sampler
                if sampler is None:
                    if not getattr(self.source, "views", None):
                        raise QueryError(
                            "record sampling needs a synopsis with views; "
                            f"{type(self.source).__name__} has none"
                        )
                    from repro.synth import RecordSampler, synthesize

                    with obs.span("serve.synth_population"):
                        records = synthesize(
                            self.source, seed=self._synth_seed
                        )
                    sampler = RecordSampler(records, seed=self._synth_seed)
                    obs.set_gauge(
                        "serve.synth_population", records.num_records
                    )
                    self._sampler = sampler
        return sampler

    def sample(self, n: int, seed: int | None = None) -> SampleAnswer:
        """Draw ``n`` synthetic records (codes over the source domain).

        Pure post-processing of the published views — no additional
        privacy budget is spent, however many records are drawn.
        ``seed`` makes the draw reproducible; without it consecutive
        calls return fresh batches.
        """
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise QueryError(f"sample size must be a positive int, got {n!r}")
        if n > MAX_SAMPLE_RECORDS:
            raise QueryError(
                f"sample size {n} exceeds the per-request limit "
                f"{MAX_SAMPLE_RECORDS}"
            )
        start = perf_counter()
        with obs.span("serve.sample"):
            cold = self._sampler is None
            sampler = self.sampler()
            rows = sampler.sample(n, seed=seed)
        elapsed = perf_counter() - start
        obs.incr("serve.sample.request")
        obs.observe(
            "serve.sample_seconds", elapsed, (("dataset", self.dataset),)
        )
        return SampleAnswer(
            n=n,
            records=rows,
            domain=sampler.domain,
            population=sampler.population,
            epsilon=getattr(self.source, "epsilon", None),
            elapsed_s=elapsed,
            cold=cold,
        )

    def _count_fallback(self, n: int) -> None:
        with self._stats_lock:
            self._fallbacks += n
        obs.incr("serve.solve.fallback", n)

    def _record(self, path: str) -> None:
        with self._stats_lock:
            self._requests += 1
            self._paths[path] += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serialisable serving statistics (the ``/stats`` body).

        ``requests`` always equals the sum of the ``paths`` values: a
        cache hit counts under the path that originally produced the
        entry, so every request is accounted for by planner path.
        """
        with self._stats_lock:
            requests = self._requests
            paths = dict(self._paths)
            fallbacks = self._fallbacks
        design = getattr(self.source, "design", None)
        latency = None
        sess = obs.current()
        if sess is not None and sess.metrics is not None:
            hist = sess.metrics.histogram(
                "serve.request_seconds", {"dataset": self.dataset}
            )
            if hist is not None and hist.count:
                latency = {
                    "count": hist.count,
                    "mean": hist.sum / hist.count,
                    "p50": hist.quantile(0.5),
                    "p90": hist.quantile(0.9),
                    "p95": hist.quantile(0.95),
                    "p99": hist.quantile(0.99),
                }
        return {
            "requests": requests,
            "paths": paths,
            "latency": latency,
            "cache": self._cache.stats(),
            "solve": {"fallbacks": fallbacks},
            "default_method": self.default_method,
            "dataset": self.dataset,
            "synopsis": {
                "name": getattr(self.source, "name", type(self.source).__name__),
                "design": getattr(design, "notation", None),
                "epsilon": getattr(self.source, "epsilon", None),
                "num_attributes": self.source.num_attributes,
                "views": len(self._views),
                "total_count": self._total,
            },
            "kernels": {"index_cache": indexcache.stats()},
        }
