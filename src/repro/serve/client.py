"""Stdlib client for the marginal-serving protocol.

Example::

    from repro.serve import QueryClient

    client = QueryClient("http://127.0.0.1:8177")
    client.healthz()["status"]              # "ok"
    payload = client.marginal((0, 3, 5))    # raw protocol dict
    table = client.marginal_table((0, 3, 5))  # a MarginalTable

Against a store-backed server (``repro store serve``), pass
``dataset=`` to target one published dataset, or construct the client
with a default: ``QueryClient(url, dataset="adult")``::

    client.datasets()                        # what's published
    client.marginal((0, 3), dataset="msnbc")
    client.reload()                          # hot-swap new versions

Server-side errors come back as the matching repro exceptions:
``400``/``404`` → :class:`QueryError`, ``504`` →
:class:`QueryTimeoutError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from urllib.parse import quote

from repro.exceptions import QueryError, QueryTimeoutError
from repro.marginals.table import MarginalTable
from repro.serve.protocol import decode_table


class QueryClient:
    """Talks to a :class:`repro.serve.MarginalServer`."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        dataset: str | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.dataset = dataset

    def _query_path(self, action: str, dataset: str | None) -> str:
        """``/v1/marginal`` or ``/v1/d/{name}/marginal``."""
        dataset = dataset if dataset is not None else self.dataset
        if dataset is None:
            return f"/v1/{action}"
        return f"/v1/d/{quote(dataset, safe='')}/{action}"

    # ------------------------------------------------------------------
    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from exc

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> QueryError:
        try:
            detail = json.loads(exc.read())["error"]
            message = f"{detail['type']}: {detail['message']}"
        except Exception:
            message = f"HTTP {exc.code}"
        if exc.code == 504:
            return QueryTimeoutError(message)
        return QueryError(f"server rejected request ({exc.code}): {message}")

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def datasets(self) -> list[dict]:
        """Published datasets on a store-backed server."""
        return self._request("/v1/datasets")["datasets"]

    def reload(self) -> dict:
        """Hot-swap newly published versions on a store-backed server."""
        return self._request("/v1/reload", {})

    def marginal(
        self, attrs, method: str | None = None, dataset: str | None = None
    ) -> dict:
        """One marginal query; returns the raw answer payload."""
        body = {"attrs": [int(a) for a in attrs]}
        if method is not None:
            body["method"] = method
        return self._request(self._query_path("marginal", dataset), body)

    def marginal_table(
        self, attrs, method: str | None = None, dataset: str | None = None
    ) -> MarginalTable:
        """One marginal query, decoded into a :class:`MarginalTable`."""
        return decode_table(
            self.marginal(attrs, method=method, dataset=dataset)
        )

    def batch(
        self, queries, method: str | None = None, dataset: str | None = None
    ) -> dict:
        """A workload of queries; returns the raw batch payload.

        ``queries`` entries are attribute iterables or
        ``(attrs, method)`` pairs.
        """
        encoded = []
        for query in queries:
            if (
                isinstance(query, tuple)
                and len(query) == 2
                and isinstance(query[1], str)
            ):
                attrs, query_method = query
                encoded.append(
                    {"attrs": [int(a) for a in attrs], "method": query_method}
                )
            else:
                encoded.append({"attrs": [int(a) for a in query]})
        body: dict = {"queries": encoded}
        if method is not None:
            body["method"] = method
        return self._request(self._query_path("batch", dataset), body)

    def batch_tables(
        self, queries, method: str | None = None, dataset: str | None = None
    ) -> list[MarginalTable]:
        """A workload of queries, decoded into tables (input order)."""
        payload = self.batch(queries, method=method, dataset=dataset)
        return [decode_table(answer) for answer in payload["answers"]]
