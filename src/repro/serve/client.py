"""Stdlib client for the marginal-serving protocol.

Example::

    from repro.serve import QueryClient

    client = QueryClient("http://127.0.0.1:8177")
    client.healthz()["status"]              # "ok"
    payload = client.marginal((0, 3, 5))    # raw protocol dict
    table = client.marginal_table((0, 3, 5))  # a MarginalTable

Against a store-backed server (``repro store serve``), pass
``dataset=`` to target one published dataset, or construct the client
with a default: ``QueryClient(url, dataset="adult")``::

    client.datasets()                        # what's published
    client.marginal((0, 3), dataset="msnbc")
    client.reload()                          # hot-swap new versions

Tracing: construct with ``trace=True`` (or ``trace_sample_rate=``) and
every request carries a fresh ``traceparent`` header; the server
adopts the trace id, tags its spans with it and echoes it back — read
``client.last_trace`` after any call to correlate with server-side
records.  An active :func:`repro.obs.trace_scope` on the calling
thread takes precedence, so one trace id can span several calls.

Server-side errors come back as typed exceptions carrying the
structured body the server returned: ``504`` →
:class:`~repro.exceptions.RemoteQueryTimeoutError` (also a
:class:`QueryTimeoutError`), anything else ≥ 400 →
:class:`~repro.exceptions.RemoteQueryError` with ``status``,
``error_type``, ``request_id`` and ``trace_id`` attributes.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from urllib.parse import quote

from repro.exceptions import RemoteQueryError, RemoteQueryTimeoutError
from repro.marginals.table import MarginalTable
from repro.obs import propagation
from repro.serve.protocol import decode_table


class QueryClient:
    """Talks to a :class:`repro.serve.MarginalServer`."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        dataset: str | None = None,
        trace: bool = False,
        trace_sample_rate: float | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.dataset = dataset
        if trace_sample_rate is None:
            trace_sample_rate = 1.0 if trace else 0.0
        self.trace_sample_rate = float(trace_sample_rate)
        #: The ``trace`` block of the most recent response (or the
        #: error body's), e.g. ``{"trace_id", "request_id", "sampled"}``.
        self.last_trace: dict | None = None

    def _query_path(self, action: str, dataset: str | None) -> str:
        """``/v1/marginal`` or ``/v1/d/{name}/marginal``."""
        dataset = dataset if dataset is not None else self.dataset
        if dataset is None:
            return f"/v1/{action}"
        return f"/v1/d/{quote(dataset, safe='')}/{action}"

    def _trace_context(self) -> propagation.TraceContext | None:
        """The context to send: the calling thread's scope, else a
        fresh head-sampled one, else None (no header)."""
        current = propagation.current_context()
        if current is not None:
            return current.child()
        if self.trace_sample_rate > 0:
            return propagation.sampled_context(self.trace_sample_rate)
        return None

    # ------------------------------------------------------------------
    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        context = self._trace_context()
        if context is not None:
            headers[propagation.TRACEPARENT_HEADER] = context.traceparent
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from exc
        if isinstance(body, dict):
            self.last_trace = body.get("trace")
        return body

    def _decode_error(self, exc: urllib.error.HTTPError) -> RemoteQueryError:
        error_type = None
        trace: dict = {}
        try:
            body = json.loads(exc.read())
            detail = body["error"]
            error_type = detail.get("type")
            trace = body.get("trace") or {}
            message = f"{error_type}: {detail['message']}"
        except Exception:
            message = f"HTTP {exc.code}"
        self.last_trace = trace or None
        cls = RemoteQueryTimeoutError if exc.code == 504 else RemoteQueryError
        return cls(
            f"server rejected request ({exc.code}): {message}",
            status=exc.code,
            error_type=error_type,
            request_id=trace.get("request_id"),
            trace_id=trace.get("trace_id"),
        )

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def metrics(self) -> str:
        """The server's raw Prometheus exposition text."""
        url = f"{self.base_url}/metrics"
        request = urllib.request.Request(url, headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from exc

    def datasets(self) -> list[dict]:
        """Published datasets on a store-backed server."""
        return self._request("/v1/datasets")["datasets"]

    def reload(self) -> dict:
        """Hot-swap newly published versions on a store-backed server."""
        return self._request("/v1/reload", {})

    def marginal(
        self, attrs, method: str | None = None, dataset: str | None = None
    ) -> dict:
        """One marginal query; returns the raw answer payload."""
        body = {"attrs": [int(a) for a in attrs]}
        if method is not None:
            body["method"] = method
        return self._request(self._query_path("marginal", dataset), body)

    def marginal_table(
        self, attrs, method: str | None = None, dataset: str | None = None
    ) -> MarginalTable:
        """One marginal query, decoded into a :class:`MarginalTable`."""
        return decode_table(
            self.marginal(attrs, method=method, dataset=dataset)
        )

    def batch(
        self, queries, method: str | None = None, dataset: str | None = None
    ) -> dict:
        """A workload of queries; returns the raw batch payload.

        ``queries`` entries are attribute iterables or
        ``(attrs, method)`` pairs.
        """
        encoded = []
        for query in queries:
            if (
                isinstance(query, tuple)
                and len(query) == 2
                and isinstance(query[1], str)
            ):
                attrs, query_method = query
                encoded.append(
                    {"attrs": [int(a) for a in attrs], "method": query_method}
                )
            else:
                encoded.append({"attrs": [int(a) for a in query]})
        body: dict = {"queries": encoded}
        if method is not None:
            body["method"] = method
        return self._request(self._query_path("batch", dataset), body)

    def sample(
        self,
        n: int = 100,
        seed: int | None = None,
        decode: bool = False,
        dataset: str | None = None,
    ) -> dict:
        """Draw ``n`` synthetic records; returns the raw payload.

        ``records`` rows are integer codes in ``attributes`` order, or
        decoded values with ``decode=True``.  Pure post-processing of
        the published synopsis — no privacy budget is spent.
        """
        body: dict = {"n": int(n)}
        if seed is not None:
            body["seed"] = int(seed)
        if decode:
            body["decode"] = True
        return self._request(self._query_path("sample", dataset), body)

    def batch_tables(
        self, queries, method: str | None = None, dataset: str | None = None
    ) -> list[MarginalTable]:
        """A workload of queries, decoded into tables (input order)."""
        payload = self.batch(queries, method=method, dataset=dataset)
        return [decode_table(answer) for answer in payload["answers"]]

    # ------------------------------------------------------------------
    # Stream windows (store-backed servers)
    # ------------------------------------------------------------------
    def windows(self, dataset: str | None = None) -> list[dict]:
        """Stream windows released for a dataset (oldest first)."""
        dataset = dataset if dataset is not None else self.dataset
        if dataset is None:
            raise RemoteQueryError(
                "windows() needs a dataset (pass dataset= or construct "
                "the client with one)"
            )
        path = f"/v1/d/{quote(dataset, safe='')}/windows"
        return self._request(path)["windows"]

    def window_marginal(
        self,
        attrs,
        last: int | None = None,
        windows=None,
        method: str | None = None,
        dataset: str | None = None,
    ) -> dict:
        """Time-sliced marginal: per-window answers plus their union.

        ``last`` selects the newest ``k`` windows, ``windows`` explicit
        window indices; neither selects every released window.
        """
        body: dict = {"attrs": [int(a) for a in attrs]}
        if method is not None:
            body["method"] = method
        if last is not None:
            body["last"] = int(last)
        if windows is not None:
            body["windows"] = [int(w) for w in windows]
        return self._request(
            self._query_path("windows/marginal", dataset), body
        )

    def window_union_table(self, attrs, **kwargs) -> MarginalTable:
        """The union table of a :meth:`window_marginal` call."""
        payload = self.window_marginal(attrs, **kwargs)
        return MarginalTable(
            tuple(payload["attrs"]), payload["union"]["counts"]
        )
