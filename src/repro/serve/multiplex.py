"""Routing one server across a whole synopsis store.

:class:`EngineRouter` maps dataset names to per-entry
:class:`~repro.serve.engine.QueryEngine` instances backed by a
:class:`~repro.store.SynopsisStore`:

* engines are built **lazily** on first request (loading the resolved
  version, integrity-checked) and evicted LRU beyond ``max_engines``;
* requests take a *lease* on an engine
  (``with router.lease(name) as engine``), which refcounts in-flight
  work — a hot swap retires the old engine but only shuts its thread
  pool down once the last lease is released, so **no in-flight request
  is ever dropped** by a reload;
* :meth:`reload` re-resolves every hosted dataset against the store
  and swaps engines whose published version changed; with ``watch``
  the router stats the manifest mtime on each lease (at most once per
  ``watch_interval`` seconds) and reloads automatically, so
  ``repro store publish`` becomes visible to a running server without
  any endpoint call.

Concurrent lazy builds of the same dataset are single-flighted by a
per-name build lock; distinct datasets build in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import monotonic, time

from repro import obs
from repro.exceptions import QueryError, StoreError
from repro.obs.log import get_logger
from repro.serve.engine import QueryEngine

log = get_logger("serve")

DEFAULT_MAX_ENGINES = 8


class _Hosted:
    """One resolved dataset version and its live engine."""

    __slots__ = ("name", "info", "engine", "inflight", "retired")

    def __init__(self, name, info, engine):
        self.name = name
        self.info = info
        self.engine = engine
        self.inflight = 0
        self.retired = False


class _Lease:
    """Context manager pinning one hosted engine for one request."""

    __slots__ = ("_router", "_hosted")

    def __init__(self, router: "EngineRouter", hosted: _Hosted):
        self._router = router
        self._hosted = hosted

    @property
    def engine(self) -> QueryEngine:
        return self._hosted.engine

    @property
    def version(self):
        return self._hosted.info

    def __enter__(self) -> QueryEngine:
        return self._hosted.engine

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._router._release(self._hosted)
        return False


class EngineRouter:
    """name → lazily built, hot-swappable :class:`QueryEngine`."""

    def __init__(
        self,
        store,
        max_engines: int = DEFAULT_MAX_ENGINES,
        watch: bool = False,
        watch_interval: float = 0.0,
        **engine_kwargs,
    ):
        from repro.store import SynopsisStore

        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            store = SynopsisStore(store, create=False)
        if watch_interval < 0:
            raise QueryError(
                f"watch_interval must be >= 0, got {watch_interval}"
            )
        self.store = store
        self.max_engines = max(1, int(max_engines))
        self.watch = watch
        #: Minimum seconds between manifest polls under ``watch``.  0
        #: (the default) stats the manifest on every lease — maximal
        #: freshness; raise it to bound stat() traffic on hot serving
        #: paths at the cost of that much publish-visibility latency.
        self.watch_interval = float(watch_interval)
        self._engine_kwargs = dict(engine_kwargs)
        self._lock = threading.Lock()
        self._hosted: OrderedDict[str, _Hosted] = OrderedDict()
        self._building: dict[str, threading.Lock] = {}
        self._closed = False
        self._manifest_mtime = store.manifest_mtime()
        self._swaps = 0
        self._reloads = 0
        self._last_poll_mono: float | None = None
        self._last_poll_ts: float | None = None
        self._last_swap_ts: float | None = None

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def lease(self, name: str) -> _Lease:
        """Pin (building if needed) the engine for ``name``.

        Raises :class:`~repro.exceptions.QueryError` for datasets the
        store does not know, so the server can answer 404.
        """
        if self.watch:
            self._watch_poll()
        while True:
            with self._lock:
                if self._closed:
                    raise QueryError("router is closed")
                hosted = self._hosted.get(name)
                if hosted is not None:
                    hosted.inflight += 1
                    self._hosted.move_to_end(name)
                    return _Lease(self, hosted)
                build_lock = self._building.get(name)
                if build_lock is None:
                    build_lock = self._building[name] = threading.Lock()
                    build_lock.acquire()
                    leader = True
                else:
                    leader = False
            if not leader:
                # Wait for the in-flight build, then retry the fast path.
                with build_lock:
                    pass
                continue
            try:
                hosted = self._build(name)
                with self._lock:
                    self._hosted[name] = hosted
                    self._hosted.move_to_end(name)
                    hosted.inflight += 1
                    evicted = self._evict_over_capacity()
                return_lease = _Lease(self, hosted)
            finally:
                with self._lock:
                    self._building.pop(name, None)
                build_lock.release()
            self._close_retired(evicted)
            return return_lease

    def _build(self, name: str) -> _Hosted:
        try:
            info = self.store.resolve(name)
        except StoreError as exc:
            raise QueryError(str(exc)) from exc
        synopsis = self.store.load_version(info)
        engine = QueryEngine(synopsis, dataset=name, **self._engine_kwargs)
        obs.incr("serve.router.build")
        log.info("hosting %s (sha256 %s…)", info.spec, info.sha256[:12])
        return _Hosted(name, info, engine)

    def _release(self, hosted: _Hosted) -> None:
        close_now = False
        with self._lock:
            hosted.inflight -= 1
            close_now = hosted.retired and hosted.inflight == 0
        if close_now:
            hosted.engine.close()

    def _evict_over_capacity(self) -> list[_Hosted]:
        """(lock held) Retire least-recently-used idle-or-not engines
        beyond capacity; actual close happens when leases drain."""
        evicted = []
        while len(self._hosted) > self.max_engines:
            name, hosted = self._hosted.popitem(last=False)
            hosted.retired = True
            evicted.append(hosted)
            obs.incr("serve.router.evict")
            log.info("evicting engine for %s (LRU)", hosted.info.spec)
        return evicted

    def _close_retired(self, retired: list[_Hosted]) -> None:
        for hosted in retired:
            with self._lock:
                close_now = hosted.inflight == 0
            if close_now:
                hosted.engine.close()

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def _watch_poll(self) -> None:
        """(watch mode) Poll the manifest, rate-limited by the interval."""
        now = monotonic()
        with self._lock:
            if (
                self.watch_interval > 0.0
                and self._last_poll_mono is not None
                and now - self._last_poll_mono < self.watch_interval
            ):
                return
        self.maybe_reload()

    def maybe_reload(self) -> dict | None:
        """Reload iff the store manifest changed since last look."""
        mtime = self.store.manifest_mtime()
        with self._lock:
            self._last_poll_mono = monotonic()
            self._last_poll_ts = time()
            if mtime == self._manifest_mtime:
                return None
        return self.reload()

    def reload(self) -> dict:
        """Re-resolve every hosted dataset; swap the changed ones.

        New engines are built *before* the swap, outside the router
        lock, so concurrent requests keep being served by the old
        version until the replacement is ready; retired engines close
        once their last in-flight lease drains.  Returns a summary.
        """
        mtime = self.store.manifest_mtime()
        with self._lock:
            hosted_now = list(self._hosted.items())
            self._manifest_mtime = mtime
            self._reloads += 1
        swapped, unchanged, dropped = [], [], []
        retired: list[_Hosted] = []
        for name, hosted in hosted_now:
            try:
                info = self.store.resolve(name)
            except StoreError:
                # Dataset vanished (pruned away): stop hosting it.
                with self._lock:
                    if self._hosted.get(name) is hosted:
                        del self._hosted[name]
                    hosted.retired = True
                retired.append(hosted)
                dropped.append(name)
                continue
            if info.sha256 == hosted.info.sha256 and (
                info.version == hosted.info.version
            ):
                unchanged.append(hosted.info.spec)
                continue
            replacement = _Hosted(
                name, info, QueryEngine(
                    self.store.load_version(info),
                    dataset=name,
                    **self._engine_kwargs,
                )
            )
            with self._lock:
                current = self._hosted.get(name)
                if current is not hosted:
                    # Lost a race with another reload; discard ours.
                    replacement.retired = True
                    retired.append(replacement)
                    continue
                self._hosted[name] = replacement
                hosted.retired = True
            retired.append(hosted)
            swapped.append({"from": hosted.info.spec, "to": info.spec})
            with self._lock:
                self._swaps += 1
                self._last_swap_ts = time()
            obs.incr("serve.router.swap")
            log.info("hot-swapped %s -> %s", hosted.info.spec, info.spec)
        self._close_retired(retired)
        return {
            "swapped": swapped,
            "unchanged": unchanged,
            "dropped": dropped,
        }

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def datasets(self) -> list[dict]:
        """Every published dataset, flagged with its hosted state."""
        with self._lock:
            hosted = {
                name: h.info.version for name, h in self._hosted.items()
            }
        out = []
        for entry in self.store.entries():
            default = entry.default
            out.append({
                "name": entry.name,
                "versions": [v.version for v in entry.versions],
                "pinned": entry.pinned,
                "serving": default.version,
                "hosted": hosted.get(entry.name),
                "epsilon": default.epsilon,
                "num_attributes": default.num_attributes,
                "design": default.design,
            })
        return out

    def stats(self) -> dict:
        with self._lock:
            hosted = {
                name: {
                    "version": h.info.version,
                    "sha256": h.info.sha256,
                    "inflight": h.inflight,
                }
                for name, h in self._hosted.items()
            }
            swaps, reloads = self._swaps, self._reloads
            last_poll, last_swap = self._last_poll_ts, self._last_swap_ts
        obs.set_gauge("serve.router.engines", len(hosted))
        return {
            "store": self.store.stats(),
            "hosted": hosted,
            "max_engines": self.max_engines,
            "watch": self.watch,
            "watch_interval": self.watch_interval,
            "swaps": swaps,
            "reloads": reloads,
            "last_poll": last_poll,
            "last_swap": last_swap,
        }

    def engine_stats(self, name: str) -> dict:
        """The per-engine ``/stats`` payload for one hosted dataset."""
        with self.lease(name) as engine:
            return engine.stats()

    def close(self) -> None:
        """Retire and close every engine (idempotent)."""
        with self._lock:
            self._closed = True
            hosted_all = list(self._hosted.values())
            self._hosted.clear()
            for hosted in hosted_all:
                hosted.retired = True
        for hosted in hosted_all:
            with self._lock:
                close_now = hosted.inflight == 0
            if close_now:
                hosted.engine.close()

    def __enter__(self) -> "EngineRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
