"""Bounded LRU answer cache with single-flight computation.

The serving engine keys this cache by ``(attrs, method)``.  Two
properties matter under concurrency:

* **LRU bound** — the cache never holds more than ``capacity``
  entries; the least recently *used* (read or written) entry is
  evicted first, so a hot working set of marginals stays resident
  while one-off queries age out.
* **single-flight** — when N threads ask for the same missing key at
  once, exactly one (the *leader*) runs the factory; the rest block on
  an event and share the leader's result (or its exception).  A
  reconstruction is never run twice concurrently for the same key.

The implementation is stdlib-only (``OrderedDict`` + ``threading``)
and value-agnostic; hit/miss/coalesced/eviction tallies are kept for
``/stats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import QueryTimeoutError


class _InFlight:
    """One in-progress computation: waiters park on ``event``."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class SingleFlightLRU:
    """Thread-safe bounded LRU with request coalescing."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._data: OrderedDict = OrderedDict()
        self._inflight: dict = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key):
        """The cached value, or None (also refreshes recency)."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                return self._data[key]
            return None

    def items(self) -> list:
        """Snapshot of ``(key, value)`` pairs (no recency effect)."""
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------
    def get_or_compute(self, key, factory, wait_timeout: float | None = None):
        """Return ``(value, from_cache)``, computing at most once per key.

        The leader thread runs ``factory()`` (outside the lock) and
        publishes the result; concurrent callers for the same key wait
        up to ``wait_timeout`` seconds (None = forever) and report
        ``from_cache=True``.  A factory exception is propagated to the
        leader *and* every waiter, and nothing is cached, so the next
        request retries.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key], True
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _InFlight()
                leader = True
                self.misses += 1
            else:
                leader = False
                self.coalesced += 1

        if not leader:
            if not flight.event.wait(wait_timeout):
                raise QueryTimeoutError(
                    f"timed out after {wait_timeout}s waiting for the "
                    f"in-flight computation of {key!r}"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value, True

        try:
            value = factory()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.value = value
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
            self._inflight.pop(key, None)
        flight.event.set()
        return value, False
