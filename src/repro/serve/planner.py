"""Query planning: which path answers a requested marginal.

A fitted synopsis can answer the marginal over an attribute set three
ways, in increasing cost order:

* **covered** — the set is contained in some view: project that view.
  Exact, no solver, microseconds.
* **derived** — the set is contained in a marginal the engine already
  reconstructed (and still holds in its answer cache): project the
  cached table.  Any view constraint on a subset of the target is
  implied by the cached parent's constraints, so the projection is
  feasible for the target's own constraint system; it agrees with a
  fresh solve up to solver tolerance whenever the parent's maximum
  entropy model factorises across the target (and is exactly the same
  table whenever the parent itself was covered).
* **solved** — run a reconstruction solver (the paper's Section 4.3
  max-entropy by default).

The planner only classifies; the :mod:`repro.serve.engine` executes
the plan and owns the cache the *derived* path reads from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DimensionError, QueryError
from repro.marginals.attrs import AttrSet
from repro.marginals.table import MarginalTable

#: planner paths, also used as ``/stats`` keys and obs counter suffixes
PATH_COVERED = "covered"
PATH_DERIVED = "derived"
PATH_SOLVED = "solved"
PATH_ERROR = "error"

PLANNER_PATHS = (PATH_COVERED, PATH_DERIVED, PATH_SOLVED, PATH_ERROR)


@dataclass(frozen=True)
class QueryPlan:
    """How one marginal request will be answered.

    Attributes
    ----------
    attrs:
        The normalised (sorted, de-duplicated is an error) target set.
    method:
        Solver used if the plan falls through to ``solved``.
    path:
        ``covered`` / ``derived`` / ``solved``.
    source:
        The attrs of the view (``covered``) or cached marginal
        (``derived``) the answer is projected from; None for
        ``solved``.
    """

    attrs: tuple[int, ...]
    method: str
    path: str
    source: tuple[int, ...] | None = None


class QueryPlanner:
    """Classifies attribute sets against the synopsis's views."""

    def __init__(self, views: list[MarginalTable], num_attributes: int):
        self._views = list(views)
        self._num_attributes = int(num_attributes)
        # One bitmask per view: the covered check is then a single
        # integer AND per view instead of a set.issubset, which is what
        # an uncovered (solved-path) query pays for every view.  Order
        # is preserved so the first match agrees with covering_view.
        self._view_masks = [
            (sum(1 << a for a in view.attrs), view.attrs)
            for view in self._views
        ]

    def validate(self, attrs) -> tuple[int, ...]:
        """Normalise ``attrs`` or raise :class:`QueryError`."""
        try:
            target = AttrSet(attrs)
        except (DimensionError, TypeError, ValueError) as exc:
            raise QueryError(f"bad attribute set {attrs!r}: {exc}") from exc
        if target and not (0 <= target[0] and target[-1] < self._num_attributes):
            raise QueryError(
                f"attribute set {target} out of range "
                f"0..{self._num_attributes - 1}"
            )
        return target

    def plan(
        self,
        attrs,
        method: str,
        cached_supersets: dict[tuple[int, ...], MarginalTable] | None = None,
    ) -> QueryPlan:
        """Plan the query, preferring covered > derived > solved.

        ``cached_supersets`` is a snapshot of the engine's completed
        reconstructions for ``method`` (attrs → table); the smallest
        superset wins, minimising projection cost.
        """
        target = self.validate(attrs)
        target_mask = 0
        for a in target:
            target_mask |= 1 << a
        for view_mask, view_attrs in self._view_masks:
            if target_mask & view_mask == target_mask:
                return QueryPlan(target, method, PATH_COVERED, view_attrs)
        if cached_supersets:
            target_set = set(target)
            best: tuple[int, ...] | None = None
            for cached_attrs in cached_supersets:
                if target_set.issubset(cached_attrs) and (
                    best is None or len(cached_attrs) < len(best)
                ):
                    best = cached_attrs
            if best is not None and best != target:
                return QueryPlan(target, method, PATH_DERIVED, best)
        return QueryPlan(target, method, PATH_SOLVED, None)
