"""``repro.serve`` — concurrent marginal query serving.

PriView's synopsis is fit once under ε-DP and then answers unboundedly
many k-way marginals as free post-processing.  This package turns that
artifact into a query-serving engine (see ``docs/SERVING.md``):

* :class:`QueryPlanner` classifies each request — *covered* (project a
  view), *derived* (project a cached reconstruction), or *solved*
  (run max-entropy / least-squares / LP);
* :class:`QueryEngine` executes plans behind a bounded LRU answer
  cache with single-flight coalescing and a thread pool for batches;
* :class:`MarginalServer` / :class:`QueryClient` speak a small JSON
  protocol over HTTP (``POST /v1/marginal``, ``POST /v1/batch``,
  ``GET /healthz``, ``GET /stats``).

The engine hosts *any* :class:`~repro.baselines.base.MarginalSource`
— a synopsis gets full covered/derived/solved planning; a fitted
baseline mechanism answers misses through its own ``marginal`` while
keeping the cache, batching and stats.

A whole :class:`~repro.store.SynopsisStore` is hosted by one server
through :class:`EngineRouter` — per-dataset engines built lazily with
LRU eviction, ``POST /v1/d/{name}/marginal``, and zero-drop hot swap
of newly published versions (``docs/STORE.md``).

Quick tour::

    from repro.serve import QueryEngine, serve_source, serve_store

    engine = QueryEngine(synopsis, attach=True)
    synopsis.marginal((0, 3, 5))        # planned + cached from now on

    with serve_source("synopsis.npz", port=0) as server:
        print(server.url)               # e.g. http://127.0.0.1:49152

    with serve_store("synopses/", port=0, watch=True) as server:
        QueryClient(server.url).marginal((0, 3), dataset="adult")

(``serve_synopsis`` remains as a deprecated alias of
:func:`serve_source`.)
"""

from repro.serve.cache import SingleFlightLRU
from repro.serve.client import QueryClient
from repro.serve.engine import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_WORKERS,
    QueryAnswer,
    QueryEngine,
)
from repro.serve.multiplex import DEFAULT_MAX_ENGINES, EngineRouter
from repro.serve.planner import (
    PATH_COVERED,
    PATH_DERIVED,
    PATH_ERROR,
    PATH_SOLVED,
    PLANNER_PATHS,
    QueryPlan,
    QueryPlanner,
)
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_REQUEST_TIMEOUT,
    MarginalServer,
    serve_source,
    serve_store,
    serve_synopsis,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_HOST",
    "DEFAULT_MAX_ENGINES",
    "DEFAULT_PORT",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_WORKERS",
    "EngineRouter",
    "MarginalServer",
    "PATH_COVERED",
    "PATH_DERIVED",
    "PATH_ERROR",
    "PATH_SOLVED",
    "PLANNER_PATHS",
    "QueryAnswer",
    "QueryClient",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "SingleFlightLRU",
    "serve_source",
    "serve_store",
    "serve_synopsis",
]
