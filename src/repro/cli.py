"""Command-line entry point: ``python -m repro``.

Examples::

    python -m repro list
    python -m repro run figure1 --scale quick
    python -m repro run figure1 --scale quick --trace
    python -m repro run figure1 --scale medium --packed --workers 4
    python -m repro run figure2 --scale paper --seed 3 --log-level info
    python -m repro run all --scale medium --trace-out results/trace.jsonl
    python -m repro serve --synopsis synopsis.npz --port 8177
    python -m repro query 0,3,5 1,9 --synopsis synopsis.npz
    python -m repro query 0,3,5 --url http://127.0.0.1:8177
    python -m repro store publish --store synopses/ adult synopsis.npz
    python -m repro store ls --store synopses/
    python -m repro store serve --store synopses/ --watch --watch-interval 0.5
    python -m repro store prune --store synopses/ --keep-last 24 --match "clicks*"
    python -m repro stream run clicks --store synopses/ --input events.jsonl \
        --num-attributes 32 --epsilon 1.0 --window-size 200000 --keep-last 24
    python -m repro stream status clicks --store synopses/
    python -m repro synth --synopsis synopsis.npz --out synthetic.csv --audit
    python -m repro synth --store synopses/ --dataset adult --out out.jsonl

``--trace`` prints, after each experiment's report, a nested
stage-timing tree, the pipeline counters, and a privacy-budget ledger
audit whose per-fit epsilon totals are checked against the configured
epsilon (see ``docs/OBSERVABILITY.md``).  ``run all`` keeps going past
a failing experiment, logs the failure, and exits non-zero at the end.

``serve`` exposes a saved synopsis over HTTP (``docs/SERVING.md``);
``query`` answers marginal queries against a saved synopsis file or a
running server; ``store`` manages a versioned synopsis registry —
publish, list, inspect, verify, garbage-collect, and serve every
published dataset from one process (``docs/STORE.md``).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

from repro import obs
from repro.core.reconstruction import RECONSTRUCTION_METHODS
from repro.experiments.config import SCALES
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs.exporters import JsonLinesExporter, render_summary
from repro.obs.log import LEVELS, configure_logging, get_logger


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of PriView (SIGMOD 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"]
    )
    run_parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="protocol size (default: $REPRO_SCALE or quick)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--chart", action="store_true",
        help="append a log-scale ASCII chart per figure",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="print a stage-timing tree and privacy-budget audit per experiment",
    )
    run_parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write spans and summaries as JSON lines to PATH",
    )
    run_parser.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="logging verbosity on stderr (default: warning)",
    )
    run_parser.add_argument(
        "--packed", action="store_true",
        help="extract marginals on the bit-sliced popcount kernels "
        "(bitwise-identical results, see docs/PERFORMANCE.md)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan each PriView fit over N workers (per-view seeded "
        "noise streams; synopsis independent of N)",
    )

    def telemetry_flags(p):
        p.add_argument(
            "--trace-sample-rate", type=float, default=0.0, metavar="RATE",
            help="head-sampling probability for requests without a "
            "traceparent header (0 = ids only, no span tagging)",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="append periodic JSON-lines metrics snapshots to PATH",
        )
        p.add_argument(
            "--metrics-interval", type=float, default=10.0, metavar="SECONDS",
            help="snapshot period for --metrics-out (default 10s)",
        )
        return p

    serve_parser = telemetry_flags(sub.add_parser(
        "serve", help="serve marginal queries from a saved synopsis over HTTP"
    ))
    serve_parser.add_argument(
        "--synopsis", required=True, metavar="PATH",
        help="synopsis .npz written by repro.core.serialization.save_synopsis",
    )
    serve_parser.add_argument("--host", default=None, help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=None, help="bind port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=None,
        help="answer-cache capacity (distinct marginals)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None, help="engine thread-pool width"
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (504 past it)",
    )
    serve_parser.add_argument(
        "--recon-method", "--method", dest="method", default=None,
        choices=RECONSTRUCTION_METHODS,
        help="default reconstruction method for uncovered queries "
        "(default: maxent; `residual` is the closed-form ReM solver)",
    )
    serve_parser.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="logging verbosity on stderr (default: warning)",
    )

    query_parser = sub.add_parser(
        "query", help="answer marginal queries (local synopsis or server)"
    )
    query_parser.add_argument(
        "attrs", nargs="+", metavar="ATTRS",
        help="comma-separated attribute indices, e.g. 0,3,5",
    )
    source = query_parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--synopsis", metavar="PATH", help="answer from a saved synopsis file"
    )
    source.add_argument(
        "--url", metavar="URL", help="answer via a running `repro serve`"
    )
    query_parser.add_argument(
        "--recon-method", "--method", dest="method", default=None,
        choices=RECONSTRUCTION_METHODS,
        help="reconstruction method for uncovered queries (default: maxent)",
    )
    query_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print raw protocol payloads instead of tables",
    )
    query_parser.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="logging verbosity on stderr (default: warning)",
    )

    store_parser = sub.add_parser(
        "store", help="manage a versioned synopsis registry"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    def store_dir(p):
        p.add_argument(
            "--store", required=True, metavar="DIR",
            help="store root directory (created by publish if missing)",
        )
        p.add_argument(
            "--log-level", choices=LEVELS, default=None,
            help="logging verbosity on stderr (default: warning)",
        )
        return p

    publish = store_dir(store_sub.add_parser(
        "publish", help="publish a saved synopsis as the next version"
    ))
    publish.add_argument("name", help="dataset name (no '@')")
    publish.add_argument(
        "synopsis", metavar="PATH",
        help="synopsis .npz written by save_synopsis",
    )
    publish.add_argument(
        "--created-at", default=None, metavar="ISO8601",
        help="caller-supplied creation timestamp (default: now, UTC)",
    )
    publish.add_argument(
        "--fit-seconds", type=float, default=None,
        help="fit wall-time to record in the version metadata",
    )

    ls = store_dir(store_sub.add_parser(
        "ls", help="list published datasets and versions"
    ))
    ls.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable listing with raw byte counts",
    )

    info = store_dir(store_sub.add_parser(
        "info", help="describe one dataset (or name@version)"
    ))
    info.add_argument("spec", help="name, name@latest or name@N")

    verify = store_dir(store_sub.add_parser(
        "verify", help="checksum every referenced artifact"
    ))
    verify.add_argument(
        "--quarantine", action="store_true",
        help="move corrupt artifacts to quarantine/ instead of only reporting",
    )

    gc = store_dir(store_sub.add_parser(
        "gc", help="sweep unreferenced objects and stale temp files"
    ))
    gc.add_argument(
        "--tmp-age", type=float, default=None, metavar="SECONDS",
        help="minimum age before a .tmp-* leftover is swept (default 3600)",
    )

    prune = store_dir(store_sub.add_parser(
        "prune", help="drop old versions (streaming retention)"
    ))
    prune.add_argument(
        "name", nargs="?", default=None,
        help="dataset to prune (omit when using --match)",
    )
    prune.add_argument(
        "--keep-last", type=int, required=True, metavar="N",
        help="newest versions kept per dataset (pinned always survive)",
    )
    prune.add_argument(
        "--match", default=None, metavar="GLOB",
        help="prune every dataset matching this glob instead of one name",
    )
    prune.add_argument(
        "--gc", action="store_true", dest="run_gc",
        help="sweep the dropped objects immediately after pruning",
    )

    store_serve = telemetry_flags(store_dir(store_sub.add_parser(
        "serve", help="serve every published dataset over HTTP"
    )))
    store_serve.add_argument("--host", default=None, help="bind address")
    store_serve.add_argument(
        "--port", type=int, default=None, help="bind port (0 = ephemeral)"
    )
    store_serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (504 past it)",
    )
    store_serve.add_argument(
        "--max-engines", type=int, default=None,
        help="datasets kept hot at once (LRU beyond this)",
    )
    store_serve.add_argument(
        "--watch", action="store_true",
        help="hot-swap newly published versions automatically "
        "(poll the manifest mtime; /v1/reload also works)",
    )
    store_serve.add_argument(
        "--watch-interval", type=float, default=0.0, metavar="SECONDS",
        help="minimum seconds between --watch manifest polls "
        "(0 = poll on every request; raise to bound stat() traffic "
        "at the cost of publish-visibility latency)",
    )
    store_serve.add_argument(
        "--cache-size", type=int, default=None,
        help="per-engine answer-cache capacity",
    )
    store_serve.add_argument(
        "--workers", type=int, default=None,
        help="per-engine thread-pool width",
    )
    store_serve.add_argument(
        "--recon-method", "--method", dest="method", default=None,
        choices=RECONSTRUCTION_METHODS,
        help="default reconstruction method for uncovered queries "
        "(default: maxent; `residual` is the closed-form ReM solver)",
    )

    stream_parser = sub.add_parser(
        "stream", help="continuous ingestion with windowed DP releases"
    )
    stream_sub = stream_parser.add_subparsers(
        dest="stream_command", required=True
    )

    stream_run = store_dir(stream_sub.add_parser(
        "run",
        help="ingest JSON-lines events, release one synopsis per window",
    ))
    stream_run.add_argument("dataset", help="store dataset name (no '@')")
    stream_run.add_argument(
        "--input", required=True, metavar="PATH",
        help="JSON-lines events ('-' for stdin); each line an item "
        "array or {\"items\": [...], \"ts\": ...}",
    )
    stream_run.add_argument(
        "--num-attributes", type=int, required=True, metavar="D",
        help="binary domain width (item ids outside range are ignored)",
    )
    stream_run.add_argument(
        "--epsilon", type=float, required=True,
        help="per-window epsilon; disjoint windows compose in "
        "parallel, so the whole stream costs this much",
    )
    window = stream_run.add_mutually_exclusive_group(required=True)
    window.add_argument(
        "--window-size", type=int, metavar="N",
        help="count-based tumbling windows of N events",
    )
    window.add_argument(
        "--window-seconds", type=float, metavar="W",
        help="event-time tumbling windows of W seconds (needs ts)",
    )
    stream_run.add_argument(
        "--lateness", type=float, default=0.0, metavar="SECONDS",
        help="watermark lag for --window-seconds; events older than "
        "the watermark's closed horizon are counted and dropped",
    )
    stream_run.add_argument(
        "--origin", type=float, default=0.0, metavar="T0",
        help="epoch the --window-seconds grid is anchored at",
    )
    stream_run.add_argument(
        "--keep-last", type=int, default=None, metavar="K",
        help="prune the dataset to its newest K versions after "
        "each publish (retention; pinned versions survive)",
    )
    stream_run.add_argument("--seed", type=int, default=0)
    stream_run.add_argument(
        "--view-width", type=int, default=None, metavar="W",
        help="covering-design view width (default 8, capped at D)",
    )
    stream_run.add_argument(
        "--audit", action="store_true",
        help="print the parallel-composition budget audit after the run",
    )

    stream_status = store_dir(stream_sub.add_parser(
        "status", help="list the released windows of a dataset"
    ))
    stream_status.add_argument("dataset")
    stream_status.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable window listing",
    )

    synth_parser = sub.add_parser(
        "synth",
        help="generate record-level synthetic data from a synopsis "
        "(pure post-processing: zero additional privacy budget)",
    )
    synth_source = synth_parser.add_mutually_exclusive_group(required=True)
    synth_source.add_argument(
        "--synopsis", metavar="PATH",
        help="synopsis .npz written by save_synopsis",
    )
    synth_source.add_argument(
        "--store", metavar="DIR", help="synthesize from a store dataset"
    )
    synth_parser.add_argument(
        "--dataset", metavar="SPEC", default=None,
        help="dataset spec for --store (name, name@latest or name@N)",
    )
    synth_parser.add_argument(
        "--records", type=int, default=None, metavar="N",
        help="population size (default: the synopsis's total count)",
    )
    synth_parser.add_argument(
        "--rounds", type=int, default=30,
        help="gradual-update rounds (default 30)",
    )
    synth_parser.add_argument("--seed", type=int, default=0)
    synth_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the population to PATH (.csv or .jsonl by extension)",
    )
    synth_parser.add_argument(
        "--codes", action="store_true",
        help="export raw integer codes instead of decoded values",
    )
    synth_parser.add_argument(
        "--audit", action="store_true",
        help="print the privacy-ledger audit proving zero spend",
    )
    synth_parser.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="logging verbosity on stderr (default: warning)",
    )

    obs_parser = sub.add_parser("obs", help="telemetry utilities")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    dump = obs_sub.add_parser(
        "dump", help="dump metrics as Prometheus exposition text"
    )
    dump_source = dump.add_mutually_exclusive_group(required=True)
    dump_source.add_argument(
        "--url", metavar="URL",
        help="scrape GET /metrics from a running server",
    )
    dump_source.add_argument(
        "--snapshots", metavar="PATH",
        help="render the newest snapshot in a --metrics-out JSON-lines file",
    )
    dump.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print parsed metric families as JSON instead of text",
    )
    dump.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="logging verbosity on stderr (default: warning)",
    )
    return parser


def _parse_attr_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part != "")
    except ValueError:
        raise SystemExit(
            f"error: bad attribute list {text!r} "
            "(expected comma-separated integers, e.g. 0,3,5)"
        )


def _human_bytes(n) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024


def _render_answer(payload: dict) -> str:
    source = payload.get("source")
    origin = f" from {tuple(source)}" if source else ""
    lines = [
        f"marginal {tuple(payload['attrs'])}  "
        f"path={payload['path']}{origin}  cached={payload['cached']}  "
        f"{payload['elapsed_ms']:.3f}ms  total={payload['total']:.6g}"
    ]
    counts = payload["counts"]
    k = payload["k"]
    for cell, count in enumerate(counts):
        bits = "".join(str((cell >> j) & 1) for j in range(k)) if k else "-"
        lines.append(f"  [{bits}] {count:14.4f}")
    return "\n".join(lines)


def _cmd_serve(args) -> int:
    from repro.serve import server as serve_server
    from repro.serve.server import serve_source

    log = get_logger("cli")
    engine_kwargs = {}
    if args.cache_size is not None:
        engine_kwargs["cache_size"] = args.cache_size
    if args.workers is not None:
        engine_kwargs["workers"] = args.workers
    if args.method is not None:
        engine_kwargs["default_method"] = args.method
    server = serve_source(
        args.synopsis,
        host=args.host if args.host is not None else serve_server.DEFAULT_HOST,
        port=args.port if args.port is not None else serve_server.DEFAULT_PORT,
        request_timeout=(
            args.timeout if args.timeout is not None
            else serve_server.DEFAULT_REQUEST_TIMEOUT
        ),
        trace_sample_rate=args.trace_sample_rate,
        metrics_out=args.metrics_out,
        metrics_interval_s=args.metrics_interval,
        **engine_kwargs,
    )
    stats = server.engine.stats()["synopsis"]
    print(
        f"serving {stats['design']} (d={stats['num_attributes']}, "
        f"epsilon={stats['epsilon']}, views={stats['views']}) on {server.url}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("interrupted; shutting down")
    finally:
        server.shutdown()
        paths = server.engine.stats()["paths"]
        print(f"served paths: {paths}")
    return 0


def _cmd_query(args) -> int:
    import json as _json

    queries = [_parse_attr_list(text) for text in args.attrs]
    if args.url:
        from repro.serve.client import QueryClient

        client = QueryClient(args.url)
        payloads = client.batch(queries, method=args.method)["answers"]
    else:
        from repro.core.serialization import load_synopsis
        from repro.serve.engine import QueryEngine
        from repro.serve.protocol import encode_answer

        with QueryEngine(load_synopsis(args.synopsis)) as engine:
            payloads = [
                encode_answer(answer)
                for answer in engine.answer_batch(queries, method=args.method)
            ]
    for payload in payloads:
        if args.as_json:
            print(_json.dumps(payload, sort_keys=True))
        else:
            print(_render_answer(payload))
    return 0


def _cmd_store(args) -> int:
    import json as _json

    from repro.store import SynopsisStore

    if args.store_command == "publish":
        store = SynopsisStore(args.store)
        info = store.publish(
            args.name,
            args.synopsis,
            created_at=args.created_at,
            fit_seconds=args.fit_seconds,
        )
        print(
            f"published {info.spec}  sha256={info.sha256[:12]}…  "
            f"{info.size_bytes} bytes  (epsilon={info.epsilon}, "
            f"d={info.num_attributes}, design={info.design})"
        )
        return 0

    store = SynopsisStore(args.store, create=False)
    if args.store_command == "ls":
        entries = store.entries()
        stats = store.stats()
        if args.as_json:
            from dataclasses import asdict

            payload = {
                "datasets": [
                    {
                        "name": entry.name,
                        "serving": entry.default.version,
                        "pinned": entry.pinned,
                        "versions": [asdict(v) for v in entry.versions],
                    }
                    for entry in entries
                ],
                "stats": stats,
            }
            print(_json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if not entries:
            print("(empty store)")
        for entry in entries:
            default = entry.default
            pin = f"  pinned@{entry.pinned}" if entry.pinned is not None else ""
            created = (
                f"  created {default.created_at}" if default.created_at else ""
            )
            print(
                f"{entry.name:24s} {len(entry.versions)} version(s), "
                f"serving v{default.version} "
                f"(epsilon={default.epsilon}, d={default.num_attributes}, "
                f"design={default.design}, "
                f"{_human_bytes(default.size_bytes)})"
                f"{created}{pin}"
            )
        print(
            f"total: {stats['datasets']} dataset(s), {stats['entries']} "
            f"version(s), {_human_bytes(stats['bytes'])}"
        )
        return 0
    if args.store_command == "info":
        print(_json.dumps(store.info(args.spec), indent=2, sort_keys=True))
        return 0
    if args.store_command == "verify":
        report = store.verify(quarantine=args.quarantine)
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["clean"] else 1
    if args.store_command == "gc":
        kwargs = {} if args.tmp_age is None else {"tmp_age_s": args.tmp_age}
        print(_json.dumps(store.gc(**kwargs), indent=2, sort_keys=True))
        return 0
    if args.store_command == "prune":
        if (args.name is None) == (args.match is None):
            raise SystemExit(
                "error: pass exactly one of a dataset name or --match GLOB"
            )
        if args.match is not None:
            dropped = store.prune_matching(
                args.match, keep_last=args.keep_last
            )
        else:
            gone = store.prune(args.name, keep_last=args.keep_last)
            dropped = {args.name: gone} if gone else {}
        for name, versions in sorted(dropped.items()):
            specs = ", ".join(f"v{v.version}" for v in versions)
            print(f"{name}: dropped {len(versions)} version(s) ({specs})")
        if not dropped:
            print("nothing to prune")
        if args.run_gc:
            report = store.gc(tmp_age_s=0.0)
            print(
                f"gc: removed {len(report['removed_objects'])} object(s), "
                f"reclaimed {_human_bytes(report['reclaimed_bytes'])}"
            )
        return 0

    # store serve
    from repro.serve import server as serve_server
    from repro.serve.server import serve_store

    log = get_logger("cli")
    engine_kwargs = {}
    if args.cache_size is not None:
        engine_kwargs["cache_size"] = args.cache_size
    if args.workers is not None:
        engine_kwargs["workers"] = args.workers
    if args.method is not None:
        engine_kwargs["default_method"] = args.method
    server = serve_store(
        store,
        host=args.host if args.host is not None else serve_server.DEFAULT_HOST,
        port=args.port if args.port is not None else serve_server.DEFAULT_PORT,
        request_timeout=(
            args.timeout if args.timeout is not None
            else serve_server.DEFAULT_REQUEST_TIMEOUT
        ),
        max_engines=args.max_engines,
        watch=args.watch,
        watch_interval=args.watch_interval,
        trace_sample_rate=args.trace_sample_rate,
        metrics_out=args.metrics_out,
        metrics_interval_s=args.metrics_interval,
        **engine_kwargs,
    )
    stats = store.stats()
    print(
        f"serving store {stats['root']} ({stats['datasets']} dataset(s), "
        f"{stats['entries']} version(s)) on {server.url}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("interrupted; shutting down")
    finally:
        server.shutdown()
    return 0


def _cmd_stream(args) -> int:
    import json as _json

    from repro.store import SynopsisStore

    if args.stream_command == "status":
        from repro.stream.query import list_windows

        store = SynopsisStore(args.store, create=False)
        windows = list_windows(store, args.dataset)
        if args.as_json:
            print(_json.dumps(
                {"dataset": args.dataset, "windows": windows},
                indent=2, sort_keys=True,
            ))
            return 0
        if not windows:
            print(f"{args.dataset}: no released windows")
            return 0
        for w in windows:
            print(
                f"window {w['index']:>4d}  v{w['version']:<4d} "
                f"[{w['start']:g}, {w['end']:g})  "
                f"{w.get('records', '?')} record(s)  "
                f"epsilon={w.get('epsilon')}"
            )
        print(f"total: {len(windows)} window(s)")
        return 0

    # stream run
    from repro.stream import (
        BudgetSchedule,
        CountWindowPolicy,
        TimeWindowPolicy,
        WindowScheduler,
        iter_events,
        read_jsonl_events,
    )

    if args.window_size is not None:
        policy = CountWindowPolicy(args.window_size)
    else:
        policy = TimeWindowPolicy(
            args.window_seconds, lateness=args.lateness, origin=args.origin
        )
    if args.input == "-":
        events = iter_events(
            _json.loads(line) for line in sys.stdin if line.strip()
        )
    else:
        events = read_jsonl_events(args.input)
    store = SynopsisStore(args.store)
    scheduler_kwargs = {}
    if args.view_width is not None:
        scheduler_kwargs["view_width"] = args.view_width
    scheduler = WindowScheduler(
        store,
        args.dataset,
        args.num_attributes,
        BudgetSchedule(args.epsilon),
        policy,
        keep_last=args.keep_last,
        seed=args.seed,
        **scheduler_kwargs,
    )

    def on_release(record):
        print(
            f"released window {record.index} as "
            f"{args.dataset}@{record.version}  "
            f"[{record.start:g}, {record.end:g})  "
            f"{record.records} record(s)  epsilon={record.epsilon}  "
            f"fit {record.fit_seconds:.3f}s"
        )

    with obs.session(trace=False) as sess:
        released = scheduler.run(events, on_release=on_release)
        sess.ledger.check()
        late = getattr(policy, "late_events", 0)
        print(
            f"{len(released)} window(s) released, "
            f"{sum(r.records for r in released)} record(s) ingested, "
            f"{late} late event(s) dropped"
        )
        print(
            f"budget audit: OK — parallel composition over "
            f"{len(released)} disjoint window(s) spent "
            f"{sess.ledger.total_spent():g} "
            f"(configured {scheduler.schedule.configured:g} per window)"
        )
        if args.audit:
            print(_json.dumps(sess.ledger.to_dicts(), indent=2))
    return 0


def _cmd_synth(args) -> int:
    if args.synopsis is not None:
        from repro.core.serialization import load_synopsis

        synopsis = load_synopsis(args.synopsis)
        origin = args.synopsis
    else:
        if args.dataset is None:
            raise SystemExit("error: --store needs --dataset SPEC")
        from repro.store import SynopsisStore

        store = SynopsisStore(args.store, create=False)
        synopsis = store.get(args.dataset)
        origin = f"{args.store}:{args.dataset}"

    from repro.synth import Synthesizer

    synthesizer = Synthesizer(rounds=args.rounds, seed=args.seed)
    with obs.session(trace=False) as sess:
        records = synthesizer.fit(synopsis, num_records=args.records)
        audit = sess.ledger.audit()
    meta = records.meta
    print(
        f"synthesized {records.num_records} record(s) over "
        f"{records.num_attributes} attribute(s) from {origin}  "
        f"(epsilon={meta.get('epsilon')}, rounds={meta.get('rounds')}, "
        f"mean L1 {meta.get('final_l1'):.6g})"
    )
    if args.audit:
        for row in audit:
            print(
                f"  ledger: {row.name}  configured={row.configured:g}  "
                f"spent={row.spent_max:g}  status={row.status}"
            )
        print("  synthesis spent zero additional epsilon (post-processing)")
    if args.out:
        out = args.out
        if out.endswith(".jsonl"):
            path = records.to_jsonl(out, decode=not args.codes)
        else:
            path = records.to_csv(out, decode=not args.codes)
        print(f"wrote {path}")
    return 0


def _cmd_obs(args) -> int:
    import json as _json

    from repro.obs.prometheus import parse_prometheus, render_prometheus

    if args.url:
        from repro.serve.client import QueryClient

        text = QueryClient(args.url).metrics()
    else:
        from repro.obs.exporters import read_metrics_snapshots

        snapshots = read_metrics_snapshots(args.snapshots)
        if not snapshots:
            print(f"no metrics snapshots in {args.snapshots}", file=sys.stderr)
            return 1
        text = render_prometheus(snapshots[-1])
    if args.as_json:
        families = parse_prometheus(text)
        payload = {
            name: {
                "type": family["type"],
                "samples": [
                    {"name": n, "labels": labels, "value": value}
                    for n, labels, value in family["samples"]
                ],
            }
            for name, family in families.items()
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text, end="")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    configure_logging(args.log_level)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "obs":
        return _cmd_obs(args)
    log = get_logger("cli")
    kernel_defaults = {}
    if args.workers is not None:
        kernel_defaults["workers"] = args.workers
    if args.packed:
        kernel_defaults["packed"] = True
    if kernel_defaults:
        from repro.kernels import set_fit_defaults

        set_fit_defaults(**kernel_defaults)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    run_all = args.experiment == "all"
    tracing = args.trace or args.trace_out is not None
    jsonl = JsonLinesExporter(args.trace_out) if args.trace_out else None

    failures: list[str] = []
    for experiment_id in targets:
        # One observability session per experiment keeps the trace trees
        # and budget scopes attributable to a single report.
        context = (
            obs.session(exporters=[jsonl] if jsonl else [])
            if tracing
            else nullcontext(None)
        )
        try:
            with context as sess:
                report = run_experiment(
                    experiment_id,
                    scale=args.scale,
                    seed=args.seed,
                    chart=args.chart,
                )
        except Exception:
            if not run_all:
                raise
            log.exception("experiment %s failed; continuing with the rest", experiment_id)
            failures.append(experiment_id)
            continue
        print(report)
        if sess is not None and args.trace:
            print()
            print(render_summary(sess))
        print()

    if failures:
        log.error(
            "%d of %d experiments failed: %s",
            len(failures), len(targets), ", ".join(failures),
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
