"""Command-line entry point: ``python -m repro``.

Examples::

    python -m repro list
    python -m repro run figure1 --scale quick
    python -m repro run figure2 --scale paper --seed 3
    python -m repro run all --scale medium
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import SCALES
from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of PriView (SIGMOD 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"]
    )
    run_parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="protocol size (default: $REPRO_SCALE or quick)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--chart", action="store_true",
        help="append a log-scale ASCII chart per figure",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        print(
            run_experiment(
                experiment_id,
                scale=args.scale,
                seed=args.seed,
                chart=args.chart,
            )
        )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
