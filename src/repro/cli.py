"""Command-line entry point: ``python -m repro``.

Examples::

    python -m repro list
    python -m repro run figure1 --scale quick
    python -m repro run figure1 --scale quick --trace
    python -m repro run figure2 --scale paper --seed 3 --log-level info
    python -m repro run all --scale medium --trace-out results/trace.jsonl

``--trace`` prints, after each experiment's report, a nested
stage-timing tree, the pipeline counters, and a privacy-budget ledger
audit whose per-fit epsilon totals are checked against the configured
epsilon (see ``docs/OBSERVABILITY.md``).  ``run all`` keeps going past
a failing experiment, logs the failure, and exits non-zero at the end.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

from repro import obs
from repro.experiments.config import SCALES
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs.exporters import JsonLinesExporter, render_summary
from repro.obs.log import LEVELS, configure_logging, get_logger


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of PriView (SIGMOD 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"]
    )
    run_parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="protocol size (default: $REPRO_SCALE or quick)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--chart", action="store_true",
        help="append a log-scale ASCII chart per figure",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="print a stage-timing tree and privacy-budget audit per experiment",
    )
    run_parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write spans and summaries as JSON lines to PATH",
    )
    run_parser.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="logging verbosity on stderr (default: warning)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    configure_logging(args.log_level)
    log = get_logger("cli")
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    run_all = args.experiment == "all"
    tracing = args.trace or args.trace_out is not None
    jsonl = JsonLinesExporter(args.trace_out) if args.trace_out else None

    failures: list[str] = []
    for experiment_id in targets:
        # One observability session per experiment keeps the trace trees
        # and budget scopes attributable to a single report.
        context = (
            obs.session(exporters=[jsonl] if jsonl else [])
            if tracing
            else nullcontext(None)
        )
        try:
            with context as sess:
                report = run_experiment(
                    experiment_id,
                    scale=args.scale,
                    seed=args.seed,
                    chart=args.chart,
                )
        except Exception:
            if not run_all:
                raise
            log.exception("experiment %s failed; continuing with the rest", experiment_id)
            failures.append(experiment_id)
            continue
        print(report)
        if sess is not None and args.trace:
            print()
            print(render_summary(sess))
        print()

    if failures:
        log.error(
            "%d of %d experiments failed: %s",
            len(failures), len(targets), ", ".join(failures),
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
