"""Randomised greedy construction of covering designs.

Blocks are grown one point at a time, each step adding the point that
covers the most still-uncovered ``t``-subsets together with the points
already in the block (ties broken randomly).  This classic heuristic
lands within a few blocks of the best known sizes for the parameter
ranges the paper uses; :mod:`repro.covering.local_search` closes the
rest of the gap.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro import obs
from repro.covering.design import CoveringDesign
from repro.exceptions import DesignError


def _all_tsets(num_points: int, t: int) -> set[tuple[int, ...]]:
    return set(itertools.combinations(range(num_points), t))


def greedy_cover(
    num_points: int,
    block_size: int,
    strength: int,
    rng: np.random.Generator | None = None,
) -> CoveringDesign:
    """Build a covering design greedily.

    Parameters mirror :class:`CoveringDesign`.  The result is always a
    valid covering; its block count depends on the random tie-breaking.
    """
    if num_points < block_size:
        raise DesignError(
            f"need at least block_size={block_size} points, got {num_points}"
        )
    rng = rng or np.random.default_rng()
    uncovered = _all_tsets(num_points, strength)
    blocks: list[tuple[int, ...]] = []

    with obs.span("covering.greedy"):
        while uncovered:
            block = _grow_block(num_points, block_size, strength, uncovered, rng)
            blocks.append(block)
            uncovered.difference_update(itertools.combinations(block, strength))

    obs.incr("covering.greedy_blocks", len(blocks))
    design = CoveringDesign(num_points, block_size, strength, tuple(blocks))
    return _cover_isolated_points(design)


def _grow_block(
    num_points: int,
    block_size: int,
    strength: int,
    uncovered: set[tuple[int, ...]],
    rng: np.random.Generator,
) -> tuple[int, ...]:
    """Grow one block, maximising newly covered ``t``-subsets per step."""
    seed = list(next(iter(uncovered)))
    rng.shuffle(seed)
    block = set(seed)
    while len(block) < block_size:
        gains = np.zeros(num_points)
        in_block = sorted(block)
        # A candidate point p covers the uncovered t-sets made of p and
        # t-1 points already in the block.
        for sub in itertools.combinations(in_block, strength - 1):
            for p in range(num_points):
                if p in block:
                    continue
                ts = tuple(sorted(sub + (p,)))
                if ts in uncovered:
                    gains[p] += 1
        candidates = [p for p in range(num_points) if p not in block]
        best_gain = max(gains[p] for p in candidates)
        best = [p for p in candidates if gains[p] == best_gain]
        block.add(int(rng.choice(best)))
    return tuple(sorted(block))


def _cover_isolated_points(design: CoveringDesign) -> CoveringDesign:
    """Ensure every point appears (only relevant if t-sets ran out early)."""
    covered = {p for block in design.blocks for p in block}
    missing = sorted(set(range(design.num_points)) - covered)
    if not missing:
        return design
    blocks = list(design.blocks)
    fill = [p for p in range(design.num_points) if p not in missing]
    while missing:
        chunk = missing[: design.block_size]
        missing = missing[design.block_size :]
        pad = [p for p in fill if p not in chunk][: design.block_size - len(chunk)]
        blocks.append(tuple(sorted(chunk + pad)))
    return CoveringDesign(
        design.num_points, design.block_size, design.strength, tuple(blocks)
    )
