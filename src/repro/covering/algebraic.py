"""Exact covering-design constructions from finite geometry.

Two constructions:

* :func:`affine_plane_design` — the lines of the affine plane AG(2, q)
  form a ``(q**2 + q, q, 2)``-covering (in fact a resolvable 2-design)
  of ``q**2`` points.  With q=8 this is the paper's C_2(8, 72) for the
  d=64 MCHAIN experiments, and it is optimal (meets the Schönheim
  bound).
* :func:`grid_mols_design` — for ``d = g * l`` with ``g`` a prime power
  dividing ``l``: arrange the points in ``g`` groups of ``l``; one
  block per group covers intra-group pairs, and ``g**2`` "transversal"
  blocks built from ``g`` pairwise orthogonal resolutions of AG(2, g)
  cover every cross-group pair exactly once.  With g=4, l=8 this yields
  the paper's optimal C_2(8, 20) for d=32.

Both need arithmetic in GF(q); a small table-based field implementation
is included for the prime powers these experiments use.
"""

from __future__ import annotations

import functools

from repro.covering.design import CoveringDesign
from repro.exceptions import DesignError

#: Irreducible polynomials for the prime powers we support, stored as
#: (prime, [a_0, a_1, ..., a_{n-1}]) where the monic irreducible is
#: x^n + a_{n-1} x^{n-1} + ... + a_1 x + a_0 over GF(prime).
_IRREDUCIBLE = {
    4: (2, [1, 1]),  # x^2 + x + 1 over GF(2)
    8: (2, [1, 1, 0]),  # x^3 + x + 1 over GF(2)
    9: (3, [1, 0]),  # x^2 + 1 over GF(3)
    16: (2, [1, 1, 0, 0]),  # x^4 + x + 1 over GF(2)
    25: (5, [2, 0]),  # x^2 + 2 over GF(5)
    27: (3, [1, 2, 0]),  # x^3 + 2x + 1 over GF(3)
    32: (2, [1, 0, 1, 0, 0]),  # x^5 + x^2 + 1 over GF(2)
    49: (7, [1, 0]),  # x^2 + 1 over GF(7)
}


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


class GaloisField:
    """GF(q) for prime q (modular) or the prime powers in _IRREDUCIBLE.

    Elements are integers ``0..q-1``; for prime powers, the integer's
    base-``p`` digits are the polynomial coefficients.
    """

    def __init__(self, order: int):
        if _is_prime(order):
            self.order = order
            self._prime = order
            self._mul = None
        elif order in _IRREDUCIBLE:
            self.order = order
            self._prime, self._poly = _IRREDUCIBLE[order]
            self._mul = self._build_mul_table()
        else:
            raise DesignError(f"GF({order}) not supported")

    # -- representation helpers ---------------------------------------
    def _digits(self, x: int) -> list[int]:
        p = self._prime
        out = []
        while x:
            out.append(x % p)
            x //= p
        return out

    def _undigits(self, coeffs: list[int]) -> int:
        p = self._prime
        out = 0
        for c in reversed(coeffs):
            out = out * p + (c % p)
        return out

    def _poly_mul_mod(self, a: int, b: int) -> int:
        p = self._prime
        da, db = self._digits(a), self._digits(b)
        prod = [0] * (len(da) + len(db))
        for i, ca in enumerate(da):
            for j, cb in enumerate(db):
                prod[i + j] = (prod[i + j] + ca * cb) % p
        degree = len(self._poly)  # degree of the field extension
        # reduce: x^degree == -(reduction poly)
        reduction = [(-c) % p for c in self._poly]
        for i in range(len(prod) - 1, degree - 1, -1):
            coeff = prod[i]
            if coeff:
                prod[i] = 0
                for j, rc in enumerate(reduction):
                    prod[i - degree + j] = (prod[i - degree + j] + coeff * rc) % p
        return self._undigits(prod[:degree])

    def _build_mul_table(self) -> list[list[int]]:
        q = self.order
        return [[self._poly_mul_mod(a, b) for b in range(q)] for a in range(q)]

    # -- field operations ----------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition."""
        if self._mul is None:
            return (a + b) % self.order
        p = self._prime
        da, db = self._digits(a), self._digits(b)
        n = max(len(da), len(db))
        da += [0] * (n - len(da))
        db += [0] * (n - len(db))
        return self._undigits([(x + y) % p for x, y in zip(da, db)])

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if self._mul is None:
            return (a * b) % self.order
        return self._mul[a][b]


@functools.lru_cache(maxsize=16)
def _field(order: int) -> GaloisField:
    return GaloisField(order)


def affine_plane_design(q: int) -> CoveringDesign:
    """The AG(2, q) line set as a ``(q**2, q, 2)`` covering design.

    Points are ``x * q + y`` for ``(x, y)`` in GF(q)^2.  Lines: for each
    slope ``m`` and intercept ``b`` the line ``{(x, m*x + b)}``, plus
    the ``q`` vertical lines — ``q**2 + q`` blocks, each pair of points
    on exactly one line.
    """
    gf = _field(q)
    blocks: list[tuple[int, ...]] = []
    for m in range(q):
        for b in range(q):
            blocks.append(
                tuple(sorted(x * q + gf.add(gf.mul(m, x), b) for x in range(q)))
            )
    for c in range(q):
        blocks.append(tuple(sorted(c * q + y for y in range(q))))
    return CoveringDesign(q * q, q, 2, tuple(blocks))


def grid_mols_design(block_size: int, groups: int) -> CoveringDesign:
    """Optimal-size t=2 covering of ``groups * block_size`` points.

    Requires ``groups`` to divide ``block_size`` and to be a prime
    power.  Produces ``groups**2 + groups`` blocks of ``block_size``
    points: the ``groups`` whole groups, plus transversal blocks taking
    one chunk of ``block_size // groups`` points per group, the chunk
    choices given by ``groups`` pairwise orthogonal affine resolutions
    ``f_i(u, v) = u + lambda_i * v`` over GF(groups).
    """
    g = groups
    if block_size % g != 0:
        raise DesignError(f"groups={g} must divide block_size={block_size}")
    gf = _field(g)
    chunk = block_size // g
    num_points = g * block_size

    def point(group: int, chunk_idx: int, offset: int) -> int:
        return group * block_size + chunk_idx * chunk + offset

    blocks: list[tuple[int, ...]] = []
    # Whole-group blocks cover intra-group pairs.
    for i in range(g):
        blocks.append(tuple(range(i * block_size, (i + 1) * block_size)))
    # Transversal blocks cover all cross-group pairs: block (u, v) takes
    # chunk f_i(u, v) = u + lambda_i * v from group i, with lambda_i the
    # i-th field element; distinct lambdas make (f_i, f_j) bijective.
    for u in range(g):
        for v in range(g):
            members: list[int] = []
            for i in range(g):
                chunk_idx = gf.add(u, gf.mul(i, v))
                members.extend(point(i, chunk_idx, r) for r in range(chunk))
            blocks.append(tuple(sorted(members)))
    return CoveringDesign(num_points, block_size, 2, tuple(blocks))
