"""Covering designs: the view-selection substrate (paper Definition 3).

A ``(w, l, t)``-covering design over ``d`` points is a family of ``w``
size-``l`` blocks such that every ``t``-subset of points lies inside at
least one block.  The paper looks designs up in the La Jolla repository;
this package *constructs* them instead:

* :mod:`repro.covering.greedy` — randomised greedy construction;
* :mod:`repro.covering.local_search` — simulated-annealing search for a
  design with a prescribed number of blocks;
* :mod:`repro.covering.algebraic` — exact constructions from affine
  planes / mutually orthogonal Latin squares (these give the paper's
  C_2(8, 20) for d=32 and C_2(8, 72) for d=64 exactly);
* :mod:`repro.covering.repository` — bundled designs precomputed by the
  above constructors, so experiments never pay construction time.
"""

from repro.covering.design import CoveringDesign
from repro.covering.bounds import schonheim_bound
from repro.covering.greedy import greedy_cover
from repro.covering.local_search import anneal_cover
from repro.covering.algebraic import affine_plane_design, grid_mols_design
from repro.covering.repository import best_design, construct_design

__all__ = [
    "CoveringDesign",
    "schonheim_bound",
    "greedy_cover",
    "anneal_cover",
    "affine_plane_design",
    "grid_mols_design",
    "best_design",
    "construct_design",
]
