"""Simulated-annealing search for a covering with a prescribed size.

Given a target block count ``w``, the search starts from random (or
provided) blocks and performs point-swap moves, accepting moves by the
Metropolis rule on the number of uncovered ``t``-subsets.  Reaching
zero uncovered subsets yields a valid ``(w, l, t)`` covering design.
This is the workhorse that closes the gap between the greedy block
count and the best known covering numbers.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.covering.design import CoveringDesign
from repro.exceptions import DesignError


def anneal_cover(
    num_points: int,
    block_size: int,
    strength: int,
    num_blocks: int,
    rng: np.random.Generator | None = None,
    max_steps: int = 200_000,
    initial: CoveringDesign | None = None,
    restarts: int = 3,
) -> CoveringDesign | None:
    """Search for a covering design with exactly ``num_blocks`` blocks.

    Returns the design on success and ``None`` when every restart
    exhausts ``max_steps`` with ``t``-subsets still uncovered.
    """
    rng = rng or np.random.default_rng()
    for _ in range(max(1, restarts)):
        design = _single_run(
            num_points, block_size, strength, num_blocks, rng, max_steps, initial
        )
        if design is not None:
            return design
        initial = None  # later restarts start fresh
    return None


def shrink_design(
    design: CoveringDesign,
    rng: np.random.Generator | None = None,
    max_steps: int = 150_000,
    time_budget: float | None = None,
    max_failures: int = 2,
) -> CoveringDesign:
    """Repeatedly drop the most redundant block and repair by annealing.

    Much stronger than cold-start annealing for t >= 3: the repair
    starts from a design missing only the dropped block's uniquely
    covered ``t``-subsets, so the search begins steps — not mountains —
    away from feasibility.  Stops after ``max_failures`` consecutive
    failed repairs or when the optional ``time_budget`` (seconds) runs
    out.
    """
    import time as _time

    rng = rng or np.random.default_rng()
    start = _time.time()
    failures = 0
    while failures < max_failures and design.num_blocks > 1:
        if time_budget is not None and _time.time() - start > time_budget:
            break
        drop = _most_redundant_block(design, rng)
        seed_blocks = tuple(
            b for i, b in enumerate(design.blocks) if i != drop
        )
        initial = CoveringDesign(
            design.num_points,
            design.block_size,
            design.strength,
            seed_blocks,
        )
        repaired = anneal_cover(
            design.num_points,
            design.block_size,
            design.strength,
            design.num_blocks - 1,
            rng=rng,
            max_steps=max_steps,
            initial=initial,
            restarts=1,
        )
        if repaired is None:
            failures += 1
            continue
        failures = 0
        design = repaired
    return design


def _most_redundant_block(
    design: CoveringDesign, rng: np.random.Generator | None = None
) -> int:
    """A block covering few uniquely covered t-sets (random among the
    most redundant handful, so failed repairs retry a different drop)."""
    counts: dict[tuple[int, ...], int] = {}
    per_block: list[list[tuple[int, ...]]] = []
    for block in design.blocks:
        tsets = list(itertools.combinations(block, design.strength))
        per_block.append(tsets)
        for ts in tsets:
            counts[ts] = counts.get(ts, 0) + 1
    unique = np.array(
        [sum(1 for ts in tsets if counts[ts] == 1) for tsets in per_block]
    )
    if rng is None:
        return int(np.argmin(unique))
    shortlist = np.argsort(unique)[: min(5, unique.size)]
    return int(rng.choice(shortlist))


def _random_blocks(
    num_points: int, block_size: int, num_blocks: int, rng: np.random.Generator
) -> list[list[int]]:
    return [
        sorted(rng.choice(num_points, size=block_size, replace=False).tolist())
        for _ in range(num_blocks)
    ]


def _coverage_counts(
    blocks: list[list[int]], strength: int, tset_index: dict[tuple[int, ...], int]
) -> np.ndarray:
    counts = np.zeros(len(tset_index), dtype=np.int64)
    for block in blocks:
        for ts in itertools.combinations(sorted(block), strength):
            counts[tset_index[ts]] += 1
    return counts


def _single_run(
    num_points: int,
    block_size: int,
    strength: int,
    num_blocks: int,
    rng: np.random.Generator,
    max_steps: int,
    initial: CoveringDesign | None,
) -> CoveringDesign | None:
    if num_points < block_size:
        raise DesignError("num_points < block_size")
    all_tsets = list(itertools.combinations(range(num_points), strength))
    tset_index = {ts: i for i, ts in enumerate(all_tsets)}

    if initial is not None and initial.num_blocks == num_blocks:
        blocks = [list(b) for b in initial.blocks]
    else:
        blocks = _random_blocks(num_points, block_size, num_blocks, rng)
    counts = _coverage_counts(blocks, strength, tset_index)
    uncovered_set = {int(i) for i in np.flatnonzero(counts == 0)}
    uncovered = len(uncovered_set)

    temperature = max(1.0, uncovered / 10.0)
    cooling = math.exp(math.log(0.01 / temperature) / max_steps)
    #: fraction of moves that directly target an uncovered t-set
    #: (WalkSAT-style focusing; uniform moves alone rarely propose the
    #: one swap that covers a specific missing t-set)
    focus_probability = 0.5

    uncovered_list: list[int] = list(uncovered_set)
    uncovered_dirty = False
    for _ in range(max_steps):
        if uncovered == 0:
            break
        if rng.random() < focus_probability:
            if uncovered_dirty:
                uncovered_list = list(uncovered_set)
                uncovered_dirty = False
            move = _focused_move(
                blocks, uncovered_list, all_tsets, rng
            )
            if move is None:
                continue
            bi, pos, new_point = move
            block = blocks[bi]
        else:
            bi = int(rng.integers(num_blocks))
            block = blocks[bi]
            pos = int(rng.integers(block_size))
            new_point = int(rng.integers(num_points))
        old_point = block[pos]
        if new_point in block:
            continue

        delta, touched = _swap_delta(
            block, pos, new_point, strength, counts, tset_index
        )
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            for idx, change in touched:
                before = counts[idx]
                counts[idx] = before + change
                if before == 0 and change > 0:
                    uncovered_set.discard(idx)
                    uncovered_dirty = True
                elif before > 0 and counts[idx] == 0:
                    uncovered_set.add(idx)
                    uncovered_dirty = True
            block[pos] = new_point
            block.sort()
            uncovered += delta
        temperature *= cooling

    if uncovered != 0:
        return None
    design = CoveringDesign(
        num_points,
        block_size,
        strength,
        tuple(tuple(sorted(b)) for b in blocks),
    )
    design.validate()
    return design


def _focused_move(
    blocks: list[list[int]],
    uncovered_list: list[int],
    all_tsets: list[tuple[int, ...]],
    rng: np.random.Generator,
) -> tuple[int, int, int] | None:
    """Propose a swap that covers one randomly chosen uncovered t-set.

    Picks an uncovered t-set, then a block containing all but one of
    its points, and proposes replacing one of the block's other points
    with the missing one.  Falls back to a block containing fewer of
    the t-set's points when no (t-1)-containing block exists.
    """
    if not uncovered_list:
        return None
    target = all_tsets[uncovered_list[int(rng.integers(len(uncovered_list)))]]
    target_set = set(target)
    overlaps = [len(target_set.intersection(b)) for b in blocks]
    best = max(overlaps)
    candidates = [i for i, o in enumerate(overlaps) if o == best]
    bi = int(rng.choice(candidates))
    block = blocks[bi]
    missing = [p for p in target if p not in block]
    replaceable = [j for j, p in enumerate(block) if p not in target_set]
    if not missing or not replaceable:
        return None
    return bi, int(rng.choice(replaceable)), int(rng.choice(missing))


def _swap_delta(
    block: list[int],
    pos: int,
    new_point: int,
    strength: int,
    counts: np.ndarray,
    tset_index: dict[tuple[int, ...], int],
) -> tuple[int, list[tuple[int, int]]]:
    """Change in uncovered count if ``block[pos]`` becomes ``new_point``.

    Returns the delta and the (tset index, count change) updates to
    apply if the move is accepted.
    """
    old_point = block[pos]
    others = [p for i, p in enumerate(block) if i != pos]
    delta = 0
    touched: list[tuple[int, int]] = []
    for sub in itertools.combinations(others, strength - 1):
        old_ts = tuple(sorted(sub + (old_point,)))
        idx_old = tset_index[old_ts]
        if counts[idx_old] == 1:
            delta += 1  # becomes uncovered
        touched.append((idx_old, -1))
        new_ts = tuple(sorted(sub + (new_point,)))
        idx_new = tset_index[new_ts]
        if counts[idx_new] == 0:
            delta -= 1  # becomes covered
        touched.append((idx_new, +1))
    # Handle a t-set counted twice (possible only when strength >= 2 and
    # the same index appears in both lists); recompute exactly then.
    if strength >= 2:
        seen: dict[int, int] = {}
        for idx, change in touched:
            seen[idx] = seen.get(idx, 0) + change
        delta = 0
        for idx, change in seen.items():
            before = counts[idx]
            after = before + change
            if before == 0 and after > 0:
                delta -= 1
            elif before > 0 and after == 0:
                delta += 1
        touched = list(seen.items())
    return delta, touched
