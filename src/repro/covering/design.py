"""The :class:`CoveringDesign` container and its validation logic."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.exceptions import DesignError


def _tsets_of_block(block: tuple[int, ...], t: int):
    return itertools.combinations(sorted(block), t)


@dataclass
class CoveringDesign:
    """A ``(w, l, t)``-covering design over ``range(num_points)``.

    Attributes
    ----------
    num_points:
        Size ``d`` of the ground set; points are ``0..d-1``.
    block_size:
        ``l``, the number of points per block (the paper's view width).
    strength:
        ``t``; every ``t``-subset of points must be inside some block.
    blocks:
        Tuple of sorted point-tuples.  Blocks may have fewer than
        ``block_size`` points only if ``num_points < block_size``.
    """

    num_points: int
    block_size: int
    strength: int
    blocks: tuple[tuple[int, ...], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.strength < 1:
            raise DesignError(f"strength must be >= 1, got {self.strength}")
        if self.block_size < self.strength:
            raise DesignError(
                f"block_size {self.block_size} < strength {self.strength}"
            )
        norm = []
        for block in self.blocks:
            b = tuple(sorted(int(p) for p in block))
            if len(set(b)) != len(b):
                raise DesignError(f"block {block} has duplicate points")
            if b and (b[0] < 0 or b[-1] >= self.num_points):
                raise DesignError(f"block {block} out of range 0..{self.num_points-1}")
            expected = min(self.block_size, self.num_points)
            if len(b) != expected:
                raise DesignError(
                    f"block {block} has {len(b)} points, expected {expected}"
                )
            norm.append(b)
        self.blocks = tuple(norm)

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """``w``, the number of blocks (= number of PriView views)."""
        return len(self.blocks)

    @property
    def notation(self) -> str:
        """The paper's ``C_t(l, w)`` name for this design."""
        return f"C_{self.strength}({self.block_size},{self.num_blocks})"

    # ------------------------------------------------------------------
    def uncovered_tsets(self) -> list[tuple[int, ...]]:
        """All ``t``-subsets of the ground set not inside any block."""
        covered: set[tuple[int, ...]] = set()
        for block in self.blocks:
            covered.update(_tsets_of_block(block, self.strength))
        return [
            ts
            for ts in itertools.combinations(range(self.num_points), self.strength)
            if ts not in covered
        ]

    def is_covering(self) -> bool:
        """True iff every ``t``-subset is covered."""
        return not self.uncovered_tsets()

    def validate(self) -> None:
        """Raise :class:`DesignError` unless this is a valid covering."""
        missing = self.uncovered_tsets()
        if missing:
            raise DesignError(
                f"{self.notation} over {self.num_points} points misses "
                f"{len(missing)} {self.strength}-sets, e.g. {missing[:3]}"
            )
        covered_points = {p for block in self.blocks for p in block}
        if covered_points != set(range(self.num_points)):
            raise DesignError("design does not cover every point")

    # ------------------------------------------------------------------
    def coverage_multiplicity(self) -> dict[tuple[int, ...], int]:
        """How many blocks cover each ``t``-subset (the averaging gain)."""
        mult: dict[tuple[int, ...], int] = {
            ts: 0
            for ts in itertools.combinations(range(self.num_points), self.strength)
        }
        for block in self.blocks:
            for ts in _tsets_of_block(block, self.strength):
                mult[ts] += 1
        return mult

    def covers(self, attrs) -> bool:
        """True when some block contains every attribute in ``attrs``."""
        target = set(attrs)
        return any(target.issubset(block) for block in self.blocks)

    def drop_redundant(self) -> "CoveringDesign":
        """Remove blocks whose removal keeps the design covering."""
        blocks = list(self.blocks)
        changed = True
        while changed:
            changed = False
            for i in range(len(blocks)):
                candidate = blocks[:i] + blocks[i + 1 :]
                trial = CoveringDesign(
                    self.num_points, self.block_size, self.strength, tuple(candidate)
                )
                if trial.is_covering() and {
                    p for b in candidate for p in b
                } == set(range(self.num_points)):
                    blocks = candidate
                    changed = True
                    break
        return CoveringDesign(
            self.num_points, self.block_size, self.strength, tuple(blocks)
        )

    # ------------------------------------------------------------------
    # Serialisation (used by the bundled repository)
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Serialise: header line then one block per line."""
        lines = [f"{self.num_points} {self.block_size} {self.strength}"]
        lines += [" ".join(str(p) for p in block) for block in self.blocks]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "CoveringDesign":
        """Parse the :meth:`to_text` format."""
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise DesignError("empty design text")
        try:
            d, l, t = (int(x) for x in lines[0].split())
            blocks = tuple(
                tuple(int(x) for x in ln.split()) for ln in lines[1:]
            )
        except ValueError as exc:
            raise DesignError(f"malformed design text: {exc}") from exc
        return cls(d, l, t, blocks)
