"""Bundled covering designs and the construction front-end.

The paper fetches designs from the La Jolla repository.  Offline, we
bundle designs produced by this package's own constructors (see
``scripts/generate_designs.py``) under ``repro/covering/data`` and fall
back to constructing on the fly:

1. exact algebraic construction when the parameters admit one;
2. bundled precomputed design;
3. randomised greedy (optionally improved by annealing).

:func:`best_design` is what PriView's view selection calls.
"""

from __future__ import annotations

import functools
import importlib.resources
import pathlib

import numpy as np

from repro import obs
from repro.covering.algebraic import affine_plane_design, grid_mols_design
from repro.covering.design import CoveringDesign
from repro.covering.greedy import greedy_cover
from repro.covering.local_search import anneal_cover
from repro.exceptions import DesignError


def _data_dir() -> pathlib.Path:
    return pathlib.Path(str(importlib.resources.files("repro.covering"))) / "data"


def design_filename(num_points: int, block_size: int, strength: int) -> str:
    """Canonical bundled-file name for the given parameters."""
    return f"cover_d{num_points}_l{block_size}_t{strength}.txt"


def _is_prime_power(n: int) -> bool:
    if n < 2:
        return False
    for p in range(2, n + 1):
        if n % p == 0:
            while n % p == 0:
                n //= p
            return n == 1
    return False


def algebraic_design(
    num_points: int, block_size: int, strength: int
) -> CoveringDesign | None:
    """An exact construction when the parameters admit one, else None."""
    if strength != 2:
        return None
    if num_points == block_size * block_size and _is_prime_power(block_size):
        try:
            return affine_plane_design(block_size)
        except DesignError:
            return None
    if num_points % block_size == 0:
        groups = num_points // block_size
        if groups > 1 and block_size % groups == 0 and _is_prime_power(groups):
            try:
                return grid_mols_design(block_size, groups)
            except DesignError:
                return None
    return None


def load_bundled_design(
    num_points: int, block_size: int, strength: int
) -> CoveringDesign | None:
    """Load a design shipped with the package, or None if absent."""
    path = _data_dir() / design_filename(num_points, block_size, strength)
    if not path.exists():
        return None
    design = CoveringDesign.from_text(path.read_text())
    if (
        design.num_points != num_points
        or design.block_size != block_size
        or design.strength != strength
    ):
        raise DesignError(f"bundled design {path.name} has mismatched parameters")
    return design


def construct_design(
    num_points: int,
    block_size: int,
    strength: int,
    rng: np.random.Generator | None = None,
    effort: int = 0,
) -> CoveringDesign:
    """Construct a design from scratch (no repository lookup).

    ``effort`` > 0 additionally runs ``effort`` annealing attempts, each
    trying to shave one block off the best design found so far.
    """
    rng = rng or np.random.default_rng(0)
    with obs.span("covering.construct"):
        return _construct_design(num_points, block_size, strength, rng, effort)


def _construct_design(
    num_points: int,
    block_size: int,
    strength: int,
    rng: np.random.Generator,
    effort: int,
) -> CoveringDesign:
    design = algebraic_design(num_points, block_size, strength)
    if design is not None:
        return design
    if num_points <= block_size:
        # One block containing everything is a trivially optimal cover.
        return CoveringDesign(
            num_points,
            min(block_size, num_points),
            strength,
            (tuple(range(num_points)),),
        )
    design = greedy_cover(num_points, block_size, strength, rng).drop_redundant()
    for _ in range(effort):
        smaller = anneal_cover(
            num_points,
            block_size,
            strength,
            design.num_blocks - 1,
            rng=rng,
            restarts=2,
        )
        if smaller is None:
            break
        design = smaller.drop_redundant()
    return design


@functools.lru_cache(maxsize=64)
def best_design(num_points: int, block_size: int, strength: int) -> CoveringDesign:
    """The best available design: algebraic, else bundled, else greedy.

    Cached, so the lookup span appears in a trace only on first use.
    """
    with obs.span("covering.best_design"):
        design = algebraic_design(num_points, block_size, strength)
        if design is None:
            design = load_bundled_design(num_points, block_size, strength)
        if design is None:
            design = construct_design(num_points, block_size, strength)
    obs.incr("covering.designs_resolved")
    return design


def save_design(design: CoveringDesign, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Write a design into the bundled-data directory (used by scripts)."""
    directory = directory or _data_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / design_filename(
        design.num_points, design.block_size, design.strength
    )
    path.write_text(design.to_text())
    return path
