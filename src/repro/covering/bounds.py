"""Lower bounds on covering numbers.

The Schönheim bound is the standard recursive lower bound on
``C(v, l, t)``, the minimum number of blocks of a covering design.  We
use it to report how far a constructed design is from optimal, and in
tests to certify that the algebraic constructions are exactly optimal
(they meet the bound for d=32 and d=64 with l=8, t=2 — the paper's
C_2(8,20) and C_2(8,72)).
"""

from __future__ import annotations

import math

from repro.exceptions import DesignError


def schonheim_bound(num_points: int, block_size: int, strength: int) -> int:
    """The Schönheim lower bound ``C(v, l, t) >= ceil(v/l * C(v-1, l-1, t-1))``.

    The recursion bottoms out at ``t = 1`` with ``ceil(v / l)``.
    """
    if strength < 1 or block_size < strength or num_points < block_size:
        raise DesignError(
            f"invalid parameters v={num_points}, l={block_size}, t={strength}"
        )
    if strength == 1:
        return math.ceil(num_points / block_size)
    inner = schonheim_bound(num_points - 1, block_size - 1, strength - 1)
    return math.ceil(num_points * inner / block_size)


def pair_counting_bound(num_points: int, block_size: int) -> int:
    """Trivial t=2 bound: blocks*C(l,2) must reach C(v,2)."""
    if block_size < 2 or num_points < block_size:
        raise DesignError(f"invalid parameters v={num_points}, l={block_size}")
    return math.ceil(math.comb(num_points, 2) / math.comb(block_size, 2))
