"""KL and Jensen-Shannon divergence between normalised marginals.

The paper measures ``D_JS(norm(T̃) || norm(T))`` (Equation 1) because
plain KL is undefined when the private table has empty cells the true
table does not.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.table import MarginalTable


def _as_distribution(table) -> np.ndarray:
    """Normalise to a probability vector.

    Noisy marginal tables can carry (small) negative cells; a
    probability distribution cannot, so negatives are clamped to zero
    before normalising.  A table with no positive mass is treated as
    uniform, matching how the evaluation handles degenerate answers.
    """
    if isinstance(table, MarginalTable):
        arr = table.counts
    else:
        arr = np.asarray(table, dtype=np.float64)
    arr = np.maximum(arr, 0.0)
    total = arr.sum()
    if total <= 0:
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def kl_divergence(p, q) -> float:
    """``D_KL(P || Q) = sum_i P(i) ln(P(i)/Q(i))``.

    Returns ``inf`` when Q lacks support somewhere P has mass — the
    exact failure mode that motivates Jensen-Shannon in the paper.
    """
    p = _as_distribution(p)
    q = _as_distribution(q)
    if p.shape != q.shape:
        raise DimensionError(f"shape mismatch {p.shape} vs {q.shape}")
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def jensen_shannon(p, q) -> float:
    """Equation 1: symmetrised, smoothed KL.  Always finite, in [0, ln 2]."""
    p = _as_distribution(p)
    q = _as_distribution(q)
    if p.shape != q.shape:
        raise DimensionError(f"shape mismatch {p.shape} vs {q.shape}")
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)
