"""Candlestick summaries — how the paper plots error distributions.

Each candlestick gives the 25th percentile, median, 75th percentile,
95th percentile and arithmetic mean of a set of per-query errors
(Section 5, Evaluation Methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionError


@dataclass(frozen=True)
class Candlestick:
    """Five-number error profile for one (method, k, epsilon) cell."""

    p25: float
    median: float
    p75: float
    p95: float
    mean: float
    count: int

    def as_row(self) -> tuple[float, float, float, float, float]:
        """The five plotted statistics, in plotting order."""
        return (self.p25, self.median, self.p75, self.p95, self.mean)

    def __str__(self) -> str:
        return (
            f"p25={self.p25:.3e} med={self.median:.3e} p75={self.p75:.3e} "
            f"p95={self.p95:.3e} mean={self.mean:.3e} (n={self.count})"
        )


def candlestick(errors) -> Candlestick:
    """Summarise an iterable of per-query errors."""
    arr = np.asarray(list(errors), dtype=np.float64)
    if arr.size == 0:
        raise DimensionError("cannot summarise an empty error list")
    p25, median, p75, p95 = np.percentile(arr, [25, 50, 75, 95])
    return Candlestick(
        p25=float(p25),
        median=float(median),
        p75=float(p75),
        p95=float(p95),
        mean=float(arr.mean()),
        count=int(arr.size),
    )
