"""L2 error distance and the Expected Squared Error (paper Section 2)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.marginals.table import MarginalTable


def _paired_counts(
    estimate: MarginalTable, truth: MarginalTable
) -> tuple[np.ndarray, np.ndarray]:
    if estimate.attrs != truth.attrs:
        raise DimensionError(
            f"attribute mismatch: {estimate.attrs} vs {truth.attrs}"
        )
    return estimate.counts, truth.counts


def l2_error(estimate: MarginalTable, truth: MarginalTable) -> float:
    """Euclidean distance between the tables viewed as 2**k vectors."""
    a, b = _paired_counts(estimate, truth)
    return float(np.linalg.norm(a - b))


def normalized_l2_error(
    estimate: MarginalTable, truth: MarginalTable, num_records: float
) -> float:
    """L2 error divided by N — the paper's plotted quantity."""
    if num_records <= 0:
        raise DimensionError(f"num_records must be positive, got {num_records}")
    return l2_error(estimate, truth) / float(num_records)


def expected_squared_error(estimate: MarginalTable, truth: MarginalTable) -> float:
    """Sum of squared per-cell errors (one sample of the ESE)."""
    a, b = _paired_counts(estimate, truth)
    return float(((a - b) ** 2).sum())
