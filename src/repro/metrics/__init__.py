"""Error measures used by the paper's evaluation (Section 2 & 5)."""

from repro.metrics.l2 import (
    expected_squared_error,
    l2_error,
    normalized_l2_error,
)
from repro.metrics.divergence import jensen_shannon, kl_divergence
from repro.metrics.candlestick import Candlestick, candlestick

__all__ = [
    "expected_squared_error",
    "l2_error",
    "normalized_l2_error",
    "jensen_shannon",
    "kl_divergence",
    "Candlestick",
    "candlestick",
]
