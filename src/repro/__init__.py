"""repro — a full reproduction of PriView (SIGMOD 2014).

PriView publishes a differentially private synopsis of a
high-dimensional binary dataset from which any k-way marginal
contingency table can be reconstructed accurately.

Quickstart
----------
>>> import numpy as np
>>> from repro import BinaryDataset, PriView
>>> data = (np.random.default_rng(0).random((5000, 16)) < 0.3)
>>> dataset = BinaryDataset(data.astype(np.uint8))
>>> synopsis = PriView(epsilon=1.0, seed=1).fit(dataset)
>>> table = synopsis.marginal((0, 3, 7, 11))  # private 4-way marginal

Large fits run the same pipeline on bit-sliced popcount kernels and a
deterministic worker pool (``docs/PERFORMANCE.md``)::

    PriView(epsilon=1.0, seed=1, packed=True, workers=8).fit(dataset)

Attribute sets are canonicalised everywhere by :class:`AttrSet`, and
every mechanism — PriView and each baseline — satisfies the
structural :class:`Mechanism` / :class:`MarginalSource` protocols, so
experiment drivers and ``repro.serve`` host them interchangeably.

Package map
-----------
``repro.core``
    PriView itself: view selection, consistency, Ripple
    non-negativity, max-entropy reconstruction.
``repro.marginals``
    Datasets, marginal tables, projections.
``repro.mechanisms``
    Laplace / exponential mechanisms, budget accounting.
``repro.covering``
    Covering-design construction (the view-selection substrate).
``repro.baselines``
    Flat, Direct, Fourier(+LP), MWEM, matrix mechanism, learning-based,
    data cubes, uniform — everything the paper compares against.
``repro.datasets``
    MCHAIN and clickstream-style dataset generators / loaders.
``repro.metrics`` / ``repro.analysis``
    Error measures and the paper's closed-form error analysis.
``repro.experiments``
    Drivers reproducing every table and figure of the evaluation.
``repro.kernels``
    Bit-sliced marginal kernels and the deterministic parallel fit.
``repro.serve``
    Concurrent query serving over any fitted marginal source, or a
    whole synopsis store (per-dataset routes, zero-drop hot swap).
``repro.store``
    Versioned, multi-tenant synopsis registry: content-addressed
    artifacts, atomic publish, integrity checks (``docs/STORE.md``).
``repro.synth``
    Record-level synthetic data from any synopsis (PrivSyn-style
    gradual updating; zero extra budget — ``docs/SYNTHESIS.md``).
``repro.obs``
    Tracing spans, pipeline counters, and the privacy-budget ledger
    (see ``docs/OBSERVABILITY.md``); inert unless a session is active.
"""

from repro.core import PriView, PriViewSynopsis
from repro.covering import CoveringDesign
from repro.baselines.base import MarginalSource, Mechanism
from repro.kernels import PackedDataset, fit_defaults, set_fit_defaults
from repro.marginals import (
    AttrSet,
    Attribute,
    BinaryDataset,
    Domain,
    FullContingencyTable,
    MarginalTable,
    as_domain,
)
from repro.mechanisms import PrivacyBudget
from repro.synth import Synthesizer, SyntheticRecords, synthesize

__version__ = "1.1.0"

__all__ = [
    "PriView",
    "PriViewSynopsis",
    "CoveringDesign",
    "AttrSet",
    "Attribute",
    "BinaryDataset",
    "Domain",
    "FullContingencyTable",
    "MarginalSource",
    "MarginalTable",
    "Mechanism",
    "PackedDataset",
    "PrivacyBudget",
    "Synthesizer",
    "SyntheticRecords",
    "as_domain",
    "fit_defaults",
    "set_fit_defaults",
    "synthesize",
    "__version__",
]
