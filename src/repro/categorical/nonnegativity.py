"""Ripple non-negativity for categorical tables (Section 4.7).

"The only change is in the Ripple Non-negativity step, neighbouring
cells are obtained by changing only one value (as opposed to flipping
one value)."
"""

from __future__ import annotations

import numpy as np

from repro.categorical.indexing import categorical_neighbours
from repro.categorical.table import CategoricalMarginalTable
from repro.core.nonnegativity import DEFAULT_THETA, MAX_RIPPLE_PASSES
from repro.exceptions import ReconstructionError


def categorical_ripple(
    table: CategoricalMarginalTable, theta: float = DEFAULT_THETA
) -> int:
    """Ripple with change-one-value neighbourhoods; returns pass count."""
    if theta <= 0:
        raise ReconstructionError(
            f"theta must be positive for Ripple to terminate, got {theta}"
        )
    if table.arity == 0:
        return 0
    if table.counts.sum() <= 0:
        table.counts[:] = 0.0
        return 0
    neighbours = categorical_neighbours(table.arities)
    degree = neighbours.shape[1]
    counts = table.counts
    passes = 0
    while passes < MAX_RIPPLE_PASSES:
        negative = np.flatnonzero(counts < -theta)
        if negative.size == 0:
            return passes
        passes += 1
        removed = counts[negative].copy()
        counts[negative] = 0.0
        share = np.repeat(removed / degree, degree)
        np.add.at(counts, neighbours[negative].ravel(), share)
    raise ReconstructionError(
        f"categorical Ripple did not settle within {MAX_RIPPLE_PASSES} passes"
    )
