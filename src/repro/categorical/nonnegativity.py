"""Deprecated shim — categorical Ripple moved into the core.

The implementation lives in :mod:`repro.core.nonnegativity` next to
the binary Ripple (one home for all non-negativity post-processing).
Importing the old name from here keeps working but raises a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

_MOVED = ("categorical_ripple",)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.categorical.nonnegativity.{name} moved to "
            f"repro.core.nonnegativity; update the import",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import nonnegativity

        return getattr(nonnegativity, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_MOVED))
