"""View selection for categorical data (Section 4.7).

The binary rule "l = 8 attributes per view" becomes a bound on the
*cell count* ``s`` of each view (the paper recommends, e.g.,
100-1000 cells for binary, up to ~5000 for 5-valued attributes), with
t = 2 coverage: every pair of attributes must share a view.  The paper
suggests "simple greedy algorithms can also be developed" for this
mixed-arity covering problem; :func:`select_categorical_views`
implements one.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.ell_selection import recommended_cells_per_view
from repro.exceptions import DesignError


def _cells(arities, members) -> int:
    return math.prod(arities[a] for a in members)


def select_categorical_views(
    arities,
    max_cells: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[tuple[int, ...]]:
    """Greedy pair-covering views under a per-view cell budget.

    Parameters
    ----------
    arities:
        Per-attribute value counts.
    max_cells:
        Cell budget per view; defaults to the Section 4.7 guideline for
        the dataset's mean arity.

    Returns
    -------
    list of sorted attribute tuples covering every attribute pair,
    each view's cell count within the budget.
    """
    arities = tuple(int(b) for b in arities)
    d = len(arities)
    if d == 0:
        raise DesignError("need at least one attribute")
    if any(b < 2 for b in arities):
        raise DesignError(f"arities must be >= 2, got {arities}")
    if max_cells is None:
        mean_arity = max(2, round(sum(arities) / d))
        _, max_cells = recommended_cells_per_view(min(mean_arity, 5))
    if max_cells < max(arities) * max(arities):
        raise DesignError(
            f"cell budget {max_cells} cannot hold the largest attribute pair"
        )
    rng = rng or np.random.default_rng(0)

    uncovered = {(i, j) for i in range(d) for j in range(i + 1, d)}
    views: list[tuple[int, ...]] = []
    while uncovered:
        view = _grow_view(arities, uncovered, max_cells, rng)
        views.append(view)
        view_set = set(view)
        uncovered = {
            pair for pair in uncovered if not set(pair) <= view_set
        }
    if d == 1:
        views.append((0,))
    return views


def _grow_view(arities, uncovered, max_cells, rng) -> tuple[int, ...]:
    """Grow one view: seed with an uncovered pair, greedily extend."""
    d = len(arities)
    seed = next(iter(uncovered))
    members = set(seed)
    while True:
        best_gain, best_attr = 0, None
        candidates = list(range(d))
        rng.shuffle(candidates)
        for attr in candidates:
            if attr in members:
                continue
            if _cells(arities, members | {attr}) > max_cells:
                continue
            gain = sum(
                1
                for m in members
                if (min(attr, m), max(attr, m)) in uncovered
            )
            if gain > best_gain:
                best_gain, best_attr = gain, attr
        if best_attr is None:
            return tuple(sorted(members))
        members.add(best_attr)
