"""Marginal tables over categorical attributes.

Mirrors :class:`repro.marginals.table.MarginalTable` with mixed-radix
cells.  The interface intentionally matches what the binary
consistency procedure uses (``attrs``, ``counts``, ``project``,
``consistency_update``, ``total``), so Section 4.4's algorithm — which
the paper notes "can be applied directly with non-binary categorical
attributes" — runs on these tables unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.categorical.indexing import (
    mixed_radix_projection_map,
    table_size,
)
from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet


@dataclass
class CategoricalMarginalTable:
    """A contingency table over categorical attributes.

    Attributes
    ----------
    attrs:
        Sorted global attribute indices.
    arities:
        Number of values of each attribute, aligned with ``attrs``.
    counts:
        Float array of ``prod(arities)`` cells; cell ``i`` assigns
        attribute ``attrs[j]`` the value ``(i // stride_j) % arities[j]``.
    """

    attrs: tuple[int, ...]
    arities: tuple[int, ...]
    counts: np.ndarray = field(repr=False)
    meta: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        # AttrSet is the module-boundary canonicalizer: it sorts the
        # attrs, re-aligns the arities alongside them, and rejects
        # duplicates / arities < 2 — while still equalling (and
        # hashing like) the bare sorted tuple.
        attrs = AttrSet(tuple(self.attrs), arities=tuple(self.arities))
        self.attrs = attrs
        self.arities = attrs.arities
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.shape != (table_size(self.arities),):
            raise DimensionError(
                f"counts has shape {counts.shape}, expected "
                f"({table_size(self.arities)},)"
            )
        self.counts = counts

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, attrs, arities) -> "CategoricalMarginalTable":
        return cls(tuple(attrs), tuple(arities), np.zeros(table_size(arities)))

    @classmethod
    def uniform(cls, attrs, arities, total: float) -> "CategoricalMarginalTable":
        size = table_size(arities)
        return cls(tuple(attrs), tuple(arities), np.full(size, total / size))

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attrs)

    @property
    def size(self) -> int:
        """Number of cells."""
        return self.counts.size

    def total(self) -> float:
        return float(self.counts.sum())

    def copy(self) -> "CategoricalMarginalTable":
        return CategoricalMarginalTable(
            self.attrs, self.arities, self.counts.copy(), dict(self.meta)
        )

    def with_counts(self, counts) -> "CategoricalMarginalTable":
        """A same-shape table over the same attrs with new counts."""
        return CategoricalMarginalTable(self.attrs, self.arities, counts)

    def _positions(self, sub_attrs: tuple[int, ...]) -> tuple[int, ...]:
        index = {a: j for j, a in enumerate(self.attrs)}
        try:
            return tuple(index[a] for a in sub_attrs)
        except KeyError as exc:
            raise DimensionError(
                f"{sub_attrs} is not a subset of {self.attrs}"
            ) from exc

    # ------------------------------------------------------------------
    def project(self, sub_attrs) -> "CategoricalMarginalTable":
        """The marginal over a subset of this table's attributes."""
        sub = tuple(sorted(int(a) for a in sub_attrs))
        positions = self._positions(sub)
        pmap = mixed_radix_projection_map(self.arities, positions)
        sub_arities = tuple(self.arities[p] for p in positions)
        counts = np.bincount(
            pmap, weights=self.counts, minlength=table_size(sub_arities)
        )
        return CategoricalMarginalTable(sub, sub_arities, counts)

    def consistency_update(self, target: "CategoricalMarginalTable") -> None:
        """Shift cells so the projection onto ``target.attrs`` matches.

        The Section 4.4 update with the binary ``2**(|V|-|A|)`` divisor
        generalised to the number of cells collapsing onto each target
        cell.
        """
        positions = self._positions(target.attrs)
        pmap = mixed_radix_projection_map(self.arities, positions)
        current = np.bincount(pmap, weights=self.counts, minlength=target.size)
        spread = self.size // target.size
        delta = (target.counts - current) / float(spread)
        self.counts += delta[pmap]

    # ------------------------------------------------------------------
    def normalized(self) -> np.ndarray:
        """Cells divided by the total; uniform if degenerate."""
        total = self.counts.sum()
        if total <= 0:
            return np.full(self.size, 1.0 / self.size)
        return self.counts / total
