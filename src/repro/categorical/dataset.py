"""Datasets with categorical (multi-valued) attributes."""

from __future__ import annotations

import numpy as np

from repro.categorical.indexing import strides, table_size
from repro.categorical.table import CategoricalMarginalTable
from repro.exceptions import DimensionError


class CategoricalDataset:
    """An ``N x d`` dataset; attribute ``j`` takes values in
    ``range(arities[j])``.

    ``domain`` optionally attaches the richer
    :class:`~repro.marginals.domain.Domain` schema (names, kinds, bin
    edges) for the same attributes; its arities must match.  Fitted
    synopses and record-level synthesis carry it forward.
    """

    def __init__(self, data, arities, name: str = "categorical", domain=None):
        arr = np.asarray(data, dtype=np.int64)
        if arr.ndim != 2:
            raise DimensionError(f"data must be 2-D, got shape {arr.shape}")
        self.arities = tuple(int(b) for b in arities)
        if arr.shape[1] != len(self.arities):
            raise DimensionError(
                f"data has {arr.shape[1]} columns but {len(self.arities)} "
                "arities were given"
            )
        if any(b < 2 for b in self.arities):
            raise DimensionError(f"arities must be >= 2, got {self.arities}")
        for j, b in enumerate(self.arities):
            column = arr[:, j]
            if column.size and (column.min() < 0 or column.max() >= b):
                raise DimensionError(
                    f"column {j} has values outside range({b})"
                )
        if domain is not None and tuple(domain.arities) != self.arities:
            raise DimensionError(
                f"domain arities {tuple(domain.arities)} do not match "
                f"dataset arities {self.arities}"
            )
        self._data = arr
        self.name = name
        self.domain = domain

    @classmethod
    def from_columns(
        cls, columns, domain, name: str = "categorical"
    ) -> "CategoricalDataset":
        """Encode raw attribute values through a Domain's binning.

        ``columns`` is a name-keyed mapping or a positional sequence of
        per-attribute value arrays; each is encoded into codes with
        :meth:`repro.marginals.domain.Attribute.encode` (numeric
        attributes are binned, labelled attributes looked up).
        """
        return cls(
            domain.encode_records(columns), domain.arities, name=name,
            domain=domain,
        )

    @classmethod
    def random(
        cls,
        num_records: int,
        arities,
        rng: np.random.Generator | None = None,
        name: str = "random",
    ) -> "CategoricalDataset":
        """IID uniform categorical data, mainly for tests.

        ``arities`` may be a :class:`~repro.marginals.domain.Domain`,
        which is then attached to the dataset.
        """
        rng = rng or np.random.default_rng()
        domain = arities if hasattr(arities, "attr_set") else None
        arities = tuple(int(b) for b in (domain.arities if domain else arities))
        columns = [
            rng.integers(0, b, size=num_records) for b in arities
        ]
        return cls(np.stack(columns, axis=1), arities, name=name, domain=domain)

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        view = self._data.view()
        view.setflags(write=False)
        return view

    @property
    def num_records(self) -> int:
        return self._data.shape[0]

    @property
    def num_attributes(self) -> int:
        return self._data.shape[1]

    def __repr__(self) -> str:
        return (
            f"CategoricalDataset(name={self.name!r}, N={self.num_records}, "
            f"arities={self.arities})"
        )

    # ------------------------------------------------------------------
    def marginal(self, attrs) -> CategoricalMarginalTable:
        """Exact (non-private) marginal over ``attrs``."""
        attrs = tuple(sorted(int(a) for a in attrs))
        if attrs and attrs[-1] >= self.num_attributes:
            raise DimensionError(
                f"attribute {attrs[-1]} out of range (d={self.num_attributes})"
            )
        sub_arities = tuple(self.arities[a] for a in attrs)
        weights = np.array(strides(sub_arities), dtype=np.int64)
        idx = self._data[:, list(attrs)] @ weights
        counts = np.bincount(idx, minlength=table_size(sub_arities))
        return CategoricalMarginalTable(
            attrs, sub_arities, counts.astype(np.float64)
        )
