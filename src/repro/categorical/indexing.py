"""Mixed-radix cell indexing for categorical marginal tables.

A table over attributes with arities ``(b_0, ..., b_{m-1})`` has
``prod(b_j)`` cells; cell ``i`` encodes the assignment whose value for
attribute ``j`` is ``(i // stride_j) % b_j`` with ``stride_j =
b_0 * ... * b_{j-1}`` — the direct generalisation of the binary
bit-``j`` convention used everywhere else in this library.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from repro.exceptions import DimensionError


def table_size(arities) -> int:
    """Number of cells of a table with the given attribute arities."""
    return math.prod(int(b) for b in arities)


def strides(arities) -> tuple[int, ...]:
    """Mixed-radix place values: ``stride_j = prod(arities[:j])``."""
    out = []
    acc = 1
    for b in arities:
        out.append(acc)
        acc *= int(b)
    return tuple(out)


@functools.lru_cache(maxsize=4096)
def mixed_radix_projection_map(
    arities: tuple[int, ...], positions: tuple[int, ...]
) -> np.ndarray:
    """Map each parent cell to its projected cell (categorical case).

    ``positions`` selects which attributes (by index into ``arities``)
    the sub-table retains, in sub-table order.
    """
    if any(p < 0 or p >= len(arities) for p in positions):
        raise DimensionError(
            f"positions {positions} out of range for arities {arities}"
        )
    if len(set(positions)) != len(positions):
        raise DimensionError(f"positions {positions} contain duplicates")
    parent_strides = strides(arities)
    cells = np.arange(table_size(arities), dtype=np.int64)
    out = np.zeros(cells.size, dtype=np.int64)
    sub_stride = 1
    for pos in positions:
        digit = (cells // parent_strides[pos]) % arities[pos]
        out += digit * sub_stride
        sub_stride *= arities[pos]
    out.setflags(write=False)
    return out


@functools.lru_cache(maxsize=1024)
def categorical_neighbours(arities: tuple[int, ...]) -> np.ndarray:
    """Neighbours of every cell: change one attribute to another value.

    The Section 4.7 Ripple neighbourhood.  Returns an array of shape
    ``(cells, sum(b_j - 1))``.
    """
    parent_strides = strides(arities)
    size = table_size(arities)
    cells = np.arange(size, dtype=np.int64)
    columns = []
    for j, b in enumerate(arities):
        digit = (cells // parent_strides[j]) % b
        base = cells - digit * parent_strides[j]
        for other in range(1, b):
            new_digit = (digit + other) % b
            columns.append(base + new_digit * parent_strides[j])
    return np.stack(columns, axis=1)
