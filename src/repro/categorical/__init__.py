"""Categorical-attribute extension of PriView (paper Section 4.7).

The main library handles binary datasets, following the paper's main
sections.  Section 4.7 sketches the extension to attributes with
``b >= 2`` values each; this subpackage implements it:

* mixed-radix cell indexing replaces the binary bit convention
  (:mod:`repro.categorical.indexing`);
* :class:`~repro.categorical.table.CategoricalMarginalTable` supports
  the same projection / consistency-update operations, so the *binary*
  consistency procedure of Section 4.4 applies verbatim;
* Ripple's neighbourhood becomes "change one attribute to another
  value" (:func:`repro.core.nonnegativity.categorical_ripple`);
* view selection bounds the *cell count* per view using the
  Section 4.7 ``s`` guideline instead of the attribute count
  (:mod:`repro.categorical.views`);
* maximum-entropy reconstruction runs the same IPF, over mixed-radix
  projections (:mod:`repro.core.reconstruction.categorical`).

The Ripple and reconstruction implementations live in the shared
``repro.core`` registry; the old private copies here
(``repro.categorical.nonnegativity`` / ``.reconstruction``) remain as
deprecated import shims.
"""

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.table import CategoricalMarginalTable
from repro.categorical.priview import CategoricalPriView, CategoricalSynopsis
from repro.categorical.views import select_categorical_views

__all__ = [
    "CategoricalDataset",
    "CategoricalMarginalTable",
    "CategoricalPriView",
    "CategoricalSynopsis",
    "select_categorical_views",
]
