"""PriView for categorical datasets (Section 4.7, end to end).

The pipeline is identical to the binary one — noisy views, overall
consistency, Ripple, max-entropy reconstruction — with the
categorical variants of view selection, Ripple neighbourhoods and
cell indexing plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.nonnegativity import categorical_ripple
from repro.categorical.reconstruction import (
    categorical_maxent,
    extract_categorical_constraints,
)
from repro.categorical.table import CategoricalMarginalTable
from repro.categorical.views import select_categorical_views
from repro.core.consistency import make_consistent
from repro.core.nonnegativity import DEFAULT_THETA
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.laplace import noisy_counts


@dataclass
class CategoricalSynopsis:
    """Published, consistent categorical view marginals."""

    views: list[CategoricalMarginalTable]
    arities: tuple[int, ...]
    epsilon: float
    metadata: dict = field(default_factory=dict)

    @property
    def num_views(self) -> int:
        return len(self.views)

    def total_count(self) -> float:
        if not self.views:
            return 0.0
        return sum(v.total() for v in self.views) / len(self.views)

    def is_covered(self, attrs) -> bool:
        target = set(int(a) for a in attrs)
        return any(target.issubset(v.attrs) for v in self.views)

    def marginal(self, attrs) -> CategoricalMarginalTable:
        """Reconstruct the marginal over ``attrs`` (projection when
        covered, max-entropy IPF otherwise)."""
        target = tuple(sorted(int(a) for a in attrs))
        for view in self.views:
            if set(target).issubset(view.attrs):
                return view.project(target)
        constraints = extract_categorical_constraints(self.views, target)
        target_arities = tuple(self.arities[a] for a in target)
        return categorical_maxent(
            constraints, target, target_arities, self.total_count()
        )


class CategoricalPriView:
    """PriView over multi-valued attributes.

    Parameters
    ----------
    epsilon:
        Privacy budget (``inf`` = noise-free).
    max_cells:
        Per-view cell budget; defaults to the Section 4.7 guideline.
    views:
        Explicit attribute tuples, overriding greedy selection.
    theta:
        Ripple threshold.
    """

    def __init__(
        self,
        epsilon: float,
        max_cells: int | None = None,
        views: list[tuple[int, ...]] | None = None,
        theta: float = DEFAULT_THETA,
        seed: int | None = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.max_cells = max_cells
        self.views = views
        self.theta = theta
        self._rng = np.random.default_rng(seed)

    def fit(self, dataset: CategoricalDataset) -> CategoricalSynopsis:
        """Run the full categorical pipeline."""
        view_attrs = self.views or select_categorical_views(
            dataset.arities, max_cells=self.max_cells, rng=self._rng
        )
        w = len(view_attrs)
        tables = []
        for attrs in view_attrs:
            table = dataset.marginal(attrs)
            table.counts = noisy_counts(
                table.counts, self.epsilon, sensitivity=w, rng=self._rng
            )
            tables.append(table)
        make_consistent(tables)
        for table in tables:
            categorical_ripple(table, theta=self.theta)
        make_consistent(tables)
        return CategoricalSynopsis(
            views=tables,
            arities=dataset.arities,
            epsilon=self.epsilon,
            metadata={"view_attrs": list(view_attrs), "theta": self.theta},
        )
