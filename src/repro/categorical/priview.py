"""PriView for categorical datasets (Section 4.7, end to end).

The pipeline is identical to the binary one — noisy views, overall
consistency, Ripple, max-entropy reconstruction — with the
categorical variants of view selection, Ripple neighbourhoods and
cell indexing plugged in.  The post-processing primitives themselves
(Ripple, the mixed-radix IPF solver) live in the shared core
(:mod:`repro.core.nonnegativity`,
:mod:`repro.core.reconstruction.categorical`) rather than as private
forks here.

Like the binary :class:`~repro.core.priview.PriView`, the fit hot
path can run on the bit-sliced kernels
(:class:`~repro.kernels.packed_cat.PackedCategoricalDataset`) with
``packed=True`` — bitwise-identical marginals — and fan the views out
over a worker pool with ``workers=N`` (per-view ``SeedSequence``
child noise streams; bit-identical for any worker count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro import obs
from repro.categorical.dataset import CategoricalDataset
from repro.categorical.table import CategoricalMarginalTable
from repro.categorical.views import select_categorical_views
from repro.core.consistency import make_consistent
from repro.core.nonnegativity import DEFAULT_THETA, categorical_ripple
from repro.core.reconstruction import reconstruct_mixed
from repro.exceptions import PrivacyBudgetError
from repro.kernels import config as kernels_config
from repro.kernels.fit import generate_noisy_views as _parallel_noisy_views
from repro.marginals.domain import Domain
from repro.mechanisms.laplace import noisy_counts


@dataclass
class CategoricalSynopsis:
    """Published, consistent categorical view marginals.

    ``domain`` is optional richer schema (names, kinds, bin edges)
    for the same attributes; when present its arities always match
    ``arities``, and record-level consumers (``repro.synth``, the
    serving sample route) use it to decode cell indices back into
    attribute values.
    """

    views: list[CategoricalMarginalTable]
    arities: tuple[int, ...]
    epsilon: float
    metadata: dict = field(default_factory=dict)
    domain: Domain | None = None
    #: optional repro.serve.QueryEngine; set via attach_engine
    _engine: object | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.arities = tuple(int(b) for b in self.arities)
        if self.domain is not None and self.domain.arities != self.arities:
            raise PrivacyBudgetError(
                f"domain arities {self.domain.arities} do not match "
                f"synopsis arities {self.arities}"
            )

    @property
    def num_views(self) -> int:
        return len(self.views)

    @property
    def num_attributes(self) -> int:
        """Dimensionality ``d`` — mirrors :class:`PriViewSynopsis`."""
        return len(self.arities)

    # ------------------------------------------------------------------
    # Serving-engine integration (same contract as PriViewSynopsis)
    # ------------------------------------------------------------------
    def attach_engine(self, engine) -> None:
        """Route ``marginal``/``marginals`` through a serving engine."""
        self._engine = engine

    @property
    def engine(self):
        """The attached serving engine, if any."""
        return self._engine

    def total_count(self) -> float:
        if not self.views:
            return 0.0
        return sum(v.total() for v in self.views) / len(self.views)

    def is_covered(self, attrs) -> bool:
        target = set(int(a) for a in attrs)
        return any(target.issubset(v.attrs) for v in self.views)

    def reconstruct(self, attrs, method: str = "maxent") -> CategoricalMarginalTable:
        """Engine-independent reconstruction (projection when covered,
        the named mixed-radix solver otherwise).  The serving engine
        calls this directly, so an attached engine never recurses."""
        return reconstruct_mixed(
            self.views,
            attrs,
            self.arities,
            method=method,
            total=self.total_count(),
        )

    def marginal(self, attrs, method: str = "maxent") -> CategoricalMarginalTable:
        """Reconstruct the marginal over ``attrs``; with an attached
        serving engine the query goes through its planner and cache."""
        if self._engine is not None:
            return self._engine.answer(attrs, method=method).table
        return self.reconstruct(attrs, method=method)

    def marginals(self, attr_sets, method: str = "maxent"):
        """Reconstruct several marginals, solving each distinct set once."""
        if self._engine is not None:
            return [
                answer.table
                for answer in self._engine.answer_batch(attr_sets, method=method)
            ]
        total = self.total_count()
        distinct: dict[tuple[int, ...], CategoricalMarginalTable] = {}
        out = []
        for attrs in attr_sets:
            target = tuple(sorted(int(a) for a in attrs))
            if target in distinct:
                out.append(distinct[target].copy())
                continue
            table = reconstruct_mixed(
                self.views, target, self.arities, method=method, total=total
            )
            distinct[target] = table
            out.append(table)
        return out

    def __repr__(self) -> str:
        return (
            f"CategoricalSynopsis(d={self.num_attributes}, "
            f"arities={self.arities}, epsilon={self.epsilon}, "
            f"views={self.num_views})"
        )


class CategoricalPriView:
    """PriView over multi-valued attributes.

    Parameters
    ----------
    epsilon:
        Privacy budget (``inf`` = noise-free).
    max_cells:
        Per-view cell budget; defaults to the Section 4.7 guideline.
    views:
        Explicit attribute tuples, overriding greedy selection.
    theta:
        Ripple threshold.
    seed:
        Seeds view selection and the noise generator.
    packed:
        Extract exact marginals on the bit-plane popcount kernels
        (:func:`repro.kernels.packed_cat.as_packed_categorical`) —
        bitwise-identical counts.  ``None`` inherits the process-wide
        :func:`repro.kernels.set_fit_defaults` setting.
    workers / backend:
        As in the binary :class:`~repro.core.priview.PriView`: ``None``
        keeps the legacy sequential noise stream; an integer fans the
        views out with per-view ``SeedSequence`` child streams
        (bit-identical for any worker count, including 1).
    """

    name = "categorical-priview"

    def __init__(
        self,
        epsilon: float,
        max_cells: int | None = None,
        views: list[tuple[int, ...]] | None = None,
        theta: float = DEFAULT_THETA,
        seed: int | None = None,
        packed: bool | None = None,
        workers: int | None = None,
        backend: str = "auto",
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        defaults = kernels_config.fit_defaults()
        self.epsilon = float(epsilon)
        self.max_cells = max_cells
        self.views = views
        self.theta = theta
        self.packed = defaults["packed"] if packed is None else bool(packed)
        self.workers = defaults["workers"] if workers is None else workers
        self.backend = backend
        self._rng = np.random.default_rng(seed)
        self._seed_seq = np.random.SeedSequence(seed)

    def fit(self, dataset: CategoricalDataset) -> CategoricalSynopsis:
        """Run the full categorical pipeline.

        Accepts a :class:`CategoricalDataset` or an already-packed
        :class:`~repro.kernels.packed_cat.PackedCategoricalDataset`
        (anything with ``arities`` and ``marginal``).  Under an
        observability session every noise draw lands in a strict
        ``CategoricalPriView.fit`` budget scope that balances exactly
        to ``epsilon``.
        """
        fit_start = perf_counter()
        with obs.span("categorical.fit"), obs.budget_scope(
            "CategoricalPriView.fit", self.epsilon
        ):
            view_attrs = self.views or select_categorical_views(
                dataset.arities, max_cells=self.max_cells, rng=self._rng
            )
            w = len(view_attrs)
            source = dataset
            if self.packed:
                from repro.kernels.packed_cat import as_packed_categorical

                source = as_packed_categorical(dataset)
            obs.set_gauge("fit.packed", int(self.packed))
            with obs.span("noisy_views"):
                if self.workers is None:
                    obs.set_gauge("fit.workers", 1)
                    tables = []
                    for attrs in view_attrs:
                        table = source.marginal(attrs)
                        table.counts = noisy_counts(
                            table.counts,
                            self.epsilon,
                            sensitivity=w,
                            rng=self._rng,
                        )
                        tables.append(table)
                else:
                    tables = _parallel_noisy_views(
                        source,
                        view_attrs,
                        self.epsilon,
                        sensitivity=w,
                        root_seed=self._seed_seq,
                        workers=self.workers,
                        backend=self.backend,
                    )
            with obs.span("post_process"):
                make_consistent(tables)
                for table in tables:
                    categorical_ripple(table, theta=self.theta)
                make_consistent(tables)
            obs.observe(
                "fit.seconds",
                perf_counter() - fit_start,
                {"mechanism": "categorical-priview"},
            )
        return CategoricalSynopsis(
            views=tables,
            arities=tuple(int(b) for b in dataset.arities),
            epsilon=self.epsilon,
            metadata={
                "view_attrs": [tuple(a) for a in view_attrs],
                "theta": self.theta,
            },
            domain=getattr(dataset, "domain", None),
        )
