"""Maximum-entropy reconstruction for categorical marginals.

The same IPF algorithm as :mod:`repro.core.reconstruction.maxent`
("the maximum entropy-based reconstruction method can be applied
directly with non-binary categorical attributes" — Section 4.7),
running over mixed-radix projections.
"""

from __future__ import annotations

import numpy as np

from repro.categorical.indexing import mixed_radix_projection_map, table_size
from repro.categorical.table import CategoricalMarginalTable
from repro.exceptions import ReconstructionError

_TINY = 1e-12


def extract_categorical_constraints(
    views: list[CategoricalMarginalTable], target_attrs
) -> list[CategoricalMarginalTable]:
    """Maximal-intersection constraint tables for the target attrs."""
    target = tuple(sorted(int(a) for a in target_attrs))
    target_set = set(target)
    by_attrs: dict[tuple[int, ...], CategoricalMarginalTable] = {}
    for view in views:
        inter = tuple(sorted(target_set & set(view.attrs)))
        if not inter or inter in by_attrs:
            continue
        by_attrs[inter] = view.project(inter)
    if not by_attrs:
        raise ReconstructionError(
            f"no view intersects the target attributes {target}"
        )
    return [
        by_attrs[a]
        for a in by_attrs
        if not any(set(a) < set(other) for other in by_attrs)
    ]


def categorical_maxent(
    constraints: list[CategoricalMarginalTable],
    target_attrs,
    target_arities,
    total: float,
    max_cycles: int = 500,
    tol: float = 1e-9,
) -> CategoricalMarginalTable:
    """IPF over the mixed-radix target table."""
    target = tuple(sorted(int(a) for a in target_attrs))
    target_arities = tuple(int(b) for b in target_arities)
    total = max(float(total), _TINY)
    size = table_size(target_arities)
    if not constraints:
        return CategoricalMarginalTable.uniform(target, target_arities, total)

    index = {a: j for j, a in enumerate(target)}
    prepared = []
    for c in constraints:
        positions = tuple(index[a] for a in c.attrs)
        pmap = mixed_radix_projection_map(target_arities, positions)
        tgt = np.maximum(c.counts, 0.0)
        s = tgt.sum()
        tgt = (
            np.full(tgt.size, total / tgt.size) if s <= 0 else tgt * (total / s)
        )
        prepared.append((pmap, tgt))

    cells = np.full(size, total / size)
    for _ in range(max_cycles):
        mismatch = 0.0
        for pmap, tgt in prepared:
            current = np.bincount(pmap, weights=cells, minlength=tgt.size)
            mismatch += float(np.abs(current - tgt).sum())
            factor = tgt / np.maximum(current, _TINY)
            np.clip(factor, 0.0, 1e12, out=factor)
            cells *= factor[pmap]
        if mismatch / total < tol:
            break
    return CategoricalMarginalTable(target, target_arities, cells)
