"""Deprecated shim — categorical reconstruction moved into the core.

The implementations live in :mod:`repro.core.reconstruction.categorical`
(one shared registry for binary and mixed-radix solvers, see that
module's docstring).  Importing the old names from here keeps working
but raises a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

_MOVED = ("extract_categorical_constraints", "categorical_maxent")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.categorical.reconstruction.{name} moved to "
            f"repro.core.reconstruction.categorical; update the import",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.reconstruction import categorical

        return getattr(categorical, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_MOVED))
