"""Baselines for the categorical extension experiments.

The binary baselines of Section 3 transfer directly: Direct adds
per-marginal Laplace noise with the budget split over all C(d, k)
marginals, and Uniform returns the uniform table.  Both operate on
mixed-radix tables.
"""

from __future__ import annotations

import math

import numpy as np

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.table import CategoricalMarginalTable
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.laplace import noisy_counts


class CategoricalDirect:
    """The Direct method for k-way categorical marginals."""

    def __init__(self, epsilon: float, k: int, seed: int | None = None):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.k = int(k)
        self._rng = np.random.default_rng(seed)

    def fit(self, dataset: CategoricalDataset) -> "CategoricalDirect":
        self._dataset = dataset
        self._num_marginals = math.comb(dataset.num_attributes, self.k)
        return self

    def marginal(self, attrs) -> CategoricalMarginalTable:
        attrs = tuple(sorted(int(a) for a in attrs))
        if len(attrs) != self.k:
            raise ValueError(
                f"Direct released {self.k}-way marginals; "
                f"asked for {len(attrs)}-way"
            )
        table = self._dataset.marginal(attrs)
        table.counts = noisy_counts(
            table.counts, self.epsilon, self._num_marginals, self._rng
        )
        np.maximum(table.counts, 0.0, out=table.counts)
        return table


class CategoricalUniform:
    """Uniform tables scaled to a noisy total — the floor baseline."""

    def __init__(self, epsilon: float, seed: int | None = None):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)

    def fit(self, dataset: CategoricalDataset) -> "CategoricalUniform":
        self._arities = dataset.arities
        noisy = noisy_counts(
            np.array([float(dataset.num_records)]),
            self.epsilon,
            1.0,
            self._rng,
        )
        self._total = max(float(noisy[0]), 0.0)
        return self

    def marginal(self, attrs) -> CategoricalMarginalTable:
        attrs = tuple(sorted(int(a) for a in attrs))
        arities = tuple(self._arities[a] for a in attrs)
        return CategoricalMarginalTable.uniform(attrs, arities, self._total)
