"""Privacy-budget bookkeeping.

A :class:`PrivacyBudget` tracks sequential composition: the sum of the
epsilons spent must not exceed the total.  Mechanisms in this library
accept either a raw float epsilon or draw from a budget, so simple
callers stay simple while experiment drivers get accounting for free.
"""

from __future__ import annotations

import math

from repro import obs
from repro.exceptions import PrivacyBudgetError


class PrivacyBudget:
    """A sequential-composition ε budget.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.25)
    0.25
    >>> budget.remaining
    0.75
    >>> [round(e, 3) for e in budget.split(3)]
    [0.25, 0.25, 0.25]
    """

    def __init__(self, epsilon: float):
        if not (epsilon > 0):
            raise PrivacyBudgetError(f"total epsilon must be positive, got {epsilon}")
        self.total = float(epsilon)
        self._spent = 0.0

    @property
    def spent(self) -> float:
        """Total epsilon consumed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Epsilon still available."""
        return self.total - self._spent

    def spend(self, epsilon: float) -> float:
        """Consume ``epsilon``; raises if the budget would go negative.

        Returns the amount spent, for call-site convenience.
        """
        if epsilon <= 0:
            raise PrivacyBudgetError(f"cannot spend non-positive epsilon {epsilon}")
        if math.isinf(self.total):
            return epsilon
        if epsilon > self.remaining + 1e-12:
            raise PrivacyBudgetError(
                f"budget exhausted: requested {epsilon}, remaining {self.remaining}"
            )
        self._spent = min(self.total, self._spent + epsilon)
        obs.incr("budget.spend_calls")
        obs.incr("budget.epsilon_allocated", epsilon)
        return epsilon

    def split(self, parts: int) -> list[float]:
        """Divide the *remaining* budget evenly and spend all of it."""
        if parts <= 0:
            raise PrivacyBudgetError(f"parts must be positive, got {parts}")
        if math.isinf(self.total):
            return [math.inf] * parts
        share = self.remaining / parts
        if share <= 0:
            raise PrivacyBudgetError("budget already exhausted")
        self._spent = self.total
        obs.incr("budget.split_calls")
        obs.incr("budget.epsilon_allocated", share * parts)
        return [share] * parts

    def __repr__(self) -> str:
        return f"PrivacyBudget(total={self.total}, spent={self._spent})"
