"""The Laplace mechanism (Dwork et al., TCC 2006).

The paper's Section 2 formulation: to release ``g(D)`` under
ε-differential privacy, add noise drawn from ``Lap(GS_g / epsilon)``
where ``GS_g`` is the L1 sensitivity of ``g`` under the add-one-tuple
neighbouring relation.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import PrivacyBudgetError
from repro.marginals.table import MarginalTable


def laplace_noise(
    scale: float,
    size,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``Lap(scale)`` noise of the given shape."""
    if scale < 0:
        raise PrivacyBudgetError(f"Laplace scale must be non-negative, got {scale}")
    rng = rng or np.random.default_rng()
    if scale == 0:
        return np.zeros(size)
    return rng.laplace(loc=0.0, scale=scale, size=size)


def noisy_counts(
    counts: np.ndarray,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Counts plus ``Lap(sensitivity / epsilon)`` per entry.

    ``epsilon = inf`` is accepted and returns the counts unchanged
    (used by the paper's noise-free ``C*`` and ``CME*`` variants).
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
    if np.isinf(epsilon):
        return np.asarray(counts, dtype=np.float64).copy()
    scale = sensitivity / epsilon
    obs.record_draw(
        "laplace",
        epsilon=epsilon,
        sensitivity=sensitivity,
        scale=scale,
        draws=int(np.size(counts)),
    )
    return np.asarray(counts, dtype=np.float64) + laplace_noise(
        scale, np.shape(counts), rng
    )


def noisy_marginal(
    table: MarginalTable,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | None = None,
) -> MarginalTable:
    """A noisy copy of ``table`` under the Laplace mechanism.

    A single tuple contributes a 1 to exactly one cell of a marginal
    table, so a lone marginal has sensitivity 1; callers releasing
    ``m`` tables under a shared budget pass ``sensitivity=m`` (or
    equivalently split epsilon), as in the Direct method and PriView's
    view generation.
    """
    return MarginalTable(
        table.attrs, noisy_counts(table.counts, epsilon, sensitivity, rng)
    )


def laplace_variance(scale: float) -> float:
    """Variance of ``Lap(scale)``: ``2 * scale**2``.

    With ``scale = 1/epsilon`` this is the paper's unit ``V_u``
    (Equation 2).
    """
    return 2.0 * scale * scale
