"""The exponential mechanism (McSherry & Talwar, FOCS 2007).

Used by the MWEM baseline to privately select the marginal query whose
current answer is worst (Section 3.6).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import PrivacyBudgetError


def exponential_mechanism(
    scores: np.ndarray,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | None = None,
) -> int:
    """Sample an index with probability proportional to exp(ε·score/2Δ).

    Parameters
    ----------
    scores:
        Quality score per candidate (higher is better).
    epsilon:
        Privacy budget for this selection.  ``inf`` degenerates to
        argmax.
    sensitivity:
        L1 sensitivity of the score function.

    Returns
    -------
    int
        The sampled candidate index.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        raise PrivacyBudgetError("exponential mechanism needs at least one candidate")
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
    rng = rng or np.random.default_rng()
    if np.isinf(epsilon):
        best = np.flatnonzero(scores == scores.max())
        return int(rng.choice(best))
    # One selection consumes the full epsilon: the score sensitivity is
    # already folded into the softmax temperature.
    obs.record_draw(
        "exponential",
        epsilon=epsilon,
        sensitivity=sensitivity,
        scale=2.0 * sensitivity / epsilon,
        draws=1,
        divide_by_sensitivity=False,
    )
    logits = epsilon * scores / (2.0 * sensitivity)
    logits -= logits.max()  # stabilise the softmax
    probs = np.exp(logits)
    probs /= probs.sum()
    return int(rng.choice(scores.size, p=probs))
