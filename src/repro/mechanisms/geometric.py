"""The two-sided geometric mechanism (Ghosh, Roughgarden & Sundararajan).

An integer-valued alternative to Laplace noise for count queries: the
noise takes values in Z with ``P[X = x] proportional to alpha**|x|``
where ``alpha = exp(-epsilon / sensitivity)``.  It satisfies the same
epsilon-DP guarantee and is universally utility-optimal for counts.
PriView's pipeline is noise-agnostic, so the geometric mechanism can
be dropped in wherever ``noisy_counts`` is used when integer outputs
are preferred (e.g. releases that must look like real tallies).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.exceptions import PrivacyBudgetError
from repro.marginals.table import MarginalTable


def geometric_noise(
    epsilon: float,
    sensitivity: float,
    size,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Two-sided geometric noise with parameter ``exp(-eps/sens)``.

    Sampled as the difference of two one-sided geometrics, which has
    exactly the two-sided geometric distribution.
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise PrivacyBudgetError(
            f"sensitivity must be positive, got {sensitivity}"
        )
    rng = rng or np.random.default_rng()
    if np.isinf(epsilon):
        return np.zeros(size, dtype=np.int64)
    obs.record_draw(
        "geometric",
        epsilon=epsilon,
        sensitivity=sensitivity,
        scale=sensitivity / epsilon,
        draws=int(np.prod(size, dtype=np.int64)) if size else 1,
    )
    alpha = np.exp(-epsilon / sensitivity)
    # numpy's geometric counts trials (support 1, 2, ...); shift to 0-based.
    p = 1.0 - alpha
    plus = rng.geometric(p, size=size) - 1
    minus = rng.geometric(p, size=size) - 1
    return (plus - minus).astype(np.int64)


def geometric_noisy_counts(
    counts: np.ndarray,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Integer counts plus two-sided geometric noise."""
    counts = np.asarray(counts, dtype=np.float64)
    noise = geometric_noise(epsilon, sensitivity, np.shape(counts), rng)
    return counts + noise


def geometric_noisy_marginal(
    table: MarginalTable,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | None = None,
) -> MarginalTable:
    """A noisy copy of ``table`` under the geometric mechanism."""
    return MarginalTable(
        table.attrs,
        geometric_noisy_counts(table.counts, epsilon, sensitivity, rng),
    )


def geometric_variance(epsilon: float, sensitivity: float = 1.0) -> float:
    """Variance of the two-sided geometric: ``2 alpha / (1 - alpha)**2``."""
    if np.isinf(epsilon):
        return 0.0
    alpha = np.exp(-epsilon / sensitivity)
    return 2.0 * alpha / (1.0 - alpha) ** 2
