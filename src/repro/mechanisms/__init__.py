"""Differential-privacy mechanisms used throughout the library.

Everything random in this library flows through a
:class:`numpy.random.Generator`, so experiments are reproducible when a
seed is supplied.
"""

from repro.mechanisms.budget import PrivacyBudget
from repro.mechanisms.laplace import laplace_noise, noisy_counts, noisy_marginal
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.geometric import (
    geometric_noise,
    geometric_noisy_counts,
    geometric_noisy_marginal,
)

__all__ = [
    "PrivacyBudget",
    "laplace_noise",
    "noisy_counts",
    "noisy_marginal",
    "exponential_mechanism",
    "geometric_noise",
    "geometric_noisy_counts",
    "geometric_noisy_marginal",
]
