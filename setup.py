"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires ``bdist_wheel`` under PEP 517; in a fully
offline environment without the wheel package, use::

    python setup.py develop

which performs the same editable install.  All project metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
