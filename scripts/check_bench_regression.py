"""Gate benchmark results against committed baselines.

Run from the repository root, after the benchmark suite has emitted
fresh ``BENCH_*.json`` files::

    PYTHONPATH=src python -m pytest benchmarks -q
    python scripts/check_bench_regression.py

Compares each fresh file against its committed counterpart in
``results/bench_baselines/`` on a small set of gating metrics, each
with its own direction (higher- or lower-is-better) and relative
tolerance — CI machines are noisy, so the tolerances are generous;
the gate exists to catch order-of-magnitude breakage (a disabled
cache, an accidentally quadratic path, instrumentation on the hot
loop), not single-digit drift.

Metric paths are ``/``-separated because the JSON keys themselves
contain dots (``stages/priview.fit/seconds``).

Every run (pass or fail) appends one record per benchmark file to
``results/bench_history.jsonl`` so the trajectory across commits is
reconstructable.  Exits 0 when every present benchmark passes, 1 on
any regression, 2 on usage errors.  Fresh files that are missing are
skipped with a warning (CI may run a subset of the benchmarks);
baseline files that are missing fail the gate, since that means the
baseline was never seeded.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

#: file -> [(metric path, direction, relative tolerance), ...]
#: direction "higher": regression when fresh < baseline * (1 - tol);
#: direction "lower":  regression when fresh > baseline * (1 + tol).
DEFAULT_CHECKS = {
    "BENCH_serve.json": [
        ("warm/qps", "higher", 0.50),
        ("speedup_warm_vs_cold_solved", "higher", 0.50),
        ("warm/mean_ms", "lower", 1.00),
        # The ReM solved-path bars: the closed-form residual solver
        # must stay within shouting distance of the covered path and
        # an order of magnitude ahead of iterative maxent.
        ("solved_methods/residual/p95_ms", "lower", 1.00),
        ("solved_methods/residual/qps", "higher", 0.50),
        ("residual_p95_vs_covered", "lower", 1.00),
        ("batch/residual/qps", "higher", 0.50),
    ],
    "BENCH_fit.json": [
        ("speedup_packed_vs_legacy", "higher", 0.50),
        ("packed_median_s", "lower", 1.00),
    ],
    "BENCH_obs.json": [
        ("stages/priview.fit/seconds", "lower", 3.00),
    ],
    "BENCH_store.json": [
        ("publish/mean_s", "lower", 3.00),
        ("load/unverified_s", "lower", 3.00),
        ("router/warm_lease_mean_us", "lower", 3.00),
    ],
    "BENCH_stream.json": [
        ("ingest/events_per_s", "higher", 0.50),
        ("windows/per_minute", "higher", 0.50),
        ("windows/fit_mean_s", "lower", 3.00),
        ("union_query/warm_mean_ms", "lower", 3.00),
        ("union_query/warm_p95_ms", "lower", 3.00),
    ],
    "BENCH_synth.json": [
        # accuracy bar is absolute (1.5x the synopsis noise error);
        # the gate also catches creeping drift against the baseline
        ("accuracy/l1_ratio", "lower", 0.40),
        ("sampling/records_per_s", "higher", 0.50),
        ("synthesis/fit_s", "lower", 3.00),
    ],
}


def lookup(data: dict, path: str):
    """Resolve a ``/``-separated metric path into a nested dict."""
    node = data
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_metric(fresh, baseline, direction: str, tolerance: float) -> dict:
    """One metric verdict: ``{fresh, baseline, ratio, ok, reason}``."""
    out = {"fresh": fresh, "baseline": baseline, "direction": direction,
           "tolerance": tolerance, "ratio": None, "ok": True, "reason": ""}
    if fresh is None or baseline is None:
        out["ok"] = False
        out["reason"] = "metric missing from %s file" % (
            "fresh" if fresh is None else "baseline"
        )
        return out
    if not isinstance(fresh, (int, float)) or not isinstance(
        baseline, (int, float)
    ):
        out["ok"] = False
        out["reason"] = f"non-numeric metric ({fresh!r} vs {baseline!r})"
        return out
    if baseline == 0:
        out["reason"] = "zero baseline; skipped"
        return out
    out["ratio"] = fresh / baseline
    if direction == "higher":
        if fresh < baseline * (1 - tolerance):
            out["ok"] = False
            out["reason"] = (
                f"regressed: {fresh:.6g} < {baseline:.6g} "
                f"* (1 - {tolerance:g})"
            )
    elif direction == "lower":
        if fresh > baseline * (1 + tolerance):
            out["ok"] = False
            out["reason"] = (
                f"regressed: {fresh:.6g} > {baseline:.6g} "
                f"* (1 + {tolerance:g})"
            )
    else:
        out["ok"] = False
        out["reason"] = f"unknown direction {direction!r}"
    return out


def check_file(fresh_path: pathlib.Path, baseline_path: pathlib.Path,
               checks: list) -> dict:
    """Gate one benchmark file; returns its history record."""
    record = {
        "type": "bench_regression_check",
        "ts": time.time(),
        "bench": fresh_path.name,
        "ok": True,
        "metrics": {},
    }
    if not baseline_path.exists():
        record["ok"] = False
        record["error"] = f"no baseline at {baseline_path}"
        return record
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    record["benchmark_id"] = fresh.get("benchmark")
    for path, direction, tolerance in checks:
        verdict = check_metric(
            lookup(fresh, path), lookup(baseline, path), direction, tolerance
        )
        record["metrics"][path] = verdict
        if not verdict["ok"]:
            record["ok"] = False
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json files against committed "
        "baselines and fail on regressions"
    )
    parser.add_argument(
        "benchmarks", nargs="*", metavar="NAME",
        help="benchmark files to gate (default: every configured one)",
    )
    parser.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="directory holding the fresh BENCH_*.json files (default: .)",
    )
    parser.add_argument(
        "--baseline-dir", default="results/bench_baselines", metavar="DIR",
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--history", default="results/bench_history.jsonl", metavar="PATH",
        help="JSON-lines file to append run records to",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append to the history file",
    )
    parser.add_argument(
        "--checks", default=None, metavar="PATH",
        help="JSON file overriding the default checks "
        '({"BENCH_x.json": [["path", "higher|lower", tol], ...]})',
    )
    args = parser.parse_args(argv)

    checks = DEFAULT_CHECKS
    if args.checks:
        try:
            checks = {
                name: [tuple(entry) for entry in entries]
                for name, entries in json.loads(
                    pathlib.Path(args.checks).read_text()
                ).items()
            }
        except (OSError, ValueError) as exc:
            print(f"error: cannot read --checks file: {exc}", file=sys.stderr)
            return 2

    names = args.benchmarks or sorted(checks)
    unknown = [name for name in names if name not in checks]
    if unknown:
        print(
            f"error: no checks configured for {unknown}; "
            f"known: {sorted(checks)}", file=sys.stderr,
        )
        return 2

    bench_dir = pathlib.Path(args.bench_dir)
    baseline_dir = pathlib.Path(args.baseline_dir)
    records = []
    failed = False
    for name in names:
        fresh_path = bench_dir / name
        if not fresh_path.exists():
            print(f"  skip  {name} (no fresh file at {fresh_path})")
            continue
        record = check_file(fresh_path, baseline_dir / name, checks[name])
        records.append(record)
        if "error" in record:
            print(f"  FAIL  {name}: {record['error']}")
            failed = True
            continue
        for path, verdict in record["metrics"].items():
            mark = "ok" if verdict["ok"] else "FAIL"
            ratio = verdict["ratio"]
            detail = (
                f"{verdict['fresh']:.6g} vs baseline "
                f"{verdict['baseline']:.6g} (x{ratio:.3f})"
                if ratio is not None
                else verdict["reason"]
            )
            print(f"  {mark:4s}  {name}:{path}  {detail}")
            if not verdict["ok"]:
                if verdict["reason"] and ratio is not None:
                    print(f"        {verdict['reason']}")
                failed = True

    if not records:
        print("error: no fresh benchmark files found; run the benchmark "
              "suite first", file=sys.stderr)
        return 2

    if not args.no_history:
        history = pathlib.Path(args.history)
        history.parent.mkdir(parents=True, exist_ok=True)
        with history.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"appended {len(records)} record(s) to {history}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
