"""End-to-end smoke check for the live telemetry plane.

Run from the repository root::

    python scripts/obs_smoke.py [--port 0] [--epsilon 2.0]

Boots a server with tracing fully sampled and a metrics-snapshot
writer attached, drives a mixed covered/derived/solved load through
``QueryClient``, then verifies the whole telemetry contract:

* ``GET /metrics`` parses as Prometheus text exposition and contains
  the ``serve_request_seconds`` histogram with per-path, per-dataset
  bucket series;
* the p95 derived from the scraped buckets agrees with the engine's
  internal quantile (``/stats`` → ``latency``) within one bucket
  (the buckets are log-spaced factor-2, so ratio ≤ 2);
* a traced query shows one trace id in the client, the server's
  access log, and every engine/planner span it produced;
* a rejected request raises a typed error carrying the request id;
* the JSON-lines snapshot file has records and ``repro obs dump``
  renders both a live server and the snapshot file.

Exits non-zero on any failed check.  This is the script the CI
``obs-gate`` job runs.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import repro.obs as obs
from repro.cli import main as cli_main
from repro.core.priview import PriView
from repro.core.serialization import save_synopsis
from repro.covering.repository import best_design
from repro.exceptions import RemoteQueryError
from repro.marginals.dataset import BinaryDataset
from repro.obs import propagation
from repro.obs.exporters import read_metrics_snapshots
from repro.obs.prometheus import histogram_quantile, parse_prometheus
from repro.serve import QueryClient, serve_source

COVERED = (0, 1)
DERIVABLE = (0, 2, 4)        # subset of SOLVED -> derived once cached
SOLVED = (0, 2, 4, 6, 8)
TRACED = (1, 3, 5, 7)        # fresh solver work for the traced request


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}  {message}")
    if not condition:
        failures.append(message)


def spans_named(roots, name: str) -> list:
    found = []
    stack = list(roots)
    while stack:
        span = stack.pop()
        if span.name == name:
            found.append(span)
        stack.extend(span.children)
    return found


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=2.0)
    args = parser.parse_args()
    failures: list[str] = []

    print("fitting a d=10 synopsis ...")
    rng = np.random.default_rng(2014)
    data = (rng.random((4000, 10)) < 0.3).astype(np.uint8)
    design = best_design(10, 4, 2)
    synopsis = PriView(args.epsilon, design=design, seed=3).fit(
        BinaryDataset(data)
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = save_synopsis(synopsis, pathlib.Path(tmp) / "synopsis.npz")
        snapshots_path = pathlib.Path(tmp) / "metrics.jsonl"
        with obs.session(ledger=False) as sess:
            server = serve_source(
                path,
                port=args.port,
                trace_sample_rate=1.0,
                metrics_out=snapshots_path,
                metrics_interval_s=0.2,
            ).start()
            try:
                client = QueryClient(server.url, trace=True)
                print(f"serving at {server.url}; driving load ...")
                for _ in range(3):
                    client.marginal(SOLVED)
                    client.marginal(COVERED)
                    client.marginal(DERIVABLE)
                    client.batch([COVERED, SOLVED, DERIVABLE])

                # -- /metrics exposition ------------------------------
                text = client.metrics()
                families = parse_prometheus(text)  # raises if malformed
                check(
                    "serve_request_seconds" in families,
                    "scrape exposes the serve_request_seconds histogram",
                    failures,
                )
                samples = families["serve_request_seconds"]["samples"]
                bucket_paths = {
                    labels.get("path")
                    for name, labels, _ in samples
                    if name.endswith("_bucket")
                }
                check(
                    {"covered", "derived", "solved"} <= bucket_paths,
                    f"buckets labeled by planner path ({sorted(bucket_paths)})",
                    failures,
                )
                datasets = {
                    labels.get("dataset")
                    for name, labels, _ in samples
                    if name.endswith("_bucket")
                }
                check(
                    datasets == {"default"},
                    f"buckets labeled by dataset ({sorted(datasets)})",
                    failures,
                )
                check(
                    families.get("serve_path_requests_total", {}).get("type")
                    == "counter",
                    "path counters re-labeled into one family",
                    failures,
                )

                # -- scraped p95 vs internal quantile -----------------
                scraped_p95 = histogram_quantile(samples, 0.95)
                latency = client.stats()["latency"]
                internal_p95 = latency["p95"]
                ratio = scraped_p95 / internal_p95
                check(
                    0.5 <= ratio <= 2.0,
                    f"scraped p95 {scraped_p95:.3g}s within one bucket of "
                    f"internal {internal_p95:.3g}s (x{ratio:.3f})",
                    failures,
                )

                # -- end-to-end trace propagation ---------------------
                context = propagation.new_context()
                with propagation.trace_scope(context):
                    client.marginal(TRACED)
                check(
                    client.last_trace["trace_id"] == context.trace_id,
                    "client sees its own trace id in the response",
                    failures,
                )
                access = [
                    record for record in server.access_log()
                    if record["trace_id"] == context.trace_id
                ]
                check(
                    len(access) == 1 and access[0]["status"] == 200,
                    "access log records the traced request once",
                    failures,
                )
                request_spans = [
                    span for span in spans_named(
                        sess.tracer.roots, "serve.request"
                    )
                    if span.trace_id == context.trace_id
                ]
                check(
                    len(request_spans) == 1,
                    "exactly one engine span carries the trace id",
                    failures,
                )
                compute = spans_named(request_spans, "serve.compute.solved")
                check(
                    bool(compute)
                    and all(
                        s.trace_id == context.trace_id for s in compute
                    ),
                    "planner/solver spans inherit the trace id",
                    failures,
                )

                # -- typed errors -------------------------------------
                try:
                    client.marginal((0, 0))
                    check(False, "duplicate attrs raise RemoteQueryError",
                          failures)
                except RemoteQueryError as exc:
                    check(
                        exc.status == 400
                        and exc.error_type == "QueryError"
                        and bool(exc.request_id),
                        f"typed error carries status/type/request id "
                        f"({exc.status}, {exc.error_type}, "
                        f"{exc.request_id})",
                        failures,
                    )

                # -- CLI dump against the live server -----------------
                out = io.StringIO()
                with contextlib.redirect_stdout(out):
                    code = cli_main(["obs", "dump", "--url", server.url])
                check(
                    code == 0 and "serve_request_seconds_bucket"
                    in out.getvalue(),
                    "repro obs dump --url renders the live registry",
                    failures,
                )

                time.sleep(0.5)  # let the snapshot writer tick
            finally:
                server.shutdown()
            print("server shut down")

            records = read_metrics_snapshots(snapshots_path)
            check(
                len(records) >= 2
                and any("histograms" in r for r in records),
                f"snapshot writer left {len(records)} JSON-lines records",
                failures,
            )
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = cli_main(
                    ["obs", "dump", "--snapshots", str(snapshots_path)]
                )
            check(
                code == 0 and "serve_request_seconds" in out.getvalue(),
                "repro obs dump --snapshots renders the final snapshot",
                failures,
            )

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
