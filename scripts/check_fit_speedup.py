"""Smoke-check the bit-sliced kernel speedup on a small workload.

Run from the repository root::

    python scripts/check_fit_speedup.py [--repeats 3] [--min-speedup 3.0]

Times marginal extraction on a synthetic d=32, N=200k dataset over the
bundled C_3(8, d=32) design — ``BinaryDataset.marginal`` (uint8 gather
+ bincount) vs. ``PackedDataset.marginal`` (bit-sliced popcount) — and
exits non-zero unless the packed kernel is at least ``--min-speedup``
times faster.  Extraction is the gated quantity because it is what the
kernels replace; at this deliberately small smoke size the end-to-end
``PriView.fit`` ratio is dominated by consistency post-processing
(identical on both paths), so it is reported for context but not
gated.  The full-scale end-to-end bar (5x on d=64, N=1M) lives in
``benchmarks/test_bench_fit.py``, which writes ``BENCH_fit.json``.

Also sanity-checks correctness on the way: a noise-free packed fit
must be bitwise identical to the legacy path.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.marginals.dataset import BinaryDataset

N = 200_000
D = 32


def make_dataset() -> BinaryDataset:
    rng = np.random.default_rng(0)
    profiles = rng.random((4, D)) * 0.6
    types = rng.integers(0, 4, N)
    return BinaryDataset(
        (rng.random((N, D)) < profiles[types]).astype(np.uint8), name="smoke"
    )


def time_marginals(source, blocks, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        for block in blocks:
            source.marginal(block)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def time_fit(dataset, design, repeats: int, **fit_opts) -> float:
    times = []
    for seed in range(repeats):
        start = time.perf_counter()
        PriView(1.0, design=design, seed=seed, **fit_opts).fit(dataset)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required unpacked/packed marginal-time ratio (default 3.0)",
    )
    args = parser.parse_args()

    dataset = make_dataset()
    design = best_design(D, 8, 3)
    blocks = list(design.blocks)

    # Correctness gate: with epsilon=inf the packed path must release
    # exactly what the legacy path releases.
    exact = PriView(float("inf"), design=design, seed=0).fit(dataset)
    exact_packed = PriView(
        float("inf"), design=design, seed=0, packed=True
    ).fit(dataset)
    for a, b in zip(exact.views, exact_packed.views):
        assert a.attrs == b.attrs
        assert np.array_equal(a.counts, b.counts), a.attrs
    print(f"packed == legacy on {design.notation} (noise-free): OK")

    # Caches (projection maps, packed words) are warm from the gate
    # above; what follows measures steady-state extraction only.
    packed_source = dataset.packed()
    legacy = time_marginals(dataset, blocks, args.repeats)
    packed = time_marginals(packed_source, blocks, args.repeats)
    speedup = legacy / packed

    print(f"marginal extraction, median over {args.repeats} runs "
          f"(N={N}, d={D}, {design.notation}, {len(blocks)} views):")
    print(f"  unpacked: {legacy * 1e3:9.2f} ms  "
          f"({legacy / len(blocks) * 1e3:.2f} ms/view)")
    print(f"  packed:   {packed * 1e3:9.2f} ms  "
          f"({packed / len(blocks) * 1e3:.2f} ms/view)")
    print(f"  speedup:  {speedup:9.2f}x  (required {args.min_speedup}x)")

    # Context only (not gated here — see module docstring): the
    # end-to-end ratio at full scale is asserted by the benchmark.
    fit_legacy = time_fit(dataset, design, args.repeats)
    fit_packed = time_fit(dataset, design, args.repeats, packed=True)
    print(f"PriView.fit for context: legacy {fit_legacy * 1e3:.0f} ms, "
          f"packed {fit_packed * 1e3:.0f} ms "
          f"({fit_legacy / fit_packed:.2f}x, post-processing bound)")

    if speedup < args.min_speedup:
        print("FAIL: packed kernels below required speedup", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
