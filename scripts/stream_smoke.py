"""End-to-end smoke check for the streaming subsystem.

Run from the repository root::

    python scripts/stream_smoke.py [--windows 3] [--epsilon 1.0]

Exercises the full streaming vertical in one process: ingest a
timestamped JSON-lines event stream into event-time tumbling windows
(with one deliberately late event), fit and auto-publish one synopsis
per window under a per-window epsilon schedule, prove via
``ledger.check()`` that parallel composition across the disjoint
windows cost exactly one window's epsilon, boot a ``--watch`` HTTP
server and confirm the published windows are visible live, publish an
extra window under concurrent query load with zero failed requests,
and answer a last-3-windows union marginal that must equal the
record-weighted merge of the per-window ground truth (exactly, since
the smoke runs at epsilon=inf for the exactness leg).  Exits non-zero
on any mismatch.  This is the script the ``stream-gate`` CI job runs
after the stream tests.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import tempfile
import threading

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs
from repro.serve import QueryClient, serve_store
from repro.store import SynopsisStore
from repro.stream import (
    BudgetSchedule,
    CountWindowPolicy,
    TimeWindowPolicy,
    WindowScheduler,
    WindowShard,
    as_event,
    read_jsonl_events,
)

D = 8
PER_WINDOW = 400
ATTRS = (0, 3)


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}  {message}")
    if not condition:
        failures.append(message)


def write_events(path: pathlib.Path, windows: int) -> list[dict]:
    """Timestamped events, one window per second, plus one straggler."""
    rng = np.random.default_rng(17)
    events = []
    for i in range(windows * PER_WINDOW):
        items = [int(x) for x in np.nonzero(rng.random(D) < 0.35)[0]]
        events.append({"items": items, "ts": i / PER_WINDOW})
    # A straggler for window 0 arriving after the watermark passed it.
    # The event-time leg drops it as late; the count-window leg packs it
    # into a 1-record tail window.
    events.append({"items": [0], "ts": 0.5})
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    return events


def ground_truth(events: list[dict], lo: int, hi: int) -> np.ndarray:
    shard = WindowShard(D, chunk_records=64)
    for event in events[lo:hi]:
        shard.add(as_event(event))
    return shard.finish().marginal(ATTRS).counts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--windows", type=int, default=3)
    parser.add_argument(
        "--epsilon", type=float, default=1.0,
        help="per-window epsilon for the audited (noisy) leg",
    )
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args()
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="stream-smoke-") as tmp:
        tmp_path = pathlib.Path(tmp)
        events = write_events(tmp_path / "events.jsonl", args.windows)

        # -- leg 1: noisy run, exact parallel-composition audit -------
        print(f"[1/3] windowed releases under epsilon={args.epsilon}")
        store = SynopsisStore(tmp_path / "noisy")
        with obs.session() as sess:
            released = WindowScheduler(
                store, "events", D, BudgetSchedule(args.epsilon),
                TimeWindowPolicy(1.0, lateness=0.2), view_width=4,
            ).run(read_jsonl_events(tmp_path / "events.jsonl"))
            try:
                sess.ledger.check()
                audit_ok = True
            except Exception:
                audit_ok = False
            check(
                len(released) == args.windows,
                f"{args.windows} windows released on the epsilon schedule",
                failures,
            )
            check(audit_ok, "ledger.check() passed", failures)
            check(
                sess.ledger.total_spent() == args.epsilon,
                f"parallel composition spent exactly {args.epsilon} "
                f"(not {args.windows}x)",
                failures,
            )
            [parent] = sess.ledger.scopes
            check(
                parent.composition == "parallel"
                and len(parent.children) == args.windows,
                "one strict child scope per disjoint window",
                failures,
            )
        check(
            all(
                store.resolve(f"events@{r.version}").extra["window"]["index"]
                == r.index
                for r in released
            ),
            "every window auto-published with manifest metadata",
            failures,
        )

        # -- leg 2: exactness at epsilon=inf --------------------------
        print("[2/3] last-3-windows union vs record-weighted ground truth")
        exact_store = SynopsisStore(tmp_path / "exact")
        WindowScheduler(
            exact_store, "events", D, BudgetSchedule(math.inf),
            CountWindowPolicy(PER_WINDOW), view_width=4,
        ).run(read_jsonl_events(tmp_path / "events.jsonl"))

        # -- leg 3: live watch serving + churn ------------------------
        print("[3/3] watch serving: live visibility, zero-drop churn")
        with serve_store(
            exact_store, port=args.port, watch=True
        ) as server:
            client = QueryClient(server.url, dataset="events")
            listed = client.windows()
            check(
                [w["index"] for w in listed]
                == list(range(args.windows + 1)),
                "published windows visible through the watch server "
                "(straggler spilled into its own tail window)",
                failures,
            )
            # last=3 of the released count windows includes the
            # 1-record straggler tail window, so the ground truth is
            # the tail of the full event list (straggler included).
            last = min(3, len(listed))
            payload = client.window_marginal(ATTRS, last=last)
            lo = (len(listed) - last) * PER_WINDOW
            expected = ground_truth(events, lo, len(events))
            union = np.asarray(payload["union"]["counts"], dtype=float)
            check(
                np.allclose(union, expected),
                f"last-{last}-windows union == record-weighted merge "
                "of per-window ground truth (epsilon=inf, exact)",
                failures,
            )
            per_window = [
                np.asarray(w["counts"], dtype=float)
                for w in payload["windows"]
            ]
            check(
                np.allclose(sum(per_window), union),
                "union == cell-wise sum of the per-window answers",
                failures,
            )

            churn_failures: list[BaseException] = []
            stop = threading.Event()

            def hammer() -> None:
                hammer_client = QueryClient(server.url, dataset="events")
                while not stop.is_set():
                    try:
                        hammer_client.marginal(ATTRS)
                    except BaseException as exc:  # noqa: BLE001
                        churn_failures.append(exc)
                        return

            threads = [
                threading.Thread(target=hammer, daemon=True)
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            before = exact_store.resolve("events").version
            WindowScheduler(
                exact_store, "events", D, BudgetSchedule(math.inf),
                CountWindowPolicy(PER_WINDOW), view_width=4,
            ).run(read_jsonl_events(tmp_path / "events.jsonl"))
            deadline_version = exact_store.resolve("events").version
            client.marginal(ATTRS)  # forces a watch poll + hot swap
            stats = client.stats()
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            check(
                not churn_failures,
                "zero failed requests while publishing under load",
                failures,
            )
            check(
                deadline_version > before
                and stats["hosted"]["events"]["version"]
                == deadline_version,
                "watch server hot-swapped to the newest published window",
                failures,
            )
            check(
                stats["last_poll"] is not None
                and stats["last_swap"] is not None,
                "router stats expose last_poll / last_swap timestamps",
                failures,
            )

    if failures:
        print(f"\nstream smoke: {len(failures)} failure(s)")
        return 1
    print("\nstream smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
