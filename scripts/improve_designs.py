"""Second-pass design improvement: seeded shrink search.

Run after ``generate_designs.py``; loads each bundled design and tries
to shave blocks off with :func:`repro.covering.local_search.
shrink_design` under a per-target time budget, overwriting the bundled
file whenever the search improves it.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.covering.bounds import schonheim_bound
from repro.covering.local_search import shrink_design
from repro.covering.repository import load_bundled_design, save_design

DATA_DIR = pathlib.Path(__file__).resolve().parents[1] / "src/repro/covering/data"

#: (d, l, t, time budget seconds)
TARGETS = [
    (45, 8, 2, 120),
    (32, 8, 3, 420),
    (32, 10, 3, 240),
    (45, 8, 3, 600),
    (32, 8, 4, 420),
    (32, 5, 2, 60),
    (32, 6, 2, 60),
    (32, 7, 2, 60),
    (32, 9, 2, 60),
    (32, 10, 2, 60),
    (32, 11, 2, 60),
    (32, 12, 2, 60),
]

PAPER_W = {(32, 8, 3): 106, (45, 8, 2): 42, (45, 8, 3): 326, (32, 8, 4): 620}


def main() -> None:
    rng = np.random.default_rng(1995)  # Gordon-Kuperberg-Patashnik year
    for d, l, t, budget in TARGETS:
        design = load_bundled_design(d, l, t)
        if design is None:
            print(f"d={d} l={l} t={t}: no bundled design, skipping")
            continue
        before = design.num_blocks
        improved = shrink_design(design, rng=rng, time_budget=budget)
        improved.validate()
        note = f" (paper {PAPER_W[(d, l, t)]})" if (d, l, t) in PAPER_W else ""
        print(
            f"d={d} l={l} t={t}: w {before} -> {improved.num_blocks} "
            f"(bound {schonheim_bound(d, l, t)}{note})"
        )
        if improved.num_blocks < before:
            save_design(improved, DATA_DIR)


if __name__ == "__main__":
    main()
