"""Regenerate every experiment at the full Section 5 protocol.

Run from the repository root (expect several hours):

    python scripts/run_paper_scale.py [--scale medium] [results_dir]

Writes one text report per experiment under ``results/`` (or the given
directory), each containing the rendered table and the ASCII chart.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("results_dir", nargs="?", default="results")
    parser.add_argument("--scale", default="paper")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    out_dir = pathlib.Path(args.results_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id in sorted(EXPERIMENTS):
        start = time.time()
        print(f"running {experiment_id} at scale={args.scale} ...", flush=True)
        report = run_experiment(
            experiment_id, scale=args.scale, seed=args.seed, chart=True
        )
        path = out_dir / f"{experiment_id}.txt"
        path.write_text(report + "\n")
        print(f"  wrote {path} ({time.time() - start:.0f}s)", flush=True)


if __name__ == "__main__":
    main()
