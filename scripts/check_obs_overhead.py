"""Smoke-check the cost of the observability instrumentation.

Run from the repository root::

    python scripts/check_obs_overhead.py [--repeats 5] [--budget 1.03]

Times ``PriView.fit`` on the quick-scale Kosarak protocol twice: with
observability disabled (no active session — the production default)
and with a full tracing/ledger session active.  The disabled path must
cost essentially nothing (it is a global ``None`` check per
instrumentation point), and the enabled path must stay within the
given budget of the disabled one.  Exits non-zero when the enabled /
disabled ratio exceeds ``--budget``.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.experiments.config import get_scale
from repro.experiments.data import experiment_dataset


def time_fits(dataset, design, repeats: int) -> list[float]:
    times = []
    for seed in range(repeats):
        start = time.perf_counter()
        PriView(1.0, design=design, seed=seed).fit(dataset)
        times.append(time.perf_counter() - start)
    return times


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--budget", type=float, default=1.03,
        help="max allowed enabled/disabled median ratio (default 1.03)",
    )
    parser.add_argument("--scale", default="quick")
    args = parser.parse_args()

    scale = get_scale(args.scale)
    dataset = experiment_dataset("kosarak", scale)
    design = best_design(32, 8, 2)

    # Warm caches (projection maps, design lookup) out of the measurement.
    PriView(1.0, design=design, seed=0).fit(dataset)

    assert not obs.enabled(), "no session must be active for the baseline"
    disabled = time_fits(dataset, design, args.repeats)
    with obs.session():
        enabled = time_fits(dataset, design, args.repeats)

    dis, ena = statistics.median(disabled), statistics.median(enabled)
    ratio = ena / dis
    print(f"PriView.fit median over {args.repeats} runs (scale={scale.name}):")
    print(f"  observability disabled: {dis * 1e3:9.2f} ms")
    print(f"  observability enabled:  {ena * 1e3:9.2f} ms")
    print(f"  enabled/disabled ratio: {ratio:9.4f}  (budget {args.budget})")
    if ratio > args.budget:
        print("FAIL: instrumentation overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
