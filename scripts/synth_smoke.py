"""End-to-end smoke check for the synthesis subsystem.

Run from the repository root::

    python scripts/synth_smoke.py [--records 50000] [--epsilon 2.0]

Exercises the whole record-level vertical in one process: fit a mixed
categorical synopsis with a rich Domain, synthesize a record
population from it (checking the L1 error history is monotone and the
run is bit-deterministic under a fixed seed), prove via the privacy
ledger that synthesis spent exactly zero epsilon, publish the
synopsis to a store and serve it over HTTP, draw coded and decoded
record samples through the ``/v1/d/{name}/sample`` route, and answer
a record-level filter query against the synthetic population.  Exits
non-zero on any mismatch.  This is the script CI's synth gate runs
after the tier-1 suite.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs
from repro.categorical.dataset import CategoricalDataset
from repro.categorical.priview import CategoricalPriView
from repro.core.serialization import save_synopsis
from repro.marginals.domain import Attribute, Domain
from repro.serve import QueryClient, serve_store
from repro.store import SynopsisStore
from repro.synth import RecordSampler, Synthesizer


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}  {message}")
    if not condition:
        failures.append(message)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--records", type=int, default=50_000)
    parser.add_argument("--epsilon", type=float, default=2.0)
    args = parser.parse_args()
    failures: list[str] = []

    domain = Domain((
        Attribute("age", 5, kind="numeric", bins=(0.0, 20, 35, 50, 65, 100)),
        Attribute("job", 4, labels=("none", "blue", "white", "self")),
        Attribute("married", 2),
        Attribute("kids", 4, kind="ordinal"),
        Attribute("region", 6),
        Attribute("income", 8, kind="ordinal"),
        Attribute("urban", 2),
        Attribute("health", 3, labels=("poor", "fair", "good")),
    ))
    rng = np.random.default_rng(2014)
    dataset = CategoricalDataset.random(args.records, domain, rng=rng)

    print(f"fitting a mixed d={domain.num_attributes} synopsis ...")
    with obs.session() as sess:
        synopsis = CategoricalPriView(args.epsilon, seed=7).fit(dataset)
        print("synthesizing ...")
        records = Synthesizer(seed=11).fit(synopsis)
        again = Synthesizer(seed=11).fit(synopsis)
        audit = {row.name: row for row in sess.ledger.audit()}

    history = records.meta["history"]
    check(
        all(b <= a + 1e-9 for a, b in zip(history, history[1:])),
        f"L1 history monotone non-increasing "
        f"({history[0]:.4f} -> {history[-1]:.4f} over "
        f"{records.meta['rounds']} round(s))",
        failures,
    )
    check(
        bool(np.array_equal(records.data, again.data)),
        "synthesis bit-deterministic under a fixed seed",
        failures,
    )
    synth_row = audit.get("Synthesizer.fit")
    check(
        synth_row is not None
        and synth_row.configured == 0.0
        and synth_row.spent_max == 0.0
        and synth_row.status == "exact",
        "ledger proves synthesis spent zero epsilon "
        f"(scope: {synth_row.name} configured={synth_row.configured:g} "
        f"spent={synth_row.spent_max:g} status={synth_row.status})"
        if synth_row else "ledger has a Synthesizer.fit scope",
        failures,
    )
    fit_row = audit.get("CategoricalPriView.fit")
    check(
        fit_row is not None and fit_row.spent_max == args.epsilon,
        f"fit spent its configured epsilon ({args.epsilon:g})",
        failures,
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        store = SynopsisStore(tmp / "store")
        path = save_synopsis(synopsis, tmp / "synopsis.npz")
        info = store.publish("smoke", path)
        check(
            info.domain is not None
            and Domain.from_json(info.domain) == domain,
            "published version records the domain schema",
            failures,
        )

        print("serving the store ...")
        server = serve_store(store, port=0).start()
        try:
            host, port = server.address
            client = QueryClient(f"http://{host}:{port}", dataset="smoke")
            payload = client.sample(500, seed=3)
            check(
                payload["attributes"] == list(domain.names)
                and payload["arities"] == list(domain.arities)
                and len(payload["records"]) == 500,
                "HTTP sample returns 500 coded records with the schema",
                failures,
            )
            check(
                payload["records"] == client.sample(500, seed=3)["records"],
                "seeded HTTP samples are reproducible",
                failures,
            )
            decoded = client.sample(100, seed=4, decode=True)
            jobs = {row[1] for row in decoded["records"]}
            check(
                decoded["decoded"]
                and jobs <= {"none", "blue", "white", "self"},
                "decoded samples carry attribute labels",
                failures,
            )
        finally:
            server.shutdown()

    # record-level filter queries over the population
    by_code = records.count(married=1)
    total = sum(
        records.count(married=v) for v in range(2)
    )
    check(
        total == records.num_records,
        "filter counts partition the population",
        failures,
    )
    married = domain.index("married")
    true_frac = dataset.marginal((married,)).counts[1] / args.records
    check(
        abs(records.fraction(married=1) - true_frac) < 0.05,
        f"synthetic marriage rate {records.fraction(married=1):.3f} "
        f"tracks the true rate {true_frac:.3f}",
        failures,
    )
    del by_code

    sampler = RecordSampler(records, seed=0)
    batch = sampler.sample(10_000)
    check(
        batch.shape == (10_000, domain.num_attributes),
        "sampler draws 10k-record batches",
        failures,
    )

    if failures:
        print(f"\nsynth smoke FAILED ({len(failures)} mismatch(es))")
        return 1
    print("\nsynth smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
