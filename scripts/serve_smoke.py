"""End-to-end smoke check for the serving subsystem.

Run from the repository root::

    python scripts/serve_smoke.py [--port 0] [--epsilon 2.0]

Exercises the full publish-and-serve lifecycle in one process: fit a
small synopsis, save it to disk, boot an HTTP server from the saved
file on an ephemeral port, query it over the wire with
``repro.serve.QueryClient`` (single, duplicate-heavy batch, and an
intentionally malformed request), verify ``/stats`` accounts for every
request by planner path, and shut the server down.  Exits non-zero on
any mismatch.  This is the script CI runs after the tier-1 suite.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.priview import PriView
from repro.core.serialization import save_synopsis
from repro.covering.repository import best_design
from repro.exceptions import QueryError
from repro.marginals.dataset import BinaryDataset
from repro.serve import QueryClient, serve_source

COVERED = (0, 1)             # pairs are covered by any t=2 design
UNCOVERED = (0, 2, 4, 6, 8)  # 5 attrs cannot fit a size-4 block


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}  {message}")
    if not condition:
        failures.append(message)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=2.0)
    args = parser.parse_args()
    failures: list[str] = []

    print("fitting a d=10 synopsis ...")
    rng = np.random.default_rng(2014)
    data = (rng.random((4000, 10)) < 0.3).astype(np.uint8)
    design = best_design(10, 4, 2)
    synopsis = PriView(args.epsilon, design=design, seed=3).fit(
        BinaryDataset(data)
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = save_synopsis(synopsis, pathlib.Path(tmp) / "synopsis.npz")
        print(f"saved to {path}; serving ...")
        server = serve_source(path, port=args.port).start()
        try:
            client = QueryClient(server.url)
            print(f"serving at {server.url}")

            health = client.healthz()
            check(health["status"] == "ok", "healthz reports ok", failures)

            answer = client.marginal(COVERED)
            check(answer["path"] == "covered", "pair query is covered", failures)
            answer = client.marginal(UNCOVERED)
            check(
                answer["path"] == "solved",
                "uncovered query hits the solver",
                failures,
            )
            table = client.marginal_table(UNCOVERED)
            check(
                table.attrs == UNCOVERED and len(table.counts) == 2 ** 5,
                "5-way marginal decodes to a MarginalTable",
                failures,
            )
            local = synopsis.marginal(UNCOVERED)
            check(
                np.allclose(table.counts, local.counts),
                "served counts match local reconstruction",
                failures,
            )

            batch = client.batch([COVERED, COVERED[::-1], UNCOVERED])
            check(
                batch["count"] == 3 and batch["distinct"] == 2,
                "batch de-duplicates equivalent attr sets",
                failures,
            )

            try:
                client.marginal((0, 0))
                check(False, "duplicate attrs rejected with 400", failures)
            except QueryError:
                check(True, "duplicate attrs rejected with 400", failures)

            stats = client.stats()
            paths = stats["paths"]
            check(
                stats["requests"] == sum(paths.values()),
                f"stats account for every request ({stats['requests']} "
                f"== sum of {paths})",
                failures,
            )
            check(paths["error"] == 1, "exactly one error recorded", failures)
        finally:
            server.shutdown()
        print("server shut down")

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
