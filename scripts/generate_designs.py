"""Precompute the covering designs bundled with the package.

Run from the repository root::

    python scripts/generate_designs.py

Writes ``src/repro/covering/data/cover_d{d}_l{l}_t{t}.txt`` for every
parameter set the experiments use that has no exact algebraic
construction.  Greedy construction is followed by redundancy pruning
and a bounded annealing descent that tries to shave blocks off.
The paper's best-known block counts (from the La Jolla repository) are
printed alongside for reference.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.covering.bounds import schonheim_bound
from repro.covering.greedy import greedy_cover
from repro.covering.local_search import anneal_cover
from repro.covering.repository import algebraic_design, save_design

DATA_DIR = pathlib.Path(__file__).resolve().parents[1] / "src/repro/covering/data"

#: (d, l, t, annealing attempts, anneal steps)
TARGETS = [
    (9, 6, 2, 8, 60_000),
    (9, 8, 2, 4, 30_000),
    (32, 5, 2, 6, 120_000),
    (32, 6, 2, 6, 120_000),
    (32, 7, 2, 6, 120_000),
    (32, 9, 2, 6, 120_000),
    (32, 10, 2, 6, 120_000),
    (32, 11, 2, 6, 120_000),
    (32, 12, 2, 6, 120_000),
    (32, 8, 3, 5, 250_000),
    (32, 10, 3, 4, 250_000),
    (32, 8, 4, 0, 0),
    (45, 8, 2, 8, 200_000),
    (45, 8, 3, 3, 300_000),
]

#: best-known sizes from the paper / La Jolla, for the report only
PAPER_W = {(32, 8, 3): 106, (45, 8, 2): 42, (45, 8, 3): 326}


def build(d: int, l: int, t: int, attempts: int, steps: int, rng) -> None:
    if algebraic_design(d, l, t) is not None:
        print(f"d={d} l={l} t={t}: exact algebraic construction, skipping")
        return
    start = time.time()
    design = greedy_cover(d, l, t, rng).drop_redundant()
    print(
        f"d={d} l={l} t={t}: greedy w={design.num_blocks} "
        f"(bound {schonheim_bound(d, l, t)}"
        + (f", paper {PAPER_W[(d, l, t)]}" if (d, l, t) in PAPER_W else "")
        + ")"
    )
    for _ in range(attempts):
        smaller = anneal_cover(
            d, l, t, design.num_blocks - 1, rng=rng, max_steps=steps, restarts=2
        )
        if smaller is None:
            break
        design = smaller.drop_redundant()
        print(f"  annealed down to w={design.num_blocks}")
    design.validate()
    path = save_design(design, DATA_DIR)
    print(
        f"  saved {path.name}: w={design.num_blocks} "
        f"({time.time() - start:.1f}s)"
    )


def main() -> None:
    rng = np.random.default_rng(20140622)  # SIGMOD'14 started June 22
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for d, l, t, attempts, steps in TARGETS:
        build(d, l, t, attempts, steps, rng)


if __name__ == "__main__":
    main()
