"""End-to-end smoke check for the synopsis-store subsystem.

Run from the repository root::

    python scripts/store_smoke.py [--port 0] [--epsilon 2.0]

Exercises the full registry lifecycle in one process: fit two small
synopses for different datasets, publish them, verify the store, boot
a multi-dataset HTTP server on an ephemeral port, answer a covered
marginal for each dataset bitwise-identically to the synopsis's own
``marginal()``, publish a new version under concurrent query load and
hot-swap it via ``POST /v1/reload`` with zero failed requests,
simulate a publisher killed between temp-write and rename (the store
must stay clean and keep serving), and garbage-collect the leftovers.
Exits non-zero on any mismatch.  This is the script the ``store-gate``
CI job runs after the tier-1 suite.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import threading

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.exceptions import QueryError
from repro.marginals.dataset import BinaryDataset
from repro.serve import QueryClient, serve_store
from repro.store import SynopsisStore, artifacts

COVERED = (0, 1)  # pairs are covered by any t=2 design


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}  {message}")
    if not condition:
        failures.append(message)


def fit(d: int, seed: int, epsilon: float):
    rng = np.random.default_rng(900 + seed)
    data = (rng.random((3000, d)) < 0.3).astype(np.uint8)
    design = best_design(d, 4, 2)
    return PriView(epsilon, design=design, seed=seed).fit(BinaryDataset(data))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=2.0)
    args = parser.parse_args()
    failures: list[str] = []

    print("fitting two synopses (d=10 and d=12) ...")
    adult = fit(10, 1, args.epsilon)
    msnbc = fit(12, 2, args.epsilon / 2)
    adult_v2 = fit(10, 7, args.epsilon)

    with tempfile.TemporaryDirectory() as tmp:
        store = SynopsisStore(pathlib.Path(tmp) / "registry")
        info_a = store.publish("adult", adult, fit_seconds=0.5)
        info_m = store.publish("msnbc", msnbc, fit_seconds=0.7)
        check(
            (info_a.spec, info_m.spec) == ("adult@1", "msnbc@1"),
            "publish assigns version 1 to each dataset", failures,
        )
        check(store.verify()["clean"], "store verifies clean", failures)

        server = serve_store(store, port=args.port).start()
        try:
            client = QueryClient(server.url)
            print(f"serving store at {server.url}")
            check(
                client.healthz()["mode"] == "store",
                "healthz reports store mode", failures,
            )
            names = [d["name"] for d in client.datasets()]
            check(
                names == ["adult", "msnbc"],
                "both datasets listed", failures,
            )
            for name, synopsis in (("adult", adult), ("msnbc", msnbc)):
                payload = client.marginal(COVERED, dataset=name)
                check(
                    payload["path"] == "covered",
                    f"{name}: pair query is covered", failures,
                )
                check(
                    np.array_equal(
                        np.asarray(payload["counts"]),
                        synopsis.marginal(COVERED).counts,
                    ),
                    f"{name}: served counts bitwise equal to synopsis",
                    failures,
                )
            try:
                client.marginal(COVERED, dataset="unknown")
                check(False, "unknown dataset rejected with 404", failures)
            except QueryError:
                check(True, "unknown dataset rejected with 404", failures)

            # -- hot swap under load --------------------------------
            expected = {
                adult.marginal(COVERED).counts.tobytes(),
                adult_v2.marginal(COVERED).counts.tobytes(),
            }
            stop = threading.Event()
            load_failures: list[str] = []
            served = [0] * 4

            def hammer(slot: int) -> None:
                mine = QueryClient(server.url, dataset="adult")
                while not stop.is_set() or served[slot] == 0:
                    try:
                        answer = mine.marginal(COVERED)
                    except Exception as exc:  # noqa: BLE001
                        load_failures.append(f"{type(exc).__name__}: {exc}")
                        return
                    if np.asarray(answer["counts"]).tobytes() not in expected:
                        load_failures.append("torn answer during swap")
                        return
                    served[slot] += 1

            threads = [
                threading.Thread(target=hammer, args=(slot,), daemon=True)
                for slot in range(len(served))
            ]
            for thread in threads:
                thread.start()
            store.publish("adult", adult_v2, fit_seconds=0.5)
            summary = client.reload()
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            check(
                summary["swapped"] == [{"from": "adult@1", "to": "adult@2"}],
                "reload hot-swapped adult@1 -> adult@2", failures,
            )
            check(
                not load_failures and all(count > 0 for count in served),
                f"zero failed requests during hot swap ({sum(served)} served)",
                failures,
            )
            post = client.marginal(COVERED, dataset="adult")
            check(
                np.array_equal(
                    np.asarray(post["counts"]),
                    adult_v2.marginal(COVERED).counts,
                ),
                "post-swap answers come from adult@2", failures,
            )

            # -- crash-mid-publish simulation -----------------------
            before = store.resolve("adult").sha256
            leftover = artifacts.make_temp(
                store.objects_dir, suffix=artifacts.OBJECT_SUFFIX
            )
            leftover.write_bytes(b"writer killed between temp-write and rename")
            check(
                store.resolve("adult").sha256 == before,
                "crashed publish leaves the previous version serving",
                failures,
            )
            report = store.verify()
            check(
                report["clean"] and leftover.name in report["tmp_files"],
                "verify reports the store clean despite the leftover",
                failures,
            )
            swept = store.gc(tmp_age_s=0)
            check(
                leftover.name in swept["removed_tmp"],
                "gc sweeps the stale temp file", failures,
            )
            still = client.marginal(COVERED, dataset="adult")
            check(
                np.array_equal(
                    np.asarray(still["counts"]),
                    adult_v2.marginal(COVERED).counts,
                ),
                "serving unaffected by gc", failures,
            )
        finally:
            server.shutdown()
        print("server shut down")

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
