"""Parallel-composition budget scopes: exact audits over disjoint windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.exceptions import LedgerError
from repro.marginals.dataset import BinaryDataset
from repro.mechanisms.laplace import noisy_counts
from repro.obs.ledger import BudgetScope


def _window(d: int = 6, n: int = 200, seed: int = 0) -> BinaryDataset:
    rng = np.random.default_rng(seed)
    return BinaryDataset((rng.random((n, d)) < 0.4).astype(np.uint8))


def test_rejects_unknown_composition():
    with pytest.raises(LedgerError, match="composition"):
        BudgetScope("x", 1.0, composition="serial")


def test_parallel_scope_adopts_children_and_takes_max():
    with obs.session() as sess:
        with sess.ledger.scope("windows", 1.0, composition="parallel"):
            with sess.ledger.scope("w0", 1.0):
                noisy_counts(np.zeros(2), epsilon=1.0)
            with sess.ledger.scope("w1", 1.0):
                noisy_counts(np.zeros(2), epsilon=1.0)
            with sess.ledger.scope("w2", 1.0):
                noisy_counts(np.zeros(2), epsilon=1.0)
        [parent] = sess.ledger.scopes  # children are NOT top-level
        assert parent.name == "windows"
        assert [c.name for c in parent.children] == ["w0", "w1", "w2"]
        assert all(c.spent() == 1.0 for c in parent.children)
        assert parent.spent() == 1.0  # max, not sum
        assert parent.status == "exact"
        sess.ledger.check()
        assert sess.ledger.total_spent() == 1.0
        assert sess.ledger.total_draws() == 0  # draws live in the children


def test_parallel_check_fails_on_overspending_child():
    with obs.session() as sess:
        with sess.ledger.scope("windows", 1.0, composition="parallel"):
            with sess.ledger.scope("w0", 1.0):
                noisy_counts(np.zeros(2), epsilon=1.0)
                noisy_counts(np.zeros(2), epsilon=1.0)  # double spend
        with pytest.raises(LedgerError, match="w0"):
            sess.ledger.check()


def test_parallel_check_fails_when_aggregate_misses_configured():
    with obs.session() as sess:
        with sess.ledger.scope("windows", 1.0, composition="parallel"):
            # Child balanced against its own (smaller) budget, but the
            # schedule promised 1.0 per window.
            with sess.ledger.scope("w0", 0.5):
                noisy_counts(np.zeros(2), epsilon=0.5)
        with pytest.raises(LedgerError, match="windows"):
            sess.ledger.check()


def test_empty_parallel_scope_is_na():
    with obs.session() as sess:
        with sess.ledger.scope("windows", 1.0, composition="parallel"):
            pass
        [parent] = sess.ledger.scopes
        assert parent.status == "n/a"
        sess.ledger.check()


def test_parallel_scope_counts_own_records_additively():
    with obs.session() as sess:
        with sess.ledger.scope("windows", 1.1, composition="parallel"):
            noisy_counts(np.zeros(2), epsilon=0.1)  # scope-level overhead
            with sess.ledger.scope("w0", 1.0):
                noisy_counts(np.zeros(2), epsilon=1.0)
        [parent] = sess.ledger.scopes
        assert parent.spent() == pytest.approx(1.1)
        sess.ledger.check()


def test_sequential_nesting_keeps_legacy_flat_behavior():
    with obs.session() as sess:
        with sess.ledger.scope("outer", configured=None, strict=False):
            with sess.ledger.scope("inner", configured=0.5):
                noisy_counts(np.zeros(2), epsilon=0.5)
        outer, inner = sess.ledger.scopes
        assert outer.name == "outer" and not outer.children
        assert inner.name == "inner"
        assert sess.ledger.total_spent() == 0.5


def test_audit_row_carries_composition_and_children():
    with obs.session() as sess:
        with sess.ledger.scope("windows", 1.0, composition="parallel"):
            for i in range(2):
                with sess.ledger.scope(f"w{i}", 1.0):
                    noisy_counts(np.zeros(2), epsilon=1.0)
        [row] = sess.ledger.audit()
        assert row.composition == "parallel"
        assert row.children == 2
        assert row.ok
        [blob] = sess.ledger.to_dicts()
        assert blob["composition"] == "parallel"
        assert blob["children"] == 2


@pytest.mark.parametrize("epsilon", [1.0, 0.3])
def test_priview_fits_under_parallel_scope_audit_exactly(epsilon):
    """Three disjoint-window PriView fits cost exactly one window's
    epsilon under parallel composition — the stream schedule's claim."""
    design = best_design(6, 4, 2)
    with obs.session() as sess:
        with obs.budget_scope("stream.windows", epsilon, composition="parallel"):
            for seed in range(3):
                PriView(epsilon, design=design, seed=seed).fit(
                    _window(seed=seed)
                )
        [parent] = sess.ledger.scopes
        assert [c.name for c in parent.children] == ["PriView.fit"] * 3
        assert parent.spent() == epsilon  # exact, not approx
        assert parent.status == "exact"
        sess.ledger.check()
        assert sess.ledger.total_spent() == epsilon


def test_nested_parallel_scopes_compose():
    with obs.session() as sess:
        with sess.ledger.scope("outer", 1.0, composition="parallel"):
            with sess.ledger.scope("inner", 1.0, composition="parallel"):
                with sess.ledger.scope("w0", 1.0):
                    noisy_counts(np.zeros(2), epsilon=1.0)
        [outer] = sess.ledger.scopes
        [inner] = outer.children
        assert inner.children[0].name == "w0"
        assert outer.spent() == 1.0
        sess.ledger.check()
