"""Prometheus exposition: render, parse, quantiles from buckets."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    histogram_quantile,
    parse_prometheus,
    render_prometheus,
    sanitize_name,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.incr("serve.request", 5)
    registry.incr("serve.path.covered", 3)
    registry.incr("serve.path.solved", 2)
    registry.incr("serve.dataset.adult", 5)
    registry.set_gauge("serve.cache.size", 17)
    for value in (0.0001, 0.0002, 0.004, 0.03):
        registry.observe(
            "serve.request_seconds", value,
            {"dataset": "adult", "path": "covered"},
        )
    registry.observe(
        "serve.request_seconds", 0.2, {"dataset": "adult", "path": "solved"}
    )
    return registry


class TestRender:
    def test_sanitize(self):
        assert sanitize_name("serve.request_seconds") == "serve_request_seconds"
        assert sanitize_name("9bad name") == "_9bad_name"

    def test_counters_and_gauges(self, registry):
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serve_request_total counter" in text
        assert "serve_request_total 5" in text
        assert "# TYPE serve_cache_size gauge" in text
        assert "serve_cache_size 17" in text

    def test_dotted_path_counters_become_labels(self, registry):
        text = render_prometheus(registry.snapshot())
        assert 'serve_path_requests_total{path="covered"} 3' in text
        assert 'serve_path_requests_total{path="solved"} 2' in text
        assert 'serve_dataset_requests_total{dataset="adult"} 5' in text

    def test_histogram_family(self, registry):
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serve_request_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "serve_request_seconds_count" in text
        assert "serve_request_seconds_sum" in text
        # buckets are cumulative within each labeled series
        families = parse_prometheus(text)
        samples = families["serve_request_seconds"]["samples"]
        covered = sorted(
            (
                math.inf if labels["le"] == "+Inf" else float(labels["le"]),
                value,
            )
            for name, labels, value in samples
            if name.endswith("_bucket") and labels.get("path") == "covered"
        )
        counts = [count for _, count in covered]
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestParse:
    def test_round_trip(self, registry):
        families = parse_prometheus(render_prometheus(registry.snapshot()))
        assert families["serve_request_total"]["type"] == "counter"
        assert families["serve_request_seconds"]["type"] == "histogram"
        (sample,) = families["serve_cache_size"]["samples"]
        assert sample == ("serve_cache_size", {}, 17.0)

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not { a metric\n")

    def test_malformed_value_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("metric_name garbage\n")

    def test_escaped_labels(self):
        text = 'm{k="a\\"b"} 1\n'
        families = parse_prometheus(text)
        (sample,) = families["m"]["samples"]
        assert sample[1] == {"k": 'a"b'}


class TestHistogramQuantile:
    def test_matches_internal_quantile_within_bucket(self, registry):
        families = parse_prometheus(render_prometheus(registry.snapshot()))
        samples = families["serve_request_seconds"]["samples"]
        scraped = histogram_quantile(samples, 0.95)
        internal = registry.histogram("serve.request_seconds").quantile(0.95)
        assert internal / 2 <= scraped <= internal * 2

    def test_sums_across_label_sets(self):
        samples = [
            ("m_bucket", {"path": "a", "le": "1"}, 5.0),
            ("m_bucket", {"path": "a", "le": "+Inf"}, 5.0),
            ("m_bucket", {"path": "b", "le": "1"}, 0.0),
            ("m_bucket", {"path": "b", "le": "+Inf"}, 5.0),
        ]
        # half the mass below 1, half above: p25 inside [0, 1]
        assert 0 < histogram_quantile(samples, 0.25) <= 1
        # p95 in the +Inf bucket clamps to the last finite bound
        assert histogram_quantile(samples, 0.95) == pytest.approx(1.0)

    def test_empty_is_none(self):
        assert histogram_quantile([], 0.5) is None
