"""Exporter behaviour: JSON-lines round-trip, aggregation, rendering."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.obs.exporters import (
    InMemoryExporter,
    JsonLinesExporter,
    flatten_stages,
    read_jsonl,
    read_spans,
    render_summary,
)
from repro.obs.tracing import Span


def _span_shape(span: Span):
    return (span.name, span.counters, [_span_shape(c) for c in span.children])


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with obs.session(exporters=[JsonLinesExporter(path)]) as sess:
        with obs.span("outer"):
            with obs.span("inner"):
                obs.incr("ticks", 3)
        with obs.span("second"):
            pass
        originals = list(sess.tracer.roots)
    records = read_jsonl(path)
    assert [r["type"] for r in records] == ["span", "span", "summary"]
    restored = read_spans(path)
    assert [_span_shape(s) for s in restored] == [
        _span_shape(s) for s in originals
    ]
    assert all(
        restored[i].duration == originals[i].duration for i in range(2)
    )
    summary = records[-1]
    assert summary["counters"] == {"ticks": 3}
    assert summary["trace_roots"] == 2


def test_jsonl_summary_contains_ledger_audit(tmp_path, tiny_dataset):
    path = tmp_path / "trace.jsonl"
    design = best_design(6, 4, 2)
    with obs.session(exporters=[JsonLinesExporter(path)]):
        PriView(1.0, design=design, seed=0).fit(tiny_dataset)
    summary = [r for r in read_jsonl(path) if r["type"] == "summary"][-1]
    [scope] = summary["ledger"]
    assert scope["scope"] == "PriView.fit"
    assert scope["configured_epsilon"] == 1.0
    assert scope["spent_min"] == scope["spent_max"] == 1.0
    assert scope["status"] == "exact"
    assert summary["ledger_total_epsilon"] == 1.0


def test_jsonl_exporter_shared_across_sessions(tmp_path):
    """The CLI reuses one file for run-all: sessions append in order."""
    path = tmp_path / "trace.jsonl"
    exporter = JsonLinesExporter(path)
    for name in ("one", "two"):
        with obs.session(exporters=[exporter]):
            with obs.span(name):
                pass
    names = [s.name for s in read_spans(path)]
    assert names == ["one", "two"]
    assert sum(r["type"] == "summary" for r in read_jsonl(path)) == 2


def test_in_memory_exporter_receives_roots_only():
    exporter = InMemoryExporter()
    with obs.session(exporters=[exporter]):
        with obs.span("root"):
            with obs.span("child"):
                pass
    assert [s.name for s in exporter.spans] == ["root"]
    assert len(exporter.summaries) == 1


def test_flatten_stages_dotted_paths():
    with obs.session() as sess:
        for _ in range(2):
            with obs.span("fit"):
                with obs.span("stage"):
                    obs.incr("passes", 5)
    flat = flatten_stages(sess.tracer.roots)
    assert set(flat) == {"fit", "fit.stage"}
    assert flat["fit"]["count"] == 2
    assert flat["fit.stage"]["counters"] == {"passes": 10}
    assert flat["fit"]["seconds"] >= flat["fit.stage"]["seconds"]


def test_render_summary_mentions_stages_and_audit(tiny_dataset):
    design = best_design(6, 4, 2)
    with obs.session() as sess:
        PriView(0.5, design=design, seed=0).fit(tiny_dataset)
        text = render_summary(sess)
    assert "priview.fit" in text
    assert "noisy_views" in text
    assert "privacy-budget ledger" in text
    assert "PriView.fit" in text
    assert "exact" in text


def test_render_summary_empty_session():
    with obs.session() as sess:
        pass
    text = render_summary(sess)
    assert "no noise draws" in text
