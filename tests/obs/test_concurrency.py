"""Thread-safety of the metrics registry and the snapshot writer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.exporters import MetricsSnapshotWriter, read_metrics_snapshots
from repro.obs.metrics import MetricsRegistry

THREADS = 16
PER_THREAD = 500


def hammer(worker) -> None:
    """Run ``worker(thread_index)`` on THREADS threads, start-aligned."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def run(index: int) -> None:
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


class TestRegistryUnderContention:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(PER_THREAD):
                registry.incr("hits")
                registry.incr(f"per_thread.{index}")

        hammer(worker)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == THREADS * PER_THREAD
        for index in range(THREADS):
            assert snapshot["counters"][f"per_thread.{index}"] == PER_THREAD

    def test_no_lost_histogram_observations(self):
        registry = MetricsRegistry()

        def worker(index):
            labels = {"thread": str(index % 4)}
            for i in range(PER_THREAD):
                registry.observe("lat", 0.001 * (1 + i % 7), labels)

        hammer(worker)
        merged = registry.histogram("lat")
        assert merged.count == THREADS * PER_THREAD
        rec = registry.observation("lat")
        assert rec["count"] == THREADS * PER_THREAD
        # per-series counts also add up exactly
        total = sum(
            registry.observation("lat", {"thread": str(t)})["count"]
            for t in range(4)
        )
        assert total == THREADS * PER_THREAD

    def test_gauges_keep_a_valid_last_write(self):
        registry = MetricsRegistry()

        def worker(index):
            for i in range(PER_THREAD):
                registry.set_gauge("level", index * PER_THREAD + i)

        hammer(worker)
        value = registry.snapshot()["gauges"]["level"]
        assert 0 <= value < THREADS * PER_THREAD


class TestSnapshotWriterUnderContention:
    def test_concurrent_write_now_never_tears_lines(self, tmp_path):
        registry = MetricsRegistry()
        registry.observe("lat", 0.01, {"path": "solved"})
        path = tmp_path / "metrics.jsonl"
        writer = MetricsSnapshotWriter(path, registry=registry)

        def worker(index):
            for _ in range(50):
                registry.incr("hits")
                writer.write_now()

        hammer(worker)
        writer.stop()

        # every line parses on its own (no torn or interleaved writes)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == THREADS * 50 + 1  # + final stop() record
        assert all(r["type"] == "metrics_snapshot" for r in records)
        # seq is a gap-free permutation: every write landed exactly once
        assert sorted(r["seq"] for r in records) == list(
            range(1, len(records) + 1)
        )
        final = read_metrics_snapshots(path)[-1]
        assert final["counters"]["hits"] == THREADS * 50

    def test_background_thread_and_stop_flush(self, tmp_path):
        registry = MetricsRegistry()
        registry.incr("ticks")
        path = tmp_path / "metrics.jsonl"
        with MetricsSnapshotWriter(
            path, registry=registry, interval_s=0.01
        ):
            deadline = threading.Event()
            deadline.wait(0.15)
        records = read_metrics_snapshots(path)
        assert records  # periodic + final flush
        assert records[-1]["counters"]["ticks"] == 1

    def test_registry_none_resolves_active_session(self, tmp_path):
        import repro.obs as obs

        path = tmp_path / "metrics.jsonl"
        writer = MetricsSnapshotWriter(path)
        with obs.session(trace=False, ledger=False):
            obs.incr("inside")
            assert writer.write_now()["counters"]["inside"] == 1
        writer.stop()
