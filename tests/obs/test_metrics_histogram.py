"""Histogram metrics: buckets, quantiles, labels, snapshots."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestHistogram:
    def test_buckets_are_log_spaced(self):
        ratios = [
            b / a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 60  # covers the whole latency range

    def test_record_and_summary(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.004, 0.1):
            hist.record(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.107)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.1)

    def test_quantiles_accurate_within_bucket_resolution(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-7.0, sigma=1.0, size=20_000)
        hist = Histogram()
        for value in values:
            hist.record(value)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            estimate = hist.quantile(q)
            # factor-2 buckets bound the relative error to one bucket
            assert exact / 2 <= estimate <= exact * 2

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram()
        hist.record(0.5)
        assert hist.quantile(0.0) == pytest.approx(0.5)
        assert hist.quantile(1.0) == pytest.approx(0.5)

    def test_empty_quantile_is_none(self):
        assert Histogram().quantile(0.95) is None

    def test_merge_accumulates(self):
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.01):
            a.record(value)
        for value in (0.1, 1.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.max == pytest.approx(1.0)
        assert a.min == pytest.approx(0.001)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_dict_round_trip_is_json_stable(self):
        hist = Histogram()
        for value in (1e-7, 0.003, 0.5, 120.0):  # under/over-flow too
            hist.record(value)
        data = json.loads(json.dumps(hist.to_dict()))
        back = Histogram.from_dict(data)
        assert back.count == hist.count
        assert back.sum == pytest.approx(hist.sum)
        assert back.quantile(0.5) == pytest.approx(hist.quantile(0.5))

    def test_overflow_lands_in_inf_bucket(self):
        hist = Histogram()
        hist.record(1e9)
        buckets = dict(hist.to_dict()["buckets"])
        assert buckets.get(None) == 1
        assert hist.quantile(0.99) == pytest.approx(1e9)  # max clamp


class TestLabeledRegistry:
    def test_series_split_and_merged_views(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.001, {"path": "covered"})
        registry.observe("lat", 0.002, {"path": "covered"})
        registry.observe("lat", 0.100, {"path": "solved"})
        covered = registry.observation("lat", {"path": "covered"})
        assert covered["count"] == 2
        merged = registry.observation("lat")  # labels=None merges all
        assert merged["count"] == 3
        assert merged["max"] == pytest.approx(0.100)

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0, {"b": "2", "a": "1"})
        registry.observe("lat", 2.0, {"a": "1", "b": "2"})
        assert registry.observation("lat", {"a": "1", "b": "2"})["count"] == 2

    def test_presorted_tuple_fast_path(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0, (("a", "1"), ("b", "2")))
        assert registry.observation("lat", {"b": "2"})["count"] == 1

    def test_subset_label_match(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0, {"dataset": "x", "path": "covered"})
        registry.observe("lat", 2.0, {"dataset": "x", "path": "solved"})
        registry.observe("lat", 3.0, {"dataset": "y", "path": "solved"})
        assert registry.observation("lat", {"dataset": "x"})["count"] == 2
        assert registry.observation("lat", {"path": "solved"})["count"] == 2

    def test_merged_histogram_quantile(self):
        registry = MetricsRegistry()
        for _ in range(99):
            registry.observe("lat", 0.001, {"path": "covered"})
        registry.observe("lat", 10.0, {"path": "solved"})
        merged = registry.histogram("lat")
        assert merged.count == 100
        assert merged.quantile(0.5) == pytest.approx(0.001, rel=1.0)
        assert merged.quantile(0.999) > 1.0

    def test_snapshot_contains_labeled_histograms(self):
        registry = MetricsRegistry()
        registry.incr("requests")
        registry.set_gauge("size", 3)
        registry.observe("lat", 0.01, {"path": "solved"})
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["gauges"]["size"] == 3
        (key,) = [k for k in snapshot["histograms"] if "solved" in k]
        hist = snapshot["histograms"][key]
        assert hist["metric"] == "lat"
        assert hist["labels"] == {"path": "solved"}
        assert hist["count"] == 1
        assert not math.isnan(hist["p95"])

    def test_observation_backward_compat_summary_fields(self):
        registry = MetricsRegistry()
        registry.observe("lat", 2.0)
        rec = registry.observation("lat")
        assert set(rec) >= {"count", "sum", "min", "max", "mean"}
        assert rec["mean"] == pytest.approx(2.0)
