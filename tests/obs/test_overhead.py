"""Instrumentation overhead guardrails.

The statistical comparison is marked ``bench`` (excluded from tier-1
by the default ``-m "not bench"``); run it with::

    pytest tests/obs/test_overhead.py -m bench
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro import obs
from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.marginals.dataset import BinaryDataset


def _fit_times(dataset, design, repeats):
    times = []
    for seed in range(repeats):
        start = time.perf_counter()
        PriView(1.0, design=design, seed=seed).fit(dataset)
        times.append(time.perf_counter() - start)
    return times


@pytest.mark.bench
def test_enabled_instrumentation_overhead_is_small():
    rng = np.random.default_rng(0)
    data = (rng.random((20_000, 16)) < 0.3).astype(np.uint8)
    dataset = BinaryDataset(data, name="overhead")
    design = best_design(16, 8, 2)
    PriView(1.0, design=design, seed=0).fit(dataset)  # warm caches

    with obs.session(trace=False, metrics=False, ledger=False):
        disabled = _fit_times(dataset, design, 7)
    with obs.session():
        enabled = _fit_times(dataset, design, 7)

    ratio = statistics.median(enabled) / statistics.median(disabled)
    assert ratio < 1.25, f"instrumented fit {ratio:.2f}x slower than disabled"
