"""CLI observability: --trace output, --trace-out files, resilient run-all."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cli
from repro.covering.repository import best_design
from repro.experiments import registry
from repro.marginals.dataset import BinaryDataset
from repro.obs.exporters import read_jsonl


@pytest.fixture
def fake_experiments(monkeypatch):
    """Replace the registry with one cheap PriView run and one crasher."""
    from repro.core.priview import PriView

    def tiny(scale=None, seed: int = 0) -> str:
        rng = np.random.default_rng(seed)
        data = (rng.random((400, 6)) < 0.4).astype(np.uint8)
        dataset = BinaryDataset(data, name="tiny")
        PriView(1.0, design=best_design(6, 4, 2), seed=seed).fit(dataset)
        return "== tiny: ok =="

    def boom(scale=None, seed: int = 0) -> str:
        raise RuntimeError("injected failure")

    monkeypatch.setattr(
        registry, "EXPERIMENTS", {"tiny": tiny, "boom": boom}
    )
    monkeypatch.setattr(cli, "EXPERIMENTS", registry.EXPERIMENTS)
    return registry.EXPERIMENTS


def test_trace_flag_prints_tree_and_audit(fake_experiments, capsys):
    assert cli.main(["run", "tiny", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "== tiny: ok ==" in out
    assert "stage timings" in out
    assert "priview.fit" in out
    assert "noisy_views" in out
    assert "privacy-budget ledger" in out
    assert "PriView.fit" in out
    assert "exact" in out and "MISMATCH" not in out


def test_trace_out_writes_jsonl(fake_experiments, tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert cli.main(["run", "tiny", "--trace-out", str(path)]) == 0
    out = capsys.readouterr().out
    # --trace-out alone records silently: no console tree
    assert "stage timings" not in out
    records = read_jsonl(path)
    assert any(r["type"] == "span" for r in records)
    summary = [r for r in records if r["type"] == "summary"][-1]
    assert summary["ledger"][0]["scope"] == "PriView.fit"
    assert summary["ledger"][0]["status"] == "exact"


def test_run_all_continues_past_failure(fake_experiments, capsys, caplog):
    code = cli.main(["run", "all"])
    captured = capsys.readouterr()
    assert code == 1  # non-zero because one experiment failed
    assert "== tiny: ok ==" in captured.out  # later experiment still ran
    assert "injected failure" not in captured.out  # failures go to the log
    messages = " ".join(r.getMessage() for r in caplog.records)
    assert "boom" in messages and "failed" in messages


def test_single_failing_experiment_still_raises(fake_experiments):
    with pytest.raises(RuntimeError, match="injected failure"):
        cli.main(["run", "boom"])


def test_run_single_without_trace_unchanged(fake_experiments, capsys):
    assert cli.main(["run", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "== tiny: ok ==" in out
    assert "stage timings" not in out
    assert "privacy-budget" not in out
