"""Budget-ledger semantics: exact totals, scopes, audits."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.core.priview import PriView
from repro.core.view_selection import RECORD_COUNT_EPSILON
from repro.covering.repository import best_design
from repro.exceptions import LedgerError
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.geometric import geometric_noisy_counts
from repro.mechanisms.laplace import noisy_counts


def test_laplace_draw_recorded_with_share():
    with obs.session() as sess:
        noisy_counts(np.zeros(8), epsilon=0.5, sensitivity=4.0)
    [record] = sess.ledger.unscoped.records
    assert record.mechanism == "laplace"
    assert record.epsilon == 0.5
    assert record.sensitivity == 4.0
    assert record.scale == 8.0
    assert record.draws == 8
    assert record.epsilon_share == 0.125


def test_exponential_draw_consumes_full_epsilon():
    with obs.session() as sess:
        exponential_mechanism(np.array([1.0, 2.0]), epsilon=0.3, sensitivity=2.0)
    [record] = sess.ledger.unscoped.records
    assert record.mechanism == "exponential"
    assert record.epsilon_share == 0.3


def test_geometric_draw_recorded():
    with obs.session() as sess:
        geometric_noisy_counts(np.zeros(4), epsilon=0.2, sensitivity=2.0)
    [record] = sess.ledger.unscoped.records
    assert record.mechanism == "geometric"
    assert record.epsilon_share == 0.1


def test_infinite_epsilon_draws_are_free():
    with obs.session() as sess:
        noisy_counts(np.zeros(4), epsilon=float("inf"))
        exponential_mechanism(np.array([1.0, 2.0]), epsilon=float("inf"))
    assert sess.ledger.total_spent() == 0.0
    assert sess.ledger.total_draws() == 0


@pytest.mark.parametrize("epsilon", [1.0, 0.1, 0.3, 0.7])
def test_priview_fit_ledger_total_is_exactly_epsilon(tiny_dataset, epsilon):
    """Sequential composition over the w views must balance *exactly*."""
    design = best_design(6, 4, 2)
    with obs.session() as sess:
        PriView(epsilon, design=design, seed=0).fit(tiny_dataset)
        scope = sess.ledger.scopes[0]
        assert scope.name == "PriView.fit"
        assert scope.configured == epsilon
        assert scope.spent() == epsilon  # exact, not approx
        assert scope.status == "exact"
        sess.ledger.check()  # must not raise


def test_priview_fit_auto_design_accounts_record_count(tiny_dataset):
    with obs.session() as sess:
        PriView(1.0, seed=0).fit(tiny_dataset)
        scope = sess.ledger.scopes[0]
        assert scope.configured == 1.0 + RECORD_COUNT_EPSILON
        assert scope.spent() == scope.configured
        labels = {r.label for r in scope.records}
        assert "record_count" in labels
        sess.ledger.check()


def test_priview_fit_noise_free_spends_nothing(tiny_dataset):
    design = best_design(6, 4, 2)
    with obs.session() as sess:
        PriView(float("inf"), design=design, seed=0).fit(tiny_dataset)
        scope = sess.ledger.scopes[0]
        assert math.isinf(scope.configured)
        assert scope.spent() == 0.0
        assert scope.status == "n/a"
        sess.ledger.check()


def test_unbalanced_strict_scope_fails_check():
    with obs.session() as sess:
        with sess.ledger.scope("half-spent", configured=1.0):
            noisy_counts(np.zeros(2), epsilon=0.5)
        with pytest.raises(LedgerError, match="half-spent"):
            sess.ledger.check()


def test_non_strict_scope_reported_not_raised():
    with obs.session() as sess:
        with sess.ledger.scope("lax", configured=1.0, strict=False):
            noisy_counts(np.zeros(2), epsilon=0.5)
        sess.ledger.check()  # non-strict mismatch does not raise
        [row] = sess.ledger.audit()
        assert row.status == "under"
        assert not row.ok
        assert not row.strict


def test_audit_groups_repeated_fits(tiny_dataset):
    design = best_design(6, 4, 2)
    with obs.session() as sess:
        for seed in range(3):
            PriView(1.0, design=design, seed=seed).fit(tiny_dataset)
        rows = sess.ledger.audit()
    [row] = [r for r in rows if r.name == "PriView.fit"]
    assert row.count == 3
    assert row.spent_min == row.spent_max == 1.0
    assert row.status == "exact"


def test_nested_scopes_attribute_to_innermost():
    with obs.session() as sess:
        with sess.ledger.scope("outer", configured=None, strict=False):
            with sess.ledger.scope("inner", configured=0.5):
                noisy_counts(np.zeros(2), epsilon=0.5)
        outer, inner = sess.ledger.scopes
        assert outer.name == "outer" and not outer.records
        assert inner.name == "inner" and len(inner.records) == 1
        assert sess.ledger.total_spent() == 0.5


def test_baseline_fit_gets_nonstrict_scope(tiny_dataset):
    from repro.baselines.flat import FlatMethod

    with obs.session() as sess:
        FlatMethod(1.0, seed=0).fit(tiny_dataset)
        scopes = [s for s in sess.ledger.scopes if s.name == "Flat.fit"]
        assert scopes and not scopes[0].strict
        assert scopes[0].spent() > 0
