"""Span nesting, ordering, thread-safety and the disabled fast path."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.obs.session import _NOOP


def test_span_nesting_and_ordering():
    with obs.session() as sess:
        with obs.span("outer"):
            with obs.span("first"):
                pass
            with obs.span("second"):
                with obs.span("inner"):
                    pass
        roots = sess.tracer.roots
    assert len(roots) == 1
    outer = roots[0]
    assert outer.name == "outer"
    assert [c.name for c in outer.children] == ["first", "second"]
    assert [c.name for c in outer.children[1].children] == ["inner"]
    assert [s.name for s in outer.walk()] == ["outer", "first", "second", "inner"]


def test_span_durations_are_positive_and_nested():
    with obs.session() as sess:
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.002)
    outer = sess.tracer.roots[0]
    inner = outer.children[0]
    assert inner.duration >= 0.002
    assert outer.duration >= inner.duration


def test_sibling_roots_accumulate():
    with obs.session() as sess:
        for name in ("a", "b", "a"):
            with obs.span(name):
                pass
    assert [r.name for r in sess.tracer.roots] == ["a", "b", "a"]


def test_span_survives_exceptions():
    with obs.session() as sess:
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
    assert [r.name for r in sess.tracer.roots] == ["boom"]
    assert sess.tracer.roots[0].duration >= 0


def test_counters_attach_to_current_span_and_registry():
    with obs.session() as sess:
        with obs.span("stage"):
            obs.incr("widgets", 2)
            obs.incr("widgets")
        obs.incr("loose")
    assert sess.metrics.counter("widgets") == 3
    assert sess.metrics.counter("loose") == 1
    assert sess.tracer.roots[0].counters == {"widgets": 3}
    assert sess.metrics.gauge("never-set") is None


def test_threads_trace_independently():
    errors = []

    def worker(tag: str):
        try:
            with obs.span(f"root-{tag}"):
                for i in range(50):
                    with obs.span(f"child-{tag}"):
                        pass
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    with obs.session() as sess:
        threads = [
            threading.Thread(target=worker, args=(str(i),)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not errors
    roots = sess.tracer.roots
    assert len(roots) == 4
    for root in roots:
        tag = root.name.split("-")[1]
        assert len(root.children) == 50
        assert all(c.name == f"child-{tag}" for c in root.children)


def test_disabled_mode_is_shared_noop():
    # No session in this block: the nested session fixture restores
    # None only for explicitly nested sessions, so simulate by checking
    # inside a fresh session=disabled configuration instead.
    with obs.session(trace=False, metrics=False, ledger=False):
        assert obs.span("a") is _NOOP
        assert obs.span("b") is obs.span("c")
        assert obs.budget_scope("x", 1.0) is _NOOP
        # all helpers are silent no-ops
        obs.incr("nothing")
        obs.set_gauge("nothing", 1.0)
        obs.record_draw(
            "laplace", epsilon=1.0, sensitivity=1.0, scale=1.0, draws=1
        )


def test_disabled_span_overhead_is_negligible():
    """200k disabled span() calls must stay well under a second."""
    with obs.session(trace=False, metrics=False, ledger=False):
        start = time.perf_counter()
        for _ in range(200_000):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - start
    assert elapsed < 1.0


def test_root_cap_drops_overflow():
    with obs.session() as sess:
        sess.tracer.max_roots = 3
        for _ in range(5):
            with obs.span("s"):
                pass
    assert len(sess.tracer.roots) == 3
    assert sess.tracer.dropped_roots == 2
