"""Tests for the full contingency table."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.dataset import BinaryDataset


class TestFullContingencyTable:
    def test_from_dataset_total(self, tiny_dataset):
        table = FullContingencyTable.from_dataset(tiny_dataset)
        assert table.total() == tiny_dataset.num_records
        assert table.size == 64

    def test_marginals_agree_with_dataset(self, tiny_dataset):
        table = FullContingencyTable.from_dataset(tiny_dataset)
        for attrs in [(0,), (1, 4), (0, 2, 5), tuple(range(6))]:
            assert np.allclose(
                table.marginal(attrs).counts,
                tiny_dataset.marginal(attrs).counts,
            )

    def test_empty_attrs_marginal(self, tiny_dataset):
        table = FullContingencyTable.from_dataset(tiny_dataset)
        assert table.marginal(()).counts[0] == 500.0

    def test_rejects_large_d(self):
        with pytest.raises(DimensionError):
            FullContingencyTable(30, np.zeros(8))

    def test_rejects_large_d_from_dataset(self):
        ds = BinaryDataset(np.zeros((2, 30), dtype=np.uint8))
        with pytest.raises(DimensionError):
            FullContingencyTable.from_dataset(ds)

    def test_rejects_wrong_counts_size(self):
        with pytest.raises(DimensionError):
            FullContingencyTable(3, np.zeros(7))

    def test_out_of_range_attribute(self, tiny_dataset):
        table = FullContingencyTable.from_dataset(tiny_dataset)
        with pytest.raises(DimensionError):
            table.marginal((7,))

    def test_copy_is_deep(self, tiny_dataset):
        table = FullContingencyTable.from_dataset(tiny_dataset)
        other = table.copy()
        other.counts[0] += 5
        assert table.counts[0] == other.counts[0] - 5

    def test_cell_indexing_convention(self):
        # one record: attrs (1,0,1) -> index 1 + 4 = 5
        ds = BinaryDataset(np.array([[1, 0, 1]], np.uint8))
        table = FullContingencyTable.from_dataset(ds)
        assert table.counts[5] == 1.0
        assert table.counts.sum() == 1.0
