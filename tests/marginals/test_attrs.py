"""Tests for the AttrSet canonical attribute-set type."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.attrs import AttrSet, as_attrs


class TestCanonicalization:
    @pytest.mark.parametrize(
        "raw",
        [
            (3, 0, 5),
            [5, 3, 0],
            {0, 3, 5},
            frozenset({0, 3, 5}),
            np.array([5, 0, 3]),
            iter([3, 5, 0]),
        ],
    )
    def test_any_collection_sorts(self, raw):
        assert AttrSet(raw) == (0, 3, 5)

    def test_empty(self):
        assert AttrSet(()) == ()
        assert AttrSet().arity == 0

    def test_range_input(self):
        assert AttrSet(range(3)) == (0, 1, 2)

    def test_numpy_scalars_become_ints(self):
        attrs = AttrSet(np.array([2, 1], dtype=np.int32))
        assert all(type(a) is int for a in attrs)

    def test_passthrough_identity(self):
        attrs = AttrSet((1, 2))
        assert AttrSet(attrs) is attrs

    def test_is_a_tuple(self):
        attrs = AttrSet([2, 0])
        assert isinstance(attrs, tuple)
        assert attrs == (0, 2)
        assert hash(attrs) == hash((0, 2))
        assert {attrs: 1}[(0, 2)] == 1

    def test_repr(self):
        assert repr(AttrSet([2, 0])) == "AttrSet(0, 2)"


class TestValidation:
    def test_duplicates_rejected(self):
        with pytest.raises(DimensionError):
            AttrSet((1, 1))

    def test_non_integer_iterable_rejected(self):
        with pytest.raises(DimensionError):
            AttrSet(("a", "b"))

    def test_non_iterable_rejected(self):
        with pytest.raises(DimensionError):
            AttrSet(7)

    def test_float_array_rejected(self):
        with pytest.raises(DimensionError):
            AttrSet(np.array([0.5, 1.0]))

    def test_two_dimensional_array_rejected(self):
        with pytest.raises(DimensionError):
            AttrSet(np.zeros((2, 2), dtype=np.int64))

    def test_range_check(self):
        assert AttrSet((0, 3), num_attributes=4) == (0, 3)
        with pytest.raises(DimensionError):
            AttrSet((0, 4), num_attributes=4)
        with pytest.raises(DimensionError):
            AttrSet((-1, 2), num_attributes=4)

    def test_range_check_on_existing_attrset(self):
        attrs = AttrSet((0, 9))
        with pytest.raises(DimensionError):
            AttrSet(attrs, num_attributes=5)


class TestSetOperations:
    def test_arity_and_size(self):
        attrs = AttrSet((1, 4, 6))
        assert attrs.arity == 3
        assert attrs.size == 8

    def test_issubset(self):
        assert AttrSet((1, 3)).issubset((0, 1, 3, 5))
        assert not AttrSet((1, 2)).issubset((0, 1, 3))
        assert AttrSet(()).issubset(())

    def test_union_intersection(self):
        assert AttrSet((0, 2)).union([2, 5]) == (0, 2, 5)
        assert AttrSet((0, 2, 5)).intersection({5, 0, 9}) == (0, 5)
        assert isinstance(AttrSet((0,)).union((1,)), AttrSet)

    def test_as_attrs_alias(self):
        assert as_attrs([2, 0]) == (0, 2)
        with pytest.raises(DimensionError):
            as_attrs([2, 0], 2)


class TestDeprecatedShim:
    def test_table_as_sorted_attrs_warns_and_works(self):
        import repro.marginals.table as table_mod

        with pytest.warns(DeprecationWarning, match="_as_sorted_attrs"):
            shim = table_mod._as_sorted_attrs
        assert shim((3, 1)) == (1, 3)

    def test_unknown_attribute_still_raises(self):
        import repro.marginals.table as table_mod

        with pytest.raises(AttributeError):
            table_mod.no_such_name
