"""Tests for analyst-style table queries."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.analysis_queries import (
    conditional_probability,
    count_where,
    fraction_where,
    most_common_cells,
)
from repro.marginals.table import MarginalTable


@pytest.fixture
def table() -> MarginalTable:
    # attrs (2, 5): cells [c00, c10, c01, c11] = [10, 20, 30, 40]
    return MarginalTable((2, 5), np.array([10.0, 20.0, 30.0, 40.0]))


class TestCountWhere:
    def test_full_assignment(self, table):
        assert count_where(table, {2: 1, 5: 1}) == 40.0
        assert count_where(table, {2: 0, 5: 0}) == 10.0

    def test_partial_assignment_sums(self, table):
        assert count_where(table, {2: 1}) == 60.0  # 20 + 40
        assert count_where(table, {5: 0}) == 30.0  # 10 + 20

    def test_empty_assignment_is_total(self, table):
        assert count_where(table, {}) == 100.0

    def test_unknown_attribute(self, table):
        with pytest.raises(DimensionError):
            count_where(table, {3: 1})

    def test_non_binary_value(self, table):
        with pytest.raises(DimensionError):
            count_where(table, {2: 2})


class TestFractionWhere:
    def test_fraction(self, table):
        assert fraction_where(table, {2: 1}) == pytest.approx(0.6)

    def test_empty_table(self):
        empty = MarginalTable((0,), np.zeros(2))
        assert fraction_where(empty, {0: 1}) == 0.0


class TestConditional:
    def test_known_value(self, table):
        # P(attr5=1 | attr2=1) = 40 / 60
        assert conditional_probability(
            table, {5: 1}, {2: 1}
        ) == pytest.approx(40 / 60)

    def test_zero_mass_condition_nan(self):
        table = MarginalTable((0, 1), np.array([1.0, 0.0, 1.0, 0.0]))
        assert np.isnan(conditional_probability(table, {1: 1}, {0: 1}))

    def test_inconsistent_assignment_rejected(self, table):
        with pytest.raises(DimensionError):
            conditional_probability(table, {2: 0}, {2: 1})

    def test_overlapping_consistent_ok(self, table):
        value = conditional_probability(table, {2: 1, 5: 1}, {2: 1})
        assert value == pytest.approx(40 / 60)


class TestMostCommon:
    def test_ordering(self, table):
        cells = most_common_cells(table, top=2)
        assert cells[0] == ({2: 1, 5: 1}, 40.0)
        assert cells[1] == ({2: 0, 5: 1}, 30.0)

    def test_top_bounds(self, table):
        assert len(most_common_cells(table, top=100)) == 4
        with pytest.raises(DimensionError):
            most_common_cells(table, top=0)


class TestAgainstSynopsis:
    def test_private_conditionals_close_to_truth(self, small_dataset):
        from repro.core.priview import PriView
        from repro.covering.repository import best_design

        design = best_design(10, 4, 2)
        synopsis = PriView(2.0, design=design, seed=1).fit(small_dataset)
        attrs = (0, 1, 2)
        private = synopsis.marginal(attrs)
        truth = small_dataset.marginal(attrs)
        for event, given in [({0: 1}, {1: 1}), ({2: 0}, {0: 1, 1: 0})]:
            p_true = conditional_probability(truth, event, given)
            p_priv = conditional_probability(private, event, given)
            assert p_priv == pytest.approx(p_true, abs=0.1)
