"""Tests for BinaryDataset."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.dataset import BinaryDataset


class TestConstruction:
    def test_basic_shape(self, tiny_dataset):
        assert tiny_dataset.num_records == 500
        assert tiny_dataset.num_attributes == 6
        assert len(tiny_dataset) == 500

    def test_rejects_non_binary(self):
        with pytest.raises(DimensionError):
            BinaryDataset(np.array([[0, 2]]))

    def test_rejects_one_dimensional(self):
        with pytest.raises(DimensionError):
            BinaryDataset(np.array([0, 1, 0]))

    def test_data_is_read_only(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.data[0, 0] = 1

    def test_from_transactions(self):
        ds = BinaryDataset.from_transactions(
            [[0, 2], [1], [0, 1, 2], []], num_attributes=3
        )
        assert ds.num_records == 4
        assert np.array_equal(
            ds.data, [[1, 0, 1], [0, 1, 0], [1, 1, 1], [0, 0, 0]]
        )

    def test_from_transactions_ignores_out_of_range(self):
        ds = BinaryDataset.from_transactions([[0, 7, -2]], num_attributes=3)
        assert np.array_equal(ds.data, [[1, 0, 0]])

    def test_from_transactions_duplicate_items_stay_binary(self):
        # Regression: an item repeated inside one transaction must
        # contribute a single 1, not a scatter-added count.
        ds = BinaryDataset.from_transactions(
            [[2, 2, 2], [0, 1, 0], []], num_attributes=3
        )
        assert np.array_equal(ds.data, [[0, 0, 1], [1, 1, 0], [0, 0, 0]])

    def test_from_transactions_empty_iterable(self):
        ds = BinaryDataset.from_transactions([], num_attributes=4)
        assert ds.num_records == 0 and ds.num_attributes == 4

    def test_from_transactions_matches_python_loop(self):
        rng = np.random.default_rng(0)
        txns = [
            list(rng.integers(-2, 8, rng.integers(0, 10))) for _ in range(200)
        ]
        expected = np.zeros((len(txns), 6), dtype=np.uint8)
        for row, txn in enumerate(txns):
            for item in txn:
                if 0 <= item < 6:
                    expected[row, item] = 1
        ds = BinaryDataset.from_transactions(txns, num_attributes=6)
        assert np.array_equal(ds.data, expected)

    def test_random_density(self, rng):
        ds = BinaryDataset.random(20_000, 4, density=0.25, rng=rng)
        assert abs(ds.data.mean() - 0.25) < 0.02

    def test_empty_dataset(self):
        ds = BinaryDataset(np.zeros((0, 5), dtype=np.uint8))
        assert ds.num_records == 0
        assert ds.marginal((0, 1)).total() == 0.0

    def test_repr_contains_shape(self, tiny_dataset):
        assert "N=500" in repr(tiny_dataset)
        assert "d=6" in repr(tiny_dataset)


class TestMarginals:
    def test_marginal_total_is_n(self, tiny_dataset):
        assert tiny_dataset.marginal((0, 3)).total() == 500.0

    def test_marginal_matches_manual_count(self):
        data = np.array([[1, 0, 1], [1, 1, 1], [0, 0, 0], [1, 0, 1]], np.uint8)
        ds = BinaryDataset(data)
        table = ds.marginal((0, 2))
        # cells indexed: bit0 = attr0, bit1 = attr2
        assert table.counts[0] == 1  # (0,0): row 2
        assert table.counts[1] == 0  # (1,0)
        assert table.counts[2] == 0  # (0,1)
        assert table.counts[3] == 3  # (1,1): rows 0,1,3

    def test_single_attribute_marginal(self):
        data = np.array([[1], [0], [1]], np.uint8)
        table = BinaryDataset(data).marginal((0,))
        assert np.allclose(table.counts, [1.0, 2.0])

    def test_marginal_projection_consistency(self, small_dataset):
        """Computing the marginal of a subset two ways agrees."""
        big = small_dataset.marginal((1, 4, 6, 8))
        direct = small_dataset.marginal((4, 8))
        assert np.allclose(big.project((4, 8)).counts, direct.counts)

    def test_out_of_range_attribute(self, tiny_dataset):
        with pytest.raises(DimensionError):
            tiny_dataset.marginal((0, 6))

    def test_marginals_plural(self, tiny_dataset):
        tables = tiny_dataset.marginals([(0,), (1, 2)])
        assert [t.attrs for t in tables] == [(0,), (1, 2)]

    def test_attribute_means(self):
        data = np.array([[1, 0], [1, 1]], np.uint8)
        means = BinaryDataset(data).attribute_means()
        assert np.allclose(means, [1.0, 0.5])

    def test_attribute_means_empty(self):
        ds = BinaryDataset(np.zeros((0, 3), dtype=np.uint8))
        assert np.allclose(ds.attribute_means(), 0.0)
