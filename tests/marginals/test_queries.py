"""Tests for query-workload helpers."""

import math

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.queries import (
    all_attribute_subsets,
    consecutive_attribute_sets,
    random_attribute_sets,
)


class TestAllSubsets:
    def test_count(self):
        assert len(all_attribute_subsets(6, 3)) == math.comb(6, 3)

    def test_sorted_tuples(self):
        subsets = all_attribute_subsets(5, 2)
        assert all(s == tuple(sorted(s)) for s in subsets)
        assert len(set(subsets)) == len(subsets)

    def test_k_zero(self):
        assert all_attribute_subsets(4, 0) == [()]

    def test_invalid_k(self):
        with pytest.raises(DimensionError):
            all_attribute_subsets(4, 5)


class TestRandomSets:
    def test_requested_count(self, rng):
        sets = random_attribute_sets(20, 4, 15, rng)
        assert len(sets) == 15
        assert len(set(sets)) == 15
        assert all(len(s) == 4 for s in sets)

    def test_returns_all_when_few(self, rng):
        sets = random_attribute_sets(5, 2, 100, rng)
        assert len(sets) == math.comb(5, 2)

    def test_deterministic_with_seed(self):
        a = random_attribute_sets(30, 5, 10, np.random.default_rng(7))
        b = random_attribute_sets(30, 5, 10, np.random.default_rng(7))
        assert a == b

    def test_values_in_range(self, rng):
        sets = random_attribute_sets(12, 3, 20, rng)
        assert all(0 <= a < 12 for s in sets for a in s)

    def test_invalid_k(self, rng):
        with pytest.raises(DimensionError):
            random_attribute_sets(4, 0, 3, rng)


class TestConsecutiveSets:
    def test_windows(self):
        windows = consecutive_attribute_sets(6, 3)
        assert windows == [(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5)]

    def test_full_window(self):
        assert consecutive_attribute_sets(4, 4) == [(0, 1, 2, 3)]

    def test_invalid(self):
        with pytest.raises(DimensionError):
            consecutive_attribute_sets(3, 4)
