"""Tests for MarginalTable: indexing, projection, consistency update."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.marginals.table import MarginalTable


class TestConstruction:
    def test_attrs_are_sorted(self):
        table = MarginalTable((3, 1, 2), np.zeros(8))
        assert table.attrs == (1, 2, 3)

    def test_rejects_duplicate_attrs(self):
        with pytest.raises(DimensionError):
            MarginalTable((1, 1), np.zeros(4))

    def test_rejects_wrong_size(self):
        with pytest.raises(DimensionError):
            MarginalTable((0, 1), np.zeros(3))

    def test_zeros_and_uniform(self):
        zeros = MarginalTable.zeros((0, 2))
        assert zeros.total() == 0.0
        uniform = MarginalTable.uniform((0, 2), 100.0)
        assert uniform.total() == pytest.approx(100.0)
        assert np.allclose(uniform.counts, 25.0)

    def test_arity_size_len(self):
        table = MarginalTable.zeros((4, 7, 9))
        assert table.arity == 3
        assert table.size == 8
        assert len(table) == 8

    def test_empty_attrs_table(self):
        table = MarginalTable((), np.array([42.0]))
        assert table.total() == 42.0


class TestProjection:
    def test_project_to_self_is_identity(self):
        counts = np.arange(8.0)
        table = MarginalTable((0, 1, 2), counts)
        assert np.allclose(table.project((0, 1, 2)).counts, counts)

    def test_project_to_empty_gives_total(self):
        table = MarginalTable((0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
        empty = table.project(())
        assert empty.attrs == ()
        assert empty.counts[0] == pytest.approx(10.0)

    def test_project_single_attribute(self):
        # cell i: attr0 = i&1, attr1 = (i>>1)&1
        table = MarginalTable((5, 9), np.array([1.0, 2.0, 3.0, 4.0]))
        on_5 = table.project((5,))
        # attr 5 is bit 0: value 0 in cells 0,2 -> 1+3
        assert np.allclose(on_5.counts, [4.0, 6.0])
        on_9 = table.project((9,))
        assert np.allclose(on_9.counts, [3.0, 7.0])

    def test_project_not_subset_raises(self):
        table = MarginalTable.zeros((0, 1))
        with pytest.raises(DimensionError):
            table.project((2,))

    def test_projection_composes(self, rng):
        table = MarginalTable((0, 3, 5, 8), rng.random(16))
        direct = table.project((3,))
        via = table.project((3, 8)).project((3,))
        assert np.allclose(direct.counts, via.counts)

    @given(
        counts=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=16, max_size=16
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_projection_preserves_total(self, counts):
        table = MarginalTable((0, 1, 2, 3), np.array(counts))
        for sub in [(0,), (1, 3), (0, 2, 3), ()]:
            assert table.project(sub).total() == pytest.approx(
                table.total(), abs=1e-6
            )


class TestConsistencyUpdate:
    def test_matches_paper_example(self):
        """The worked example in Section 4.4 of the paper.

        The paper lists cells with the first attribute as the major
        index; our convention makes the first attribute bit 0 (minor),
        so the paper's rows are re-ordered as [c00, c10, c01, c11].
        """
        t1 = MarginalTable((1, 2), np.array([0.3, 0.3, 0.3, 0.1]))
        t2 = MarginalTable((1, 3), np.array([0.2, 0.1, 0.3, 0.4]))
        # best estimate of T_{a1}: average of projections
        p1 = t1.project((1,)).counts
        p2 = t2.project((1,)).counts
        assert np.allclose(p1, [0.6, 0.4])
        assert np.allclose(p2, [0.5, 0.5])
        target = MarginalTable((1,), (p1 + p2) / 2)
        assert np.allclose(target.counts, [0.55, 0.45])
        t1.consistency_update(target)
        t2.consistency_update(target)
        assert np.allclose(t1.counts, [0.275, 0.325, 0.275, 0.125])
        assert np.allclose(t2.counts, [0.225, 0.075, 0.325, 0.375])
        # marginals on the other attributes unchanged
        assert np.allclose(t1.project((2,)).counts, [0.6, 0.4])
        assert np.allclose(t2.project((3,)).counts, [0.3, 0.7])

    def test_update_reaches_target(self, rng):
        table = MarginalTable((0, 2, 4), rng.random(8) * 10)
        target = MarginalTable((2,), np.array([7.0, 3.0]))
        table.consistency_update(target)
        assert np.allclose(table.project((2,)).counts, target.counts)

    def test_update_to_empty_set_rescales_total(self, rng):
        table = MarginalTable((0, 1), rng.random(4))
        target = MarginalTable((), np.array([100.0]))
        table.consistency_update(target)
        assert table.total() == pytest.approx(100.0)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_lemma1_disjoint_projections_unchanged(self, data):
        """Lemma 1: a total-preserving update on A leaves projections
        on attribute sets disjoint from A unchanged.

        The lemma's precondition is prior consistency on a subset of A;
        processing the empty set (total counts) first guarantees it in
        the real pipeline, so the drawn target keeps the table's total.
        """
        counts = data.draw(
            st.lists(st.floats(-50, 50, allow_nan=False), min_size=16, max_size=16)
        )
        table = MarginalTable((0, 1, 2, 3), np.array(counts))
        perturbation = np.array(
            data.draw(
                st.lists(
                    st.floats(-20, 20, allow_nan=False), min_size=2, max_size=2
                )
            )
        )
        perturbation -= perturbation.mean()  # total-preserving
        target = MarginalTable(
            (0,), table.project((0,)).counts + perturbation
        )
        before = table.project((1, 3)).counts.copy()
        table.consistency_update(target)
        assert np.allclose(table.project((1, 3)).counts, before, atol=1e-8)
        assert np.allclose(table.project((0,)).counts, target.counts, atol=1e-8)


class TestNormalization:
    def test_normalized_sums_to_one(self, rng):
        table = MarginalTable((0, 1, 2), rng.random(8) * 5)
        assert table.normalized().sum() == pytest.approx(1.0)

    def test_degenerate_normalizes_uniform(self):
        table = MarginalTable((0, 1), np.array([-1.0, -1.0, 1.0, 1.0]))
        assert np.allclose(table.normalized(), 0.25)

    def test_clamped(self):
        table = MarginalTable((0,), np.array([-3.0, 5.0]))
        clamped = table.clamped()
        assert np.allclose(clamped.counts, [0.0, 5.0])
        assert np.allclose(table.counts, [-3.0, 5.0])  # original untouched

    def test_copy_is_deep(self):
        table = MarginalTable((0,), np.array([1.0, 2.0]))
        other = table.copy()
        other.counts[0] = 99.0
        assert table.counts[0] == 1.0

    def test_allclose(self):
        a = MarginalTable((0,), np.array([1.0, 2.0]))
        b = MarginalTable((0,), np.array([1.0, 2.0 + 1e-12]))
        c = MarginalTable((1,), np.array([1.0, 2.0]))
        assert a.allclose(b)
        assert not a.allclose(c)
