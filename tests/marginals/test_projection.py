"""Tests for projection-map index arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.marginals.projection import (
    cell_neighbours,
    constraint_matrix,
    projection_map,
    subset_positions,
)


class TestProjectionMap:
    def test_identity_positions(self):
        pmap = projection_map(3, (0, 1, 2))
        assert np.array_equal(pmap, np.arange(8))

    def test_single_position(self):
        pmap = projection_map(2, (1,))
        # parent cells 0..3; bit 1 selects
        assert np.array_equal(pmap, [0, 0, 1, 1])

    def test_empty_positions(self):
        pmap = projection_map(2, ())
        assert np.array_equal(pmap, [0, 0, 0, 0])

    def test_out_of_range(self):
        with pytest.raises(DimensionError):
            projection_map(2, (2,))

    def test_duplicates_rejected(self):
        with pytest.raises(DimensionError):
            projection_map(3, (1, 1))

    def test_result_read_only(self):
        pmap = projection_map(3, (0,))
        with pytest.raises(ValueError):
            pmap[0] = 5

    @given(
        m=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_target_cell_hit_equally(self, m, data):
        """Projection is a balanced partition of parent cells."""
        k = data.draw(st.integers(0, m))
        positions = tuple(
            sorted(
                data.draw(
                    st.sets(st.integers(0, m - 1), min_size=k, max_size=k)
                )
            )
        )
        pmap = projection_map(m, positions)
        counts = np.bincount(pmap, minlength=1 << len(positions))
        assert np.all(counts == 1 << (m - len(positions)))


class TestSubsetPositions:
    def test_basic(self):
        assert subset_positions((2, 5, 9), (5, 9)) == (1, 2)

    def test_not_subset(self):
        with pytest.raises(DimensionError):
            subset_positions((2, 5), (3,))

    def test_empty(self):
        assert subset_positions((2, 5), ()) == ()


class TestConstraintMatrix:
    def test_rows_sum_cells(self, rng):
        cells = rng.random(16)
        mat = constraint_matrix(4, (1, 3))
        pmap = projection_map(4, (1, 3))
        expected = np.bincount(pmap, weights=cells, minlength=4)
        assert np.allclose(mat @ cells, expected)

    def test_each_column_in_one_row(self):
        mat = constraint_matrix(3, (0, 2))
        assert np.allclose(mat.sum(axis=0), 1.0)

    def test_empty_projection_is_total(self, rng):
        cells = rng.random(8)
        mat = constraint_matrix(3, ())
        assert mat.shape == (1, 8)
        assert mat @ cells == pytest.approx(cells.sum())


class TestCellNeighbours:
    def test_shape(self):
        nb = cell_neighbours(3)
        assert nb.shape == (8, 3)

    def test_neighbours_differ_in_one_bit(self):
        nb = cell_neighbours(4)
        for cell in range(16):
            for j in range(4):
                assert nb[cell, j] == cell ^ (1 << j)

    def test_symmetry(self):
        nb = cell_neighbours(3)
        for cell in range(8):
            for other in nb[cell]:
                assert cell in nb[other]
