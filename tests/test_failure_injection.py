"""Failure-injection tests: degenerate and corrupted inputs.

A release pipeline meets hostile conditions in practice — empty
datasets, constant columns, absurd privacy budgets, corrupted synopsis
files, adversarial view tables.  These tests pin down that every
failure either produces a *usable* answer or a typed ``ReproError``,
never a crash or silent nonsense.
"""

import numpy as np
import pytest

from repro import BinaryDataset, PriView
from repro.core.consistency import make_consistent
from repro.core.reconstruction import reconstruct
from repro.core.serialization import load_synopsis, save_synopsis
from repro.covering.design import CoveringDesign
from repro.covering.repository import best_design
from repro.exceptions import DatasetError, ReconstructionError, ReproError
from repro.marginals.table import MarginalTable

DESIGN = CoveringDesign(
    6, 3, 1, ((0, 1, 2), (2, 3, 4), (3, 4, 5), (0, 2, 4), (1, 3, 5))
)


class TestDegenerateDatasets:
    def test_empty_dataset_pipeline(self):
        dataset = BinaryDataset(np.zeros((0, 6), dtype=np.uint8))
        synopsis = PriView(1.0, design=DESIGN, seed=0).fit(dataset)
        table = synopsis.marginal((0, 3))
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= 0.0

    def test_single_record_dataset(self):
        dataset = BinaryDataset(np.ones((1, 6), dtype=np.uint8))
        synopsis = PriView(1.0, design=DESIGN, seed=0).fit(dataset)
        assert np.all(np.isfinite(synopsis.marginal((0, 5)).counts))

    def test_constant_columns(self):
        data = np.zeros((500, 6), dtype=np.uint8)
        data[:, 3] = 1
        dataset = BinaryDataset(data)
        synopsis = PriView(float("inf"), design=DESIGN, seed=0).fit(dataset)
        table = synopsis.marginal((2, 3))
        truth = dataset.marginal((2, 3))
        assert np.allclose(table.counts, truth.counts, atol=1e-6)

    def test_tiny_epsilon_still_finite(self):
        dataset = BinaryDataset.random(
            200, 6, rng=np.random.default_rng(0)
        )
        synopsis = PriView(1e-6, design=DESIGN, seed=0).fit(dataset)
        table = synopsis.marginal((0, 1, 3))
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= -1e-6


class TestAdversarialViews:
    def test_all_negative_views_survive_pipeline(self):
        views = [
            MarginalTable(attrs, -np.ones(8) * 5)
            for attrs in [(0, 1, 2), (2, 3, 4)]
        ]
        make_consistent(views)
        # reconstruction of an uncovered set still yields finite cells
        table = reconstruct(views, (1, 3), method="maxent")
        assert np.all(np.isfinite(table.counts))

    def test_huge_counts_no_overflow(self):
        views = [
            MarginalTable(attrs, np.full(8, 1e15))
            for attrs in [(0, 1, 2), (2, 3, 4)]
        ]
        make_consistent(views)
        table = reconstruct(views, (1, 3), method="maxent")
        assert np.all(np.isfinite(table.counts))
        assert table.total() == pytest.approx(8e15, rel=1e-6)

    def test_nan_views_rejected_or_contained(self):
        """NaNs must not silently propagate into *valid-looking*
        answers: the result is either an error or visibly NaN."""
        views = [
            MarginalTable((0, 1, 2), np.full(8, np.nan)),
            MarginalTable((2, 3, 4), np.ones(8)),
        ]
        try:
            table = reconstruct(views, (1, 3), method="maxent")
        except ReproError:
            return
        assert not np.all(np.isfinite(table.counts))


class TestCorruptedFiles:
    def test_truncated_synopsis_file(self, tmp_path, small_dataset):
        design = best_design(10, 4, 2)
        synopsis = PriView(1.0, design=design, seed=0).fit(small_dataset)
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(Exception):
            load_synopsis(path)

    def test_not_a_synopsis_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, noise=np.arange(4))
        with pytest.raises((DatasetError, KeyError)):
            load_synopsis(path)

    def test_garbage_design_file(self, tmp_path, monkeypatch):
        from repro.covering import repository

        bad = tmp_path / repository.design_filename(12, 4, 2)
        bad.write_text("12 4 2\n1 2 3\n")  # wrong block length
        monkeypatch.setattr(repository, "_data_dir", lambda: tmp_path)
        from repro.exceptions import DesignError

        with pytest.raises(DesignError):
            repository.load_bundled_design(12, 4, 2)


class TestSolverStress:
    def test_many_redundant_constraints(self):
        """Hundreds of mutually consistent constraints: IPF stays
        stable and satisfies them."""
        rng = np.random.default_rng(0)
        base = MarginalTable((0, 1, 2, 3), rng.random(16) * 100)
        views = [base.copy() for _ in range(50)]
        make_consistent(views)
        table = reconstruct(views, (0, 2), method="maxent")
        assert np.allclose(
            table.counts, base.project((0, 2)).counts, rtol=1e-6
        )

    def test_contradictory_constraints_lp(self):
        """Wildly contradictory raw views: LP finds a compromise."""
        v1 = MarginalTable((0, 1), np.array([100.0, 0.0, 0.0, 0.0]))
        v2 = MarginalTable((1, 2), np.array([0.0, 0.0, 0.0, 100.0]))
        table = reconstruct([v1, v2], (0, 1, 2), method="lp")
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= 0.0


class TestResidualFallback:
    """A residual solve that blows up must degrade, not crash: the
    engine retries with maxent and counts the event."""

    @pytest.fixture
    def synopsis(self):
        rng = np.random.default_rng(5)
        dataset = BinaryDataset.random(800, 6, density=0.5, rng=rng)
        return PriView(2.0, design=DESIGN, seed=3).fit(dataset)

    @pytest.mark.parametrize("exc", [
        ReconstructionError("singular residual system"),
        FloatingPointError("NaN noise draw"),
        np.linalg.LinAlgError("ill-conditioned"),
    ])
    def test_single_solve_falls_back_and_counts(self, synopsis, monkeypatch, exc):
        from repro import obs
        from repro.core.reconstruction import ResidualIndex
        from repro.serve.engine import QueryEngine

        def blow_up(self, target):
            raise exc

        monkeypatch.setattr(ResidualIndex, "solve", blow_up)
        with obs.session() as sess:
            with QueryEngine(synopsis, default_method="residual") as eng:
                answer = eng.answer((0, 5))  # uncovered -> solved path
                assert answer.path == "solved"
                assert answer.method == "residual"  # cached under request key
                assert np.all(np.isfinite(answer.table.counts))
                assert answer.table.counts.min() >= -1e-9
                stats = eng.stats()
            counters = sess.metrics.snapshot()["counters"]
        assert stats["solve"]["fallbacks"] == 1
        assert counters["serve.solve.fallback"] == 1

    def test_batch_solve_falls_back_and_counts(self, synopsis, monkeypatch):
        from repro import obs
        from repro.core.reconstruction import ResidualIndex
        from repro.serve.engine import QueryEngine

        def blow_up(self, targets):
            raise ReconstructionError("stacked solve went singular")

        monkeypatch.setattr(ResidualIndex, "solve_batch", blow_up)
        workload = [(0, 5), (1, 4), (0, 3, 5)]  # all uncovered
        with obs.session() as sess:
            with QueryEngine(synopsis, default_method="residual") as eng:
                answers = eng.answer_batch(workload)
                stats = eng.stats()
            counters = sess.metrics.snapshot()["counters"]
        assert [a.path for a in answers] == ["solved"] * 3
        assert all(np.all(np.isfinite(a.table.counts)) for a in answers)
        assert stats["solve"]["fallbacks"] == len(workload)
        assert counters["serve.solve.fallback"] == len(workload)

    def test_non_residual_failures_still_surface(self, synopsis, monkeypatch):
        """The safety net is residual-only: a failing maxent solve is a
        real error and must not be silently retried."""
        from repro.serve import engine as engine_mod
        from repro.serve.engine import QueryEngine

        def always_fail(views, target, method="maxent", **kwargs):
            raise ReconstructionError("boom")

        monkeypatch.setattr(engine_mod, "reconstruct", always_fail)
        with QueryEngine(synopsis, default_method="maxent") as eng:
            with pytest.raises(ReconstructionError):
                eng.answer((0, 5))
            assert eng.stats()["solve"]["fallbacks"] == 0

    def test_nan_poisoned_views_trigger_real_fallback(self, synopsis):
        """End to end, no monkeypatching: NaN in a view makes the
        residual solver raise its typed error, and the engine absorbs
        it through the maxent fallback."""
        from repro.serve.engine import QueryEngine

        synopsis.views[0].counts[0] = np.nan
        with QueryEngine(synopsis, default_method="residual") as eng:
            try:
                answer = eng.answer((0, 5))
            except ReproError:
                return  # typed failure is acceptable containment
            # the fallback ran; NaN may propagate through maxent but
            # must then be *visible*, never a valid-looking table
            stats = eng.stats()
            assert stats["solve"]["fallbacks"] == 1
            finite = np.all(np.isfinite(answer.table.counts))
            assert (not finite) or answer.table.counts.min() >= -1e-9
