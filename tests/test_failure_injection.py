"""Failure-injection tests: degenerate and corrupted inputs.

A release pipeline meets hostile conditions in practice — empty
datasets, constant columns, absurd privacy budgets, corrupted synopsis
files, adversarial view tables.  These tests pin down that every
failure either produces a *usable* answer or a typed ``ReproError``,
never a crash or silent nonsense.
"""

import numpy as np
import pytest

from repro import BinaryDataset, PriView
from repro.core.consistency import make_consistent
from repro.core.reconstruction import reconstruct
from repro.core.serialization import load_synopsis, save_synopsis
from repro.covering.design import CoveringDesign
from repro.covering.repository import best_design
from repro.exceptions import DatasetError, ReproError
from repro.marginals.table import MarginalTable

DESIGN = CoveringDesign(
    6, 3, 1, ((0, 1, 2), (2, 3, 4), (3, 4, 5), (0, 2, 4), (1, 3, 5))
)


class TestDegenerateDatasets:
    def test_empty_dataset_pipeline(self):
        dataset = BinaryDataset(np.zeros((0, 6), dtype=np.uint8))
        synopsis = PriView(1.0, design=DESIGN, seed=0).fit(dataset)
        table = synopsis.marginal((0, 3))
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= 0.0

    def test_single_record_dataset(self):
        dataset = BinaryDataset(np.ones((1, 6), dtype=np.uint8))
        synopsis = PriView(1.0, design=DESIGN, seed=0).fit(dataset)
        assert np.all(np.isfinite(synopsis.marginal((0, 5)).counts))

    def test_constant_columns(self):
        data = np.zeros((500, 6), dtype=np.uint8)
        data[:, 3] = 1
        dataset = BinaryDataset(data)
        synopsis = PriView(float("inf"), design=DESIGN, seed=0).fit(dataset)
        table = synopsis.marginal((2, 3))
        truth = dataset.marginal((2, 3))
        assert np.allclose(table.counts, truth.counts, atol=1e-6)

    def test_tiny_epsilon_still_finite(self):
        dataset = BinaryDataset.random(
            200, 6, rng=np.random.default_rng(0)
        )
        synopsis = PriView(1e-6, design=DESIGN, seed=0).fit(dataset)
        table = synopsis.marginal((0, 1, 3))
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= -1e-6


class TestAdversarialViews:
    def test_all_negative_views_survive_pipeline(self):
        views = [
            MarginalTable(attrs, -np.ones(8) * 5)
            for attrs in [(0, 1, 2), (2, 3, 4)]
        ]
        make_consistent(views)
        # reconstruction of an uncovered set still yields finite cells
        table = reconstruct(views, (1, 3), method="maxent")
        assert np.all(np.isfinite(table.counts))

    def test_huge_counts_no_overflow(self):
        views = [
            MarginalTable(attrs, np.full(8, 1e15))
            for attrs in [(0, 1, 2), (2, 3, 4)]
        ]
        make_consistent(views)
        table = reconstruct(views, (1, 3), method="maxent")
        assert np.all(np.isfinite(table.counts))
        assert table.total() == pytest.approx(8e15, rel=1e-6)

    def test_nan_views_rejected_or_contained(self):
        """NaNs must not silently propagate into *valid-looking*
        answers: the result is either an error or visibly NaN."""
        views = [
            MarginalTable((0, 1, 2), np.full(8, np.nan)),
            MarginalTable((2, 3, 4), np.ones(8)),
        ]
        try:
            table = reconstruct(views, (1, 3), method="maxent")
        except ReproError:
            return
        assert not np.all(np.isfinite(table.counts))


class TestCorruptedFiles:
    def test_truncated_synopsis_file(self, tmp_path, small_dataset):
        design = best_design(10, 4, 2)
        synopsis = PriView(1.0, design=design, seed=0).fit(small_dataset)
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(Exception):
            load_synopsis(path)

    def test_not_a_synopsis_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, noise=np.arange(4))
        with pytest.raises((DatasetError, KeyError)):
            load_synopsis(path)

    def test_garbage_design_file(self, tmp_path, monkeypatch):
        from repro.covering import repository

        bad = tmp_path / repository.design_filename(12, 4, 2)
        bad.write_text("12 4 2\n1 2 3\n")  # wrong block length
        monkeypatch.setattr(repository, "_data_dir", lambda: tmp_path)
        from repro.exceptions import DesignError

        with pytest.raises(DesignError):
            repository.load_bundled_design(12, 4, 2)


class TestSolverStress:
    def test_many_redundant_constraints(self):
        """Hundreds of mutually consistent constraints: IPF stays
        stable and satisfies them."""
        rng = np.random.default_rng(0)
        base = MarginalTable((0, 1, 2, 3), rng.random(16) * 100)
        views = [base.copy() for _ in range(50)]
        make_consistent(views)
        table = reconstruct(views, (0, 2), method="maxent")
        assert np.allclose(
            table.counts, base.project((0, 2)).counts, rtol=1e-6
        )

    def test_contradictory_constraints_lp(self):
        """Wildly contradictory raw views: LP finds a compromise."""
        v1 = MarginalTable((0, 1), np.array([100.0, 0.0, 0.0, 0.0]))
        v2 = MarginalTable((1, 2), np.array([0.0, 0.0, 0.0, 100.0]))
        table = reconstruct([v1, v2], (0, 1, 2), method="lp")
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= 0.0
