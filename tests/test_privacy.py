"""Privacy-accounting tests.

Every mechanism in this library is Laplace (or exponential) noise
calibrated to a *claimed* L1 sensitivity.  Differential privacy holds
iff the claimed sensitivity really bounds how much the released
quantities can change when one tuple is added (the paper's
neighbouring relation).  These tests measure that change directly on
random neighbouring datasets and compare it to what each
implementation uses as its noise scale.
"""

import itertools
import math

import numpy as np
import pytest

from repro.baselines.fourier import fourier_coefficient_count, walsh_hadamard
from repro.covering.repository import best_design
from repro.marginals.contingency import FullContingencyTable
from repro.marginals.dataset import BinaryDataset


def _neighbours(rng, n=200, d=8):
    """A dataset and a neighbour with one extra tuple."""
    base = BinaryDataset.random(n, d, rng=rng)
    extra = (rng.random(d) < 0.5).astype(np.uint8)
    grown = BinaryDataset(np.vstack([base.data, extra]))
    return base, grown


class TestViewReleaseSensitivity:
    """PriView releases w view marginals with noise Lap(w/eps): the
    vector of all view tables must have L1 sensitivity exactly w."""

    @pytest.mark.parametrize("seed", range(5))
    def test_sensitivity_equals_block_count(self, seed):
        rng = np.random.default_rng(seed)
        base, grown = _neighbours(rng)
        design = best_design(8, 4, 2)
        change = sum(
            np.abs(
                grown.marginal(block).counts - base.marginal(block).counts
            ).sum()
            for block in design.blocks
        )
        assert change == pytest.approx(design.num_blocks)


class TestDirectSensitivity:
    """Direct splits eps over all C(d,k) marginals: adding one tuple
    changes exactly one cell of each marginal by one."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_sensitivity_equals_marginal_count(self, k):
        rng = np.random.default_rng(11)
        base, grown = _neighbours(rng, d=6)
        change = sum(
            np.abs(
                grown.marginal(attrs).counts - base.marginal(attrs).counts
            ).sum()
            for attrs in itertools.combinations(range(6), k)
        )
        assert change == pytest.approx(math.comb(6, k))


class TestFourierSensitivity:
    """Each character sum moves by exactly 1 per added tuple, so the
    weight-<=k release has L1 sensitivity m (the coefficient count)."""

    @pytest.mark.parametrize("k_max", [1, 2, 3])
    def test_sensitivity_equals_coefficient_count(self, k_max):
        rng = np.random.default_rng(7)
        d = 6
        base, grown = _neighbours(rng, d=d)
        theta_base = walsh_hadamard(
            FullContingencyTable.from_dataset(base).counts
        )
        theta_grown = walsh_hadamard(
            FullContingencyTable.from_dataset(grown).counts
        )
        weights = np.bitwise_count(np.arange(1 << d, dtype=np.uint64))
        released = weights <= k_max
        change = np.abs(theta_grown[released] - theta_base[released]).sum()
        assert change == pytest.approx(
            fourier_coefficient_count(d, k_max)
        )


class TestFlatSensitivity:
    def test_single_cell_changes(self):
        rng = np.random.default_rng(3)
        base, grown = _neighbours(rng, d=6)
        diff = (
            FullContingencyTable.from_dataset(grown).counts
            - FullContingencyTable.from_dataset(base).counts
        )
        assert np.abs(diff).sum() == pytest.approx(1.0)


class TestMWEMScoreSensitivity:
    """The exponential-mechanism score (L1 error of a marginal) moves
    by at most 1 when a tuple is added — the sensitivity MWEM assumes."""

    def test_score_changes_at_most_one(self):
        rng = np.random.default_rng(5)
        base, grown = _neighbours(rng, d=6)
        synthetic = np.full(1 << 6, base.num_records / (1 << 6))
        table = FullContingencyTable(6, synthetic)
        for attrs in itertools.combinations(range(6), 2):
            score_base = np.abs(
                table.marginal(attrs).counts - base.marginal(attrs).counts
            ).sum()
            score_grown = np.abs(
                table.marginal(attrs).counts - grown.marginal(attrs).counts
            ).sum()
            assert abs(score_grown - score_base) <= 1.0 + 1e-9


class TestPostProcessingFreeness:
    """Consistency / Ripple / reconstruction read only the noisy views,
    never the dataset: re-running them on the same noisy views is
    deterministic (no hidden data access, no hidden randomness)."""

    def test_post_processing_deterministic(self, small_dataset):
        from repro.core.priview import PriView

        design = best_design(10, 4, 2)
        mechanism = PriView(1.0, design=design, seed=9)
        views = mechanism.generate_noisy_views(small_dataset, design)
        first = [v.copy() for v in views]
        second = [v.copy() for v in views]
        PriView(1.0, design=design, seed=1).post_process(first)
        PriView(1.0, design=design, seed=2).post_process(second)
        for a, b in zip(first, second):
            assert np.array_equal(a.counts, b.counts)
