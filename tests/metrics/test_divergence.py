"""Tests for KL and Jensen-Shannon divergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.marginals.table import MarginalTable
from repro.metrics.divergence import jensen_shannon, kl_divergence


class TestKL:
    def test_identical_zero(self):
        p = np.array([0.25, 0.75])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log(2) + 0.5 * np.log(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_infinite_on_missing_support(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert kl_divergence(p, q) == float("inf")

    def test_accepts_marginal_tables(self):
        p = MarginalTable((0,), np.array([1.0, 1.0]))
        q = MarginalTable((0,), np.array([1.0, 3.0]))
        assert kl_divergence(p, q) > 0

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            kl_divergence(np.ones(2), np.ones(4))


class TestJensenShannon:
    def test_identical_zero(self):
        p = np.array([0.3, 0.7])
        assert jensen_shannon(p, p) == pytest.approx(0.0)

    def test_finite_on_disjoint_support(self):
        """The property KL lacks — the reason the paper uses JS."""
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon(p, q) == pytest.approx(np.log(2))

    def test_symmetric(self, rng):
        p, q = rng.random(8), rng.random(8)
        assert jensen_shannon(p, q) == pytest.approx(jensen_shannon(q, p))

    def test_unnormalised_inputs_normalised(self):
        assert jensen_shannon(
            np.array([2.0, 2.0]), np.array([50.0, 50.0])
        ) == pytest.approx(0.0)

    def test_degenerate_input_treated_uniform(self):
        assert jensen_shannon(
            np.array([0.0, 0.0]), np.array([1.0, 1.0])
        ) == pytest.approx(0.0)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, seed):
        rng = np.random.default_rng(seed)
        p, q = rng.random(16), rng.random(16)
        value = jensen_shannon(p, q)
        assert 0.0 <= value <= np.log(2) + 1e-12
