"""Tests for candlestick summaries."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.metrics.candlestick import candlestick


class TestCandlestick:
    def test_ordering_of_statistics(self, rng):
        candle = candlestick(rng.random(500))
        assert candle.p25 <= candle.median <= candle.p75 <= candle.p95

    def test_known_values(self):
        candle = candlestick(np.arange(1, 101, dtype=float))
        assert candle.median == pytest.approx(50.5)
        assert candle.mean == pytest.approx(50.5)
        assert candle.count == 100

    def test_single_value(self):
        candle = candlestick([3.0])
        assert candle.p25 == candle.p95 == candle.mean == 3.0

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            candlestick([])

    def test_as_row_order(self):
        candle = candlestick([1.0, 2.0, 3.0])
        row = candle.as_row()
        assert row == (candle.p25, candle.median, candle.p75, candle.p95,
                       candle.mean)

    def test_str_mentions_count(self):
        assert "(n=3)" in str(candlestick([1.0, 2.0, 3.0]))
