"""Tests for L2 error measures."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.table import MarginalTable
from repro.metrics.l2 import (
    expected_squared_error,
    l2_error,
    normalized_l2_error,
)


class TestL2Error:
    def test_identical_tables_zero(self):
        t = MarginalTable((0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
        assert l2_error(t, t) == 0.0

    def test_known_distance(self):
        a = MarginalTable((0,), np.array([0.0, 0.0]))
        b = MarginalTable((0,), np.array([3.0, 4.0]))
        assert l2_error(a, b) == pytest.approx(5.0)

    def test_symmetric(self, rng):
        a = MarginalTable((0, 1), rng.random(4))
        b = MarginalTable((0, 1), rng.random(4))
        assert l2_error(a, b) == l2_error(b, a)

    def test_attribute_mismatch(self):
        a = MarginalTable((0,), np.zeros(2))
        b = MarginalTable((1,), np.zeros(2))
        with pytest.raises(DimensionError):
            l2_error(a, b)


class TestNormalized:
    def test_divides_by_n(self):
        a = MarginalTable((0,), np.array([0.0, 0.0]))
        b = MarginalTable((0,), np.array([30.0, 40.0]))
        assert normalized_l2_error(a, b, 100) == pytest.approx(0.5)

    def test_invalid_n(self):
        t = MarginalTable((0,), np.zeros(2))
        with pytest.raises(DimensionError):
            normalized_l2_error(t, t, 0)


class TestESE:
    def test_is_squared_l2(self, rng):
        a = MarginalTable((0, 1, 2), rng.random(8))
        b = MarginalTable((0, 1, 2), rng.random(8))
        assert expected_squared_error(a, b) == pytest.approx(
            l2_error(a, b) ** 2
        )
