"""Live serving of stream windows: HTTP routes, watch, publish churn."""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest

from repro.exceptions import RemoteQueryError
from repro.serve.client import QueryClient
from repro.serve.multiplex import EngineRouter
from repro.serve.server import serve_store
from repro.stream import (
    BudgetSchedule,
    CountWindowPolicy,
    WindowScheduler,
)

from .conftest import make_events


def _release(store, rng, n=450, size=150, dataset="clicks"):
    return WindowScheduler(
        store, dataset, 6, BudgetSchedule(math.inf),
        CountWindowPolicy(size), view_width=4,
    ).run(make_events(rng, n))


# ----------------------------------------------------------------------
# HTTP routes
# ----------------------------------------------------------------------
def test_windows_routes_over_http(store, rng):
    _release(store, rng)
    with serve_store(store, port=0) as server:
        client = QueryClient(server.url, dataset="clicks")
        windows = client.windows()
        assert [w["index"] for w in windows] == [0, 1, 2]
        payload = client.window_marginal((0, 1), last=2)
        assert payload["union"]["records"] == 300.0
        assert len(payload["windows"]) == 2
        table = client.window_union_table((0, 1), last=2)
        assert table.total() == pytest.approx(300.0)
        explicit = client.window_marginal((0, 1), windows=[0])
        assert [w["window"]["index"] for w in explicit["windows"]] == [0]


def test_windows_routes_error_mapping(store, rng):
    _release(store, rng)
    with serve_store(store, port=0) as server:
        client = QueryClient(server.url)
        # Listing an unknown dataset is empty, not an error.
        assert client.windows(dataset="nope") == []
        with pytest.raises(RemoteQueryError) as excinfo:
            client.window_marginal((0, 1), dataset="nope")
        assert excinfo.value.status == 404
        with pytest.raises(RemoteQueryError) as excinfo:
            client.window_marginal((0, 1), windows=[42], dataset="clicks")
        assert excinfo.value.status == 400


def test_single_source_server_rejects_window_routes(tmp_path, store, rng):
    from repro.serve.server import serve_source

    _release(store, rng)
    path = tmp_path / "synopsis.npz"
    from repro.core.serialization import save_synopsis

    save_synopsis(store.load_version(store.resolve("clicks")), path)
    with serve_source(path, port=0) as server:
        client = QueryClient(server.url, dataset="clicks")
        with pytest.raises(RemoteQueryError) as excinfo:
            client.windows()
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Watch interval
# ----------------------------------------------------------------------
def test_watch_interval_rate_limits_manifest_polls(store, rng, monkeypatch):
    _release(store, rng, n=150)
    router = EngineRouter(store, watch=True, watch_interval=3600.0)
    calls = {"n": 0}
    real = store.manifest_mtime

    def counting():
        calls["n"] += 1
        return real()

    monkeypatch.setattr(store, "manifest_mtime", counting)
    with router:
        for _ in range(5):
            with router.lease("clicks") as engine:
                engine.answer((0,))
        # First lease polls; the rest are inside the interval.
        assert calls["n"] == 1
        stats = router.stats()
        assert stats["watch_interval"] == 3600.0
        assert stats["last_poll"] is not None
        assert stats["last_swap"] is None


def test_watch_interval_zero_polls_every_lease(store, rng, monkeypatch):
    _release(store, rng, n=150)
    router = EngineRouter(store, watch=True)
    calls = {"n": 0}
    real = store.manifest_mtime

    def counting():
        calls["n"] += 1
        return real()

    monkeypatch.setattr(store, "manifest_mtime", counting)
    with router:
        for _ in range(3):
            with router.lease("clicks"):
                pass
        assert calls["n"] == 3


def test_watch_interval_rejects_negative(store):
    from repro.exceptions import QueryError

    with pytest.raises(QueryError, match="watch_interval"):
        EngineRouter(store, watch=True, watch_interval=-1.0)


def test_watch_picks_up_new_windows_and_stamps_swap(store, rng):
    _release(store, rng, n=150)
    with serve_store(store, port=0, watch=True) as server:
        client = QueryClient(server.url, dataset="clicks")
        assert client.stats()["hosted"] == {}
        client.marginal((0,))
        assert client.stats()["hosted"]["clicks"]["version"] == 1
        _release(store, rng, n=150)  # publishes version 2
        client.marginal((0,))
        stats = client.stats()
        assert stats["hosted"]["clicks"]["version"] == 2
        assert stats["swaps"] == 1
        assert stats["last_swap"] is not None


# ----------------------------------------------------------------------
# Publish churn: zero dropped requests under continuous hot swap
# ----------------------------------------------------------------------
def test_rapid_publish_churn_drops_nothing(store, rng):
    """One publisher loops windowed publishes while 8 readers hammer
    the watch-serving router: every request must succeed and every
    reader must eventually observe the newest published version."""
    _release(store, rng, n=150)
    rounds = 6
    readers = 8
    stop = threading.Event()
    failures: list[BaseException] = []
    versions_seen: list[set] = [set() for _ in range(readers)]

    with serve_store(store, port=0, watch=True) as server:
        url = server.url

        def read(slot: int) -> None:
            client = QueryClient(url, dataset="clicks")
            while not stop.is_set():
                try:
                    payload = client.marginal((0, 1))
                    versions_seen[slot].add(payload["total"])
                    stats = client.stats()
                    hosted = stats["hosted"].get("clicks")
                    if hosted:
                        versions_seen[slot].add(hosted["version"])
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)
                    return

        threads = [
            threading.Thread(target=read, args=(slot,), daemon=True)
            for slot in range(readers)
        ]
        for thread in threads:
            thread.start()
        publisher_error: list[BaseException] = []

        def publish() -> None:
            try:
                for round_no in range(rounds):
                    _release(store, np.random.default_rng(round_no), n=150)
                    time.sleep(0.02)
            except BaseException as exc:  # noqa: BLE001 - recorded
                publisher_error.append(exc)

        publisher = threading.Thread(target=publish, daemon=True)
        publisher.start()
        publisher.join(timeout=60)
        final_version = store.resolve("clicks").version
        # Let readers observe the final version before stopping them.
        deadline = time.time() + 30
        while time.time() < deadline and not failures:
            if all(final_version in seen for seen in versions_seen):
                break
            time.sleep(0.05)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not publisher_error, publisher_error
    assert not failures, failures  # zero dropped/failed requests
    assert final_version == 1 + rounds
    for slot, seen in enumerate(versions_seen):
        assert final_version in seen, (
            f"reader {slot} never saw version {final_version}"
        )
