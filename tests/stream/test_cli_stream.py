"""CLI coverage for the ``stream`` verb."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.store import SynopsisStore


@pytest.fixture
def events_path(tmp_path):
    rng = np.random.default_rng(3)
    path = tmp_path / "events.jsonl"
    with path.open("w") as handle:
        for i in range(300):
            items = [int(x) for x in np.nonzero(rng.random(6) < 0.4)[0]]
            handle.write(json.dumps({"items": items, "ts": i * 0.01}) + "\n")
    return str(path)


@pytest.fixture
def store_root(tmp_path):
    return str(tmp_path / "registry")


def test_stream_run_count_windows(store_root, events_path, capsys):
    assert main([
        "stream", "run", "clicks", "--store", store_root,
        "--input", events_path, "--num-attributes", "6",
        "--epsilon", "1.0", "--window-size", "100", "--view-width", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "released window 0 as clicks@1" in out
    assert "released window 2 as clicks@3" in out
    assert "3 window(s) released, 300 record(s) ingested" in out
    assert "budget audit: OK" in out
    store = SynopsisStore(store_root, create=False)
    assert store.resolve("clicks").version == 3
    assert store.resolve("clicks").extra["window"]["kind"] == "count"


def test_stream_run_time_windows_with_retention(
    store_root, events_path, capsys
):
    assert main([
        "stream", "run", "clicks", "--store", store_root,
        "--input", events_path, "--num-attributes", "6",
        "--epsilon", "2.0", "--window-seconds", "1.0",
        "--lateness", "0.1", "--view-width", "4", "--keep-last", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "0 late event(s) dropped" in out
    store = SynopsisStore(store_root, create=False)
    versions = store.manifest().datasets["clicks"].versions
    assert len(versions) == 2  # retention pruned the older windows
    assert versions[-1].extra["window"]["kind"] == "time"


def test_stream_run_audit_flag_prints_ledger(store_root, events_path, capsys):
    assert main([
        "stream", "run", "clicks", "--store", store_root,
        "--input", events_path, "--num-attributes", "6",
        "--epsilon", "1.0", "--window-size", "150", "--view-width", "4",
        "--audit",
    ]) == 0
    out = capsys.readouterr().out
    audit = json.loads(out[out.index("[\n"):])
    [row] = audit
    assert row["scope"] == "stream.windows"
    assert row["composition"] == "parallel"
    assert row["children"] == 2
    assert row["status"] == "exact"


def test_stream_status(store_root, events_path, capsys):
    main([
        "stream", "run", "clicks", "--store", store_root,
        "--input", events_path, "--num-attributes", "6",
        "--epsilon", "1.0", "--window-size", "100", "--view-width", "4",
    ])
    capsys.readouterr()
    assert main(["stream", "status", "clicks", "--store", store_root]) == 0
    out = capsys.readouterr().out
    assert "total: 3 window(s)" in out
    assert "epsilon=1.0" in out

    assert main([
        "stream", "status", "clicks", "--store", store_root, "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [w["index"] for w in payload["windows"]] == [0, 1, 2]


def test_stream_status_empty(store_root, capsys):
    SynopsisStore(store_root)  # create an empty store
    assert main(["stream", "status", "nope", "--store", store_root]) == 0
    assert "no released windows" in capsys.readouterr().out


def test_stream_run_requires_a_window_policy(store_root, events_path):
    with pytest.raises(SystemExit):
        main([
            "stream", "run", "clicks", "--store", store_root,
            "--input", events_path, "--num-attributes", "6",
            "--epsilon", "1.0",
        ])
