"""WindowScheduler: fit, publish, audit, and retention."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.exceptions import LedgerError
from repro.stream import (
    BudgetSchedule,
    CountWindowPolicy,
    StreamError,
    WindowScheduler,
)

from .conftest import make_events


def test_budget_schedule_constant_and_overrides():
    schedule = BudgetSchedule(0.5)
    assert schedule.epsilon_for(0) == 0.5
    assert schedule.epsilon_for(99) == 0.5
    assert schedule.configured == 0.5
    tiered = BudgetSchedule(0.5, overrides={3: 1.0})
    assert tiered.epsilon_for(3) == 1.0
    assert tiered.epsilon_for(4) == 0.5
    assert tiered.configured == 1.0
    assert BudgetSchedule(math.inf).configured == math.inf


def test_budget_schedule_rejects_nonpositive():
    with pytest.raises(StreamError):
        BudgetSchedule(0.0)
    with pytest.raises(StreamError):
        BudgetSchedule(1.0, overrides={0: -1.0})


def test_scheduler_releases_each_window_as_a_version(store, rng):
    events = make_events(rng, 600)
    scheduler = WindowScheduler(
        store, "clicks", 6, BudgetSchedule(1.0),
        CountWindowPolicy(200), view_width=4,
    )
    released = scheduler.run(events)
    assert [r.index for r in released] == [0, 1, 2]
    assert [r.version for r in released] == [1, 2, 3]
    assert all(r.records == 200 for r in released)
    assert all(r.epsilon == 1.0 for r in released)

    entry = store.manifest().datasets["clicks"]
    assert len(entry.versions) == 3
    for info, record in zip(entry.versions, released):
        window = info.extra["window"]
        assert window["index"] == record.index
        assert window["records"] == 200
        assert window["epsilon"] == 1.0
        assert window["kind"] == "count"
        assert (window["start"], window["end"]) == (
            record.start, record.end,
        )
        assert info.epsilon == 1.0
        assert info.fit_seconds is not None


def test_scheduler_parallel_audit_is_exact(store, rng):
    """The acceptance claim: N disjoint windows cost ONE window's
    epsilon, proven exactly by the ledger's parallel composition."""
    events = make_events(rng, 600)
    with obs.session() as sess:
        scheduler = WindowScheduler(
            store, "clicks", 6, BudgetSchedule(0.7),
            CountWindowPolicy(200), view_width=4,
        )
        released = scheduler.run(events)
        assert len(released) == 3
        sess.ledger.check()  # raises unless every strict scope balances
        [parent] = sess.ledger.scopes
        assert parent.name == "stream.windows"
        assert parent.composition == "parallel"
        assert len(parent.children) == 3
        assert all(c.spent() == 0.7 for c in parent.children)
        assert parent.spent() == 0.7  # max over windows, not 3 * 0.7
        assert sess.ledger.total_spent() == 0.7


def test_scheduler_audit_catches_overspending_mechanism(store, rng):
    """A factory spending more than the schedule handed it fails check().

    The mechanism's own fit scope balances (it spent what *it* was
    configured with), but the stream scope's max-aggregate exceeds the
    schedule's per-window promise — the parent catches the lie.
    """
    from repro.core.priview import PriView
    from repro.covering.repository import best_design

    design = best_design(6, 4, 2)
    events = make_events(rng, 200)
    with obs.session() as sess:
        scheduler = WindowScheduler(
            store, "clicks", 6, BudgetSchedule(1.0), CountWindowPolicy(200),
            mechanism_factory=lambda eps, w: PriView(
                eps * 2, design=design, seed=w.index
            ),
        )
        scheduler.run(events)
        with pytest.raises(LedgerError, match="stream.windows"):
            sess.ledger.check()


def test_scheduler_keep_last_retention(store, rng):
    events = make_events(rng, 1000)
    scheduler = WindowScheduler(
        store, "clicks", 6, BudgetSchedule(1.0),
        CountWindowPolicy(200), view_width=4, keep_last=2,
    )
    released = scheduler.run(events)
    assert len(released) == 5
    entry = store.manifest().datasets["clicks"]
    assert [v.version for v in entry.versions] == [4, 5]
    # Serving default is the newest window.
    assert store.resolve("clicks").version == 5


def test_scheduler_retention_spares_pinned(store, rng):
    scheduler = WindowScheduler(
        store, "clicks", 6, BudgetSchedule(1.0),
        CountWindowPolicy(100), view_width=4, keep_last=1,
    )
    scheduler.run(make_events(rng, 200))
    store.pin("clicks", 2)
    scheduler.run(make_events(rng, 200))
    entry = store.manifest().datasets["clicks"]
    assert 2 in {v.version for v in entry.versions}  # pinned survived


def test_scheduler_seeded_runs_are_reproducible(store, tmp_path, rng):
    from repro.store import SynopsisStore

    events = make_events(rng, 400)
    kwargs = dict(view_width=4, seed=42)
    a = WindowScheduler(
        store, "clicks", 6, BudgetSchedule(1.0),
        CountWindowPolicy(200), **kwargs,
    ).run(list(events))
    other = SynopsisStore(tmp_path / "other")
    b = WindowScheduler(
        other, "clicks", 6, BudgetSchedule(1.0),
        CountWindowPolicy(200), **kwargs,
    ).run(list(events))
    for ra, rb in zip(a, b):
        ta = store.load_version(store.resolve(f"clicks@{ra.version}"))
        tb = other.load_version(other.resolve(f"clicks@{rb.version}"))
        np.testing.assert_array_equal(
            ta.marginal((0, 1)).counts, tb.marginal((0, 1)).counts
        )


def test_scheduler_accepts_bare_float_epsilon(store, rng):
    scheduler = WindowScheduler(
        store, "clicks", 6, 1.5, CountWindowPolicy(100), view_width=4,
    )
    released = scheduler.run(make_events(rng, 100))
    assert released[0].epsilon == 1.5


def test_scheduler_empty_stream_releases_nothing(store):
    with obs.session() as sess:
        scheduler = WindowScheduler(
            store, "clicks", 6, BudgetSchedule(1.0),
            CountWindowPolicy(100), view_width=4,
        )
        assert scheduler.run([]) == []
        sess.ledger.check()  # empty parallel scope is n/a, not a failure
        assert sess.ledger.total_spent() == 0.0
    assert store.manifest().datasets.get("clicks") is None
