"""Window policies, incremental packed shards, and the ingest driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.packed import pack_columns
from repro.stream import (
    CountWindowPolicy,
    Event,
    StreamError,
    TimeWindowPolicy,
    WindowShard,
    as_event,
    iter_windows,
    read_jsonl_events,
)

from .conftest import make_events


# ----------------------------------------------------------------------
# Event normalisation
# ----------------------------------------------------------------------
def test_as_event_accepts_all_shapes():
    assert as_event([0, 2]).items == (0, 2)
    assert as_event([0, 2]).time is None
    assert as_event(([1], 2.5)) == Event((1,), 2.5)
    assert as_event({"items": [3], "ts": 7}) == Event((3,), 7.0)
    assert as_event({"items": [3], "event_time": 7}) == Event((3,), 7.0)
    assert as_event(Event((1,), 1.0)) == Event((1,), 1.0)


def test_as_event_rejects_garbage():
    with pytest.raises(StreamError):
        as_event({"ts": 1.0})
    with pytest.raises(StreamError):
        as_event(42)


def test_read_jsonl_events(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('[0, 1]\n\n{"items": [2], "ts": 3.5}\n')
    events = list(read_jsonl_events(path))
    assert events == [Event((0, 1)), Event((2,), 3.5)]


def test_read_jsonl_reports_bad_line(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text("[0]\nnot json\n")
    with pytest.raises(StreamError, match=r":2:"):
        list(read_jsonl_events(path))


# ----------------------------------------------------------------------
# WindowShard: incremental packing must be bitwise-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 128, 200])
def test_shard_matches_bulk_pack(rng, n):
    d = 5
    rows = (rng.random((n, d)) < 0.5).astype(np.uint8)
    shard = WindowShard(d, chunk_records=64)
    for row in rows:
        shard.add(Event(tuple(int(x) for x in np.nonzero(row)[0])))
    packed = shard.finish()
    assert packed.num_records == n
    expected = pack_columns(rows)
    np.testing.assert_array_equal(packed.words, expected)


def test_shard_ignores_out_of_range_and_duplicates():
    shard = WindowShard(3)
    shard.add(Event((0, 0, 2, 9, -1)))
    packed = shard.finish()
    table = packed.marginal((0, 1, 2))
    # One record with attributes {0, 2} set: cell index 0b101 = 5.
    assert table.counts[5] == 1.0
    assert table.total() == 1.0


def test_shard_rejects_bad_chunk():
    with pytest.raises(StreamError, match="multiple of 64"):
        WindowShard(4, chunk_records=100)


# ----------------------------------------------------------------------
# Count windows
# ----------------------------------------------------------------------
def test_count_windows_partition_in_order(rng):
    events = make_events(rng, 250, d=4)
    windows = list(iter_windows(events, CountWindowPolicy(100), 4))
    assert [w.index for w in windows] == [0, 1, 2]
    assert [w.num_records for w in windows] == [100, 100, 50]
    assert [(w.start, w.end) for w in windows] == [
        (0.0, 100.0), (100.0, 200.0), (200.0, 300.0),
    ]
    assert all(w.kind == "count" for w in windows)


def test_count_windows_union_is_exact_partition(rng):
    """Summing per-window marginals reproduces the full-data marginal."""
    d = 4
    events = make_events(rng, 230, d=d)
    windows = list(iter_windows(events, CountWindowPolicy(64), d))
    total = sum(w.shard.marginal((0, 1)).counts for w in windows)
    full = WindowShard(d, chunk_records=64)
    for e in events:
        full.add(as_event(e))
    np.testing.assert_allclose(total, full.finish().marginal((0, 1)).counts)


def test_count_policy_rejects_bad_size():
    with pytest.raises(StreamError):
        CountWindowPolicy(0)


# ----------------------------------------------------------------------
# Time windows: watermark + late events
# ----------------------------------------------------------------------
def test_time_windows_tumble_on_event_time():
    events = [([0], 0.1), ([1], 0.9), ([0], 1.1), ([1], 2.2), ([0], 3.5)]
    policy = TimeWindowPolicy(1.0)
    windows = list(iter_windows(events, policy, 2))
    assert [w.index for w in windows] == [0, 1, 2, 3]
    assert [w.num_records for w in windows] == [2, 1, 1, 1]
    assert windows[0].start == 0.0 and windows[0].end == 1.0
    assert windows[3].start == 3.0 and windows[3].end == 4.0
    assert policy.late_events == 0


def test_time_windows_drop_and_count_late_events():
    # Watermark trails max time by 0.5: by t=2.6 the watermark is 2.1,
    # so window 0 (and 1) are closed; the t=0.3 straggler is late.
    events = [([0], 0.2), ([0], 2.6), ([1], 0.3), ([0], 2.7)]
    policy = TimeWindowPolicy(1.0, lateness=0.5)
    windows = list(iter_windows(events, policy, 2))
    assert policy.late_events == 1
    assert [w.index for w in windows] == [0, 2]
    assert [w.num_records for w in windows] == [1, 2]


def test_time_windows_lateness_keeps_stragglers_in_open_window():
    # With lateness 1.0 the watermark at t=1.4 is only 0.4, so window 0
    # is still open and the t=0.9 straggler lands in it.
    events = [([0], 0.2), ([0], 1.4), ([1], 0.9)]
    policy = TimeWindowPolicy(1.0, lateness=1.0)
    windows = list(iter_windows(events, policy, 2))
    assert policy.late_events == 0
    assert [w.num_records for w in windows] == [2, 1]


def test_time_windows_skip_empty_gaps():
    events = [([0], 0.5), ([1], 5.5)]
    windows = list(iter_windows(events, TimeWindowPolicy(1.0), 2))
    assert [w.index for w in windows] == [0, 5]


def test_time_policy_requires_timestamps():
    with pytest.raises(StreamError, match="timestamp"):
        list(iter_windows([[0, 1]], TimeWindowPolicy(1.0), 2))


def test_time_policy_origin_shifts_grid():
    events = [([0], 10.2), ([1], 10.8)]
    windows = list(iter_windows(events, TimeWindowPolicy(1.0, origin=10.0), 2))
    assert [w.index for w in windows] == [0]
    assert windows[0].start == 10.0 and windows[0].end == 11.0


def test_time_policy_validates_parameters():
    with pytest.raises(StreamError):
        TimeWindowPolicy(0.0)
    with pytest.raises(StreamError):
        TimeWindowPolicy(1.0, lateness=-1.0)
