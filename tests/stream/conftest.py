"""Shared fixtures for the streaming-subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import SynopsisStore


@pytest.fixture
def store(tmp_path):
    return SynopsisStore(tmp_path / "store")


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def make_events(rng, n: int, d: int = 6, p: float = 0.4, dt: float | None = None):
    """``n`` random transaction events, optionally timestamped every ``dt``."""
    events = []
    for i in range(n):
        items = [int(x) for x in np.nonzero(rng.random(d) < p)[0]]
        if dt is None:
            events.append(items)
        else:
            events.append({"items": items, "ts": i * dt})
    return events
